"""Table 1: extra memory accesses / lines / messages per ReVive event.

The paper's table gives, for the three event classes of the extended
directory controller, the number of *extra* memory accesses, extra
lines accessed and extra network messages.  These must match exactly —
they are properties of the protocol, not of the workload.
"""

from conftest import write_result

from repro.harness.experiments import TABLE1_PAPER, table1_event_costs
from repro.harness.reporting import format_table

_ROW_LABELS = {
    "wb_logged": "Write-back, already logged (Fig. 4)",
    "rdx_unlogged": "Read-excl/upgrade, not logged (Fig. 5a)",
    "wb_unlogged": "Write-back, not logged (Fig. 5b)",
}


def test_table1_event_costs(benchmark, results_dir):
    measured = benchmark.pedantic(table1_event_costs, rounds=1, iterations=1)

    rows = []
    for event, paper in TABLE1_PAPER.items():
        got = measured[event]
        assert got["events"] > 100, f"micro-workload never triggered {event}"
        assert got["accesses"] == paper["accesses"], event
        assert got["lines"] == paper["lines"], event
        assert got["messages"] == paper["messages"], event
        rows.append([
            _ROW_LABELS[event], got["events"],
            f"{got['accesses']:.0f} (paper {paper['accesses']})",
            f"{got['lines']:.0f} (paper {paper['lines']})",
            f"{got['messages']:.0f} (paper {paper['messages']})",
        ])
    table = format_table(
        ["Event", "Count", "Extra mem accesses", "Extra lines",
         "Extra messages"],
        rows, title="Table 1 — events that trigger parity updates and "
                    "logging (7+1 parity)")
    write_result(results_dir, "table1_event_costs", table)
