"""Design-space sweep: checkpoint interval x detection latency.

Section 3.3.2 fixes the paper's design point (100 ms interval, 80 ms
detection latency) by balancing availability against log retention.
This benchmark regenerates that analysis with the recovery overhead
measured on this simulator (Figure 12's average) and the paper's
25 MB-per-checkpoint log estimate.
"""

from conftest import write_result

from repro.core.detection import design_space
from repro.harness.reporting import format_table

NS_PER_MS = 1_000_000

INTERVALS = [50 * NS_PER_MS, 100 * NS_PER_MS, 1000 * NS_PER_MS]
LATENCIES = [10 * NS_PER_MS, 80 * NS_PER_MS, 500 * NS_PER_MS]
#: 50 ms hardware recovery + the paper's measured Phase 2+3 average
#: (~170 ms at the 100 ms interval).
RECOVERY_OVERHEAD_NS = 220 * NS_PER_MS
PER_EPOCH_LOG_BYTES = 25 << 20


def _collect():
    return design_space(INTERVALS, LATENCIES, RECOVERY_OVERHEAD_NS,
                        PER_EPOCH_LOG_BYTES)


def test_detection_design_space(benchmark, results_dir):
    points = benchmark(_collect)

    paper_point = next(p for p in points
                       if p.interval_ns == 100 * NS_PER_MS
                       and p.detection_latency_ns == 80 * NS_PER_MS)
    # The paper's choice: two retained checkpoints, five nines.
    assert paper_point.keep_checkpoints == 2
    assert paper_point.availability_at_1_per_day > 0.99999
    # Everything in the expected error-frequency regime stays >= 4 nines.
    assert all(p.availability_at_1_per_day > 0.9999 for p in points)

    table = format_table(
        ["Interval (ms)", "Latency (ms)", "Ckpts kept",
         "Worst lost work (ms)", "Unavailable (ms)",
         "Availability @1/day", "Log (MB)"],
        [[f"{p.interval_ns / 1e6:.0f}",
          f"{p.detection_latency_ns / 1e6:.0f}",
          p.keep_checkpoints,
          f"{p.worst_lost_work_ns / 1e6:.0f}",
          f"{p.unavailable_ns / 1e6:.0f}",
          f"{100 * p.availability_at_1_per_day:.5f}%",
          f"{p.log_bytes / (1 << 20):.0f}"] for p in points],
        title="Design space — interval x detection latency "
              "(the paper picks 100ms / 80ms: 2 checkpoints, "
              ">=99.999%)")
    write_result(results_dir, "detection_design_space", table)
