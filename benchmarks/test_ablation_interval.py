"""Ablation: error-free overhead and log size vs checkpoint interval.

Section 3.3 argues the trade-off that fixes the paper's 100 ms design
point: frequent checkpoints cost error-free time (flushes + commits)
but bound the log and the lost work per error.  This sweep quantifies
both sides on one dirty-cache application; overhead must decrease
monotonically-ish with the interval while the maximum log grows.
"""

from conftest import BENCH_SCALE, write_result

from repro.harness.reporting import format_table
from repro.harness.runner import DEFAULT_INTERVAL_NS, run_app

APP = "fft"
INTERVALS = (DEFAULT_INTERVAL_NS // 2, DEFAULT_INTERVAL_NS,
             2 * DEFAULT_INTERVAL_NS, 4 * DEFAULT_INTERVAL_NS)


def _collect():
    base = run_app(APP, "baseline", scale=BENCH_SCALE)
    rows = []
    for interval in INTERVALS:
        result = run_app(APP, "cp_parity", scale=BENCH_SCALE,
                         interval_ns=interval)
        rows.append({
            "interval_ns": interval,
            "overhead": result.overhead_vs(base),
            "max_log_bytes": result.max_log_bytes,
            "checkpoints": result.checkpoints,
            "worst_lost_work_ns": int(interval * 1.8),
        })
    return rows


def test_ablation_checkpoint_interval(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    overheads = [r["overhead"] for r in rows]
    # Sparser checkpoints cost less error-free time...
    assert overheads[-1] < overheads[0]
    # ...but lose more work per error, linearly by construction.
    lost = [r["worst_lost_work_ns"] for r in rows]
    assert lost == sorted(lost)

    table = format_table(
        ["Interval (us)", "Overhead", "Max log (KB)", "Ckpts",
         "Worst lost work (us)"],
        [[f"{r['interval_ns'] / 1e3:.0f}", f"{100 * r['overhead']:+.1f}%",
          f"{r['max_log_bytes'] / 1024:.0f}", r["checkpoints"],
          f"{r['worst_lost_work_ns'] / 1e3:.0f}"] for r in rows],
        title=f"Ablation — checkpoint interval on {APP} "
              f"(scale={BENCH_SCALE}; the paper's Section 3.3 trade-off)")
    write_result(results_dir, "ablation_interval", table)
