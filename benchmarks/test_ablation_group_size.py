"""Ablation: parity group size (Section 6.2's storage/speed trade-off).

Larger groups shrink the parity storage share (1/(N+1)) but concentrate
more data behind each parity page, slowing recovery's reconstruction
work.  The paper picks 7+1 (12% of memory); mirroring (1+1) is the fast
extreme at 50%.  Group sizes must divide the 16-node machine into
clusters, so the sweep covers 1, 3, and 7.
"""

from conftest import BENCH_SCALE, write_result

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.harness.reporting import format_table
from repro.harness.runner import (
    DEFAULT_INTERVAL_NS,
    build_machine,
    run_app,
)
from repro.workloads.registry import get_workload

APP = "ocean"
GROUP_SIZES = (1, 3, 7)


def _collect():
    base = run_app(APP, "baseline", scale=BENCH_SCALE)
    rows = []
    for group in GROUP_SIZES:
        result = run_app(APP, "cp_parity", scale=BENCH_SCALE,
                         parity_group_size=group)
        # Worst-case node-loss recovery at this group size.
        machine = build_machine("cp_parity", parity_group_size=group)
        machine.attach_workload(get_workload(APP, scale=BENCH_SCALE))
        horizon = 3 * DEFAULT_INTERVAL_NS
        while machine.checkpointing.checkpoints_committed < 2:
            machine.run(until=horizon)
            horizon += DEFAULT_INTERVAL_NS
        detect = (machine.checkpointing.commit_times[2]
                  + int(0.8 * DEFAULT_INTERVAL_NS))
        machine.run(until=detect)
        NodeLossFault(3).apply(machine)
        rec = RecoveryManager(machine).recover(detect_time=detect,
                                               lost_node=3, target_epoch=1)
        rows.append({
            "group": group,
            "overhead": result.overhead_vs(base),
            "memory_overhead": 1.0 / (group + 1),
            "recovery_ns": rec.revive_recovery_ns,
            "background_ns": rec.phase4_background_ns,
        })
    return rows


def test_ablation_parity_group_size(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    memory = [r["memory_overhead"] for r in rows]
    assert memory == sorted(memory, reverse=True)   # 50% -> 25% -> 12.5%
    # Mirroring's maintenance is the cheapest (no read-modify-write).
    assert rows[0]["overhead"] <= rows[-1]["overhead"] + 0.02

    table = format_table(
        ["Group (N+1)", "Error-free overhead", "Memory overhead",
         "Recovery Ph2+3 (us)", "Background Ph4 (us)"],
        [[f"{r['group']}+1", f"{100 * r['overhead']:+.1f}%",
          f"{100 * r['memory_overhead']:.1f}%",
          f"{r['recovery_ns'] / 1e3:.0f}",
          f"{r['background_ns'] / 1e3:.0f}"] for r in rows],
        title=f"Ablation — parity group size on {APP} "
              f"(scale={BENCH_SCALE}; paper: 7+1 = 12% memory, "
              f"mirroring = 50%)")
    write_result(results_dir, "ablation_group_size", table)
