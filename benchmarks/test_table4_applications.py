"""Table 4: characteristics of the applications.

Reports the analogs' modelled instruction counts and global L2 miss
rates next to the paper's measurements.  Absolute counts are scaled
(our runs are shorter by design); the reproduction contract is that
the *relative* ordering matches — the three applications whose working
sets overflow the L2 (FFT, Ocean, Radix) stand clearly apart.
"""

from conftest import BENCH_SCALE, cached_run, write_result

from repro.harness.reporting import format_table
from repro.workloads.registry import APP_NAMES, paper_reference

HIGH_MISS_APPS = {"fft", "ocean", "radix"}


def _collect():
    rows = []
    for app in APP_NAMES:
        result = cached_run(app, "baseline")
        ref = paper_reference(app)
        rows.append({
            "app": app,
            "problem": ref["problem"],
            "instructions_M": result.instructions / 1e6,
            "paper_instructions_M": ref["instructions_M"],
            "l2_miss_pct": 100.0 * result.l2_miss_rate,
            "paper_l2_miss_pct": ref["l2_miss_pct"],
        })
    return rows


def test_table4_applications(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    high = {r["app"]: r["l2_miss_pct"] for r in rows
            if r["app"] in HIGH_MISS_APPS}
    low = {r["app"]: r["l2_miss_pct"] for r in rows
           if r["app"] not in HIGH_MISS_APPS}
    # The L2-overflowing trio must sit clearly above everyone else.
    assert min(high.values()) > 2 * max(low.values()), (high, low)
    # And the compute-bound Water codes at the very bottom.
    for water in ("water-n2", "water-sp"):
        assert low[water] <= 0.1, low

    table = format_table(
        ["App", "Problem (paper)", "Instr (M)", "Paper instr (M)",
         "L2 miss %", "Paper miss %"],
        [[r["app"], r["problem"], f"{r['instructions_M']:.1f}",
          r["paper_instructions_M"], f"{r['l2_miss_pct']:.3f}",
          r["paper_l2_miss_pct"]] for r in rows],
        title=f"Table 4 — application characteristics "
              f"(scale={BENCH_SCALE})")
    write_result(results_dir, "table4_applications", table)
