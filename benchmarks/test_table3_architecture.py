"""Table 3: architectural characteristics of the modelled system.

A configuration reproduction: the machine's derived numbers (e.g. the
no-contention local/remote memory latencies) must agree with Table 3.
"""

from conftest import write_result

from repro.harness.experiments import table3_architecture
from repro.harness.reporting import format_table
from repro.machine.config import MachineConfig


def test_table3_architecture(benchmark, results_dir):
    row = benchmark(table3_architecture, MachineConfig.paper())

    assert row["processors"] == 16
    assert row["l1"].startswith("16KB")
    assert row["l2"].startswith("128KB")
    assert row["dir_latency_ns"] == 21
    # Table 3's no-contention latencies: 105ns local, 191ns neighbour.
    # Ours compose from the same ingredients (dir latency + row miss +
    # network); allow the small difference from bus-arbitration terms
    # the paper folds in.
    assert 70 <= row["local_mem_ns"] <= 120
    assert 140 <= row["neighbor_mem_ns"] <= 200

    table = format_table(
        ["Parameter", "Value"],
        [[k, v] for k, v in row.items()],
        title="Table 3 — architectural characteristics "
              "(paper: 105ns local, 191ns neighbour memory)")
    write_result(results_dir, "table3_architecture", table)
