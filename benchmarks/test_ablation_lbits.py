"""Ablation: the optional Logged bit (Section 4.1.2).

The paper argues the L bit is a pure optimisation: a design keeping L
bits only in a directory cache (losing them on displacement) or no L
bits at all stays correct, at the price of logging lines more than once
per checkpoint interval.  This ablation quantifies that price: log
appends and log bytes versus the full-bit design.
"""

from conftest import BENCH_SCALE, write_result

from repro.harness.reporting import format_table
from repro.harness.runner import build_machine
from repro.workloads.registry import get_workload

APP = "ocean"
VARIANTS = [("full L bits", None), ("4K-entry directory cache", 4096),
            ("256-entry directory cache", 256), ("no L bits", 0)]


def _collect():
    rows = []
    for label, capacity in VARIANTS:
        machine = build_machine("cp_parity", l_bit_capacity=capacity)
        machine.attach_workload(get_workload(APP, scale=BENCH_SCALE))
        machine.run()
        appends = sum(log.appends for log in machine.revive.logs.values())
        rows.append({
            "label": label,
            "appends": appends,
            "max_log_bytes": machine.revive.max_log_bytes(),
            "exec_ns": machine.steady_execution_time,
        })
    return rows


def test_ablation_l_bits(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    appends = [r["appends"] for r in rows]
    # Weaker L-bit designs log strictly more.
    assert appends[0] <= appends[1] <= appends[3]
    assert appends[3] > 1.2 * appends[0]

    base_time = rows[0]["exec_ns"]
    table = format_table(
        ["L-bit design", "Log appends", "Max log (KB)",
         "Execution vs full bits"],
        [[r["label"], r["appends"], f"{r['max_log_bytes'] / 1024:.0f}",
          f"{100 * (r['exec_ns'] / base_time - 1):+.1f}%"] for r in rows],
        title=f"Ablation — optional L bit on {APP} "
              f"(scale={BENCH_SCALE}; Section 4.1.2: correctness never "
              f"depends on the bit)")
    write_result(results_dir, "ablation_lbits", table)
