"""Figure 8: performance overhead of ReVive in error-free execution.

Five bars per application: baseline, Cp (periodic checkpoints with 7+1
parity), CpInf (log+parity only), and the two mirroring variants.

Shape contract with the paper (absolute percentages are inflated by the
third scaling step — see DESIGN.md §2 and EXPERIMENTS.md):

* CpInf (log + parity maintenance alone) is small on cache-friendly
  applications and highest on FFT/Ocean/Radix (paper: 2.7% average,
  11% worst);
* mirroring's maintenance traffic is cheaper than parity's (paper:
  1% vs 2.7% average at CpInf);
* adding periodic checkpoints costs most on the applications whose
  caches are dirtiest (FFT, Ocean, Radix).
"""

from conftest import BENCH_SCALE, cached_run, write_result

from repro.harness.reporting import format_table
from repro.harness.runner import VARIANT_LABELS, VARIANTS
from repro.workloads.registry import APP_NAMES

HIGH_MISS_APPS = ("fft", "ocean", "radix")
LOW_MISS_APPS = ("water-n2", "water-sp", "lu", "barnes")


def _collect():
    rows = []
    for app in APP_NAMES:
        base = cached_run(app, "baseline")
        row = {"app": app}
        for variant in VARIANTS[1:]:
            row[variant] = cached_run(app, variant).overhead_vs(base)
        rows.append(row)
    return rows


def test_fig8_overhead(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    by_app = {r["app"]: r for r in rows}

    def mean(variant, apps):
        return sum(by_app[a][variant] for a in apps) / len(apps)

    # Log + parity maintenance (CpInf): the L2-overflowing trio pays
    # more than the cache-friendly group.
    assert mean("cpinf_parity", HIGH_MISS_APPS) \
        > mean("cpinf_parity", LOW_MISS_APPS)
    # Mirroring maintenance is cheaper than parity maintenance.
    assert mean("cpinf_mirroring", APP_NAMES) \
        < mean("cpinf_parity", APP_NAMES) + 0.005
    # Checkpointing adds real cost on top of CpInf everywhere.
    assert mean("cp_parity", APP_NAMES) > mean("cpinf_parity", APP_NAMES)

    header = ["App"] + [VARIANT_LABELS[v] for v in VARIANTS[1:]]
    body = [[r["app"]] + [f"{100 * r[v]:+.1f}%" for v in VARIANTS[1:]]
            for r in rows]
    body.append(["AVERAGE"] + [f"{100 * mean(v, APP_NAMES):+.1f}%"
                               for v in VARIANTS[1:]])
    table = format_table(
        header, body,
        title=f"Figure 8 — error-free execution overhead vs baseline "
              f"(scale={BENCH_SCALE}; paper averages: Cp10ms 6.3%, "
              f"CpInf 2.7%, CpInfM 1%)")
    write_result(results_dir, "fig8_overhead", table)
