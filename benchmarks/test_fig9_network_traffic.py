"""Figure 9: breakdown of network traffic in the Cp configuration.

Traffic splits into RD/RDX (cache-miss data supply), ExeWB (regular
write-backs), CkpWB (checkpoint-flush write-backs), LOG and PAR.
Baseline traffic is RD/RDX + ExeWB; everything else is ReVive's.

Shape contract: PAR dominates the ReVive-added traffic (the paper's
"mostly resulting from parity maintenance"), and the three
L2-overflowing applications carry far more absolute traffic than the
rest.  LOG network traffic is zero by construction — the log lives on
the same node as the data it protects, so log copies never cross the
network (the paper's Figure 9 shows a barely visible LOG share).
"""

from conftest import BENCH_SCALE, cached_run, write_result

from repro.harness.reporting import format_table
from repro.sim.stats import TRAFFIC_CATEGORIES
from repro.workloads.registry import APP_NAMES


def _collect():
    rows = []
    for app in APP_NAMES:
        result = cached_run(app, "cp_parity")
        row = {"app": app}
        row.update(result.network_traffic)
        rows.append(row)
    return rows


def test_fig9_network_traffic(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    by_app = {r["app"]: r for r in rows}

    for row in rows:
        revive_traffic = row["CkpWB"] + row["LOG"] + row["PAR"]
        assert row["PAR"] >= 0.5 * revive_traffic, row["app"]
        assert row["RD/RDX"] > 0

    heavy = sum(sum(by_app[a][c] for c in TRAFFIC_CATEGORIES)
                for a in ("fft", "ocean", "radix")) / 3
    light = sum(sum(by_app[a][c] for c in TRAFFIC_CATEGORIES)
                for a in ("water-n2", "water-sp", "lu")) / 3
    assert heavy > 2 * light

    table = format_table(
        ["App"] + list(TRAFFIC_CATEGORIES) + ["Total MB"],
        [[r["app"]] + [f"{r[c] / 1e6:.2f}" for c in TRAFFIC_CATEGORIES]
         + [f"{sum(r[c] for c in TRAFFIC_CATEGORIES) / 1e6:.2f}"]
         for r in rows],
        title=f"Figure 9 — network traffic breakdown, Cp configuration, "
              f"MB (scale={BENCH_SCALE})")
    write_result(results_dir, "fig9_network_traffic", table)
