"""Ablation: hybrid mirroring+parity protection (Section 6.1's proposal).

"A small part of the memory can be protected by mirroring, while the
rest is protected by parity.  Careful allocation of frequently used
pages into the mirrored region should result in low overheads ...
while reducing the memory space overheads."

The hybrid machine mirrors the lowest page indices — which first-touch
allocation hands to the earliest-touched (hottest) data — and keeps
7+1 parity for the rest.  Expected shape: error-free overhead between
pure parity and pure mirroring, memory overhead likewise.
"""

from conftest import BENCH_SCALE, write_result

from repro.harness.reporting import format_table
from repro.harness.runner import build_machine, run_app

APP = "fft"


def _measure(variant, **overrides):
    result = run_app(APP, variant, scale=BENCH_SCALE, **overrides)
    machine = build_machine(variant, **overrides)
    memory_overhead = machine.geometry.parity_fraction()
    return result, memory_overhead


def _collect():
    base = run_app(APP, "baseline", scale=BENCH_SCALE)
    rows = []
    for label, variant, overrides in [
        ("7+1 parity", "cp_parity", {}),
        ("hybrid (25% mirrored)", "cp_parity", {"mirrored_fraction": 0.25}),
        ("mirroring", "cp_mirroring", {}),
    ]:
        result, memory = _measure(variant, **overrides)
        rows.append({
            "label": label,
            "overhead": result.overhead_vs(base),
            "memory": memory,
        })
    return rows


def test_ablation_hybrid_protection(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    parity, hybrid, mirroring = rows

    # Memory overhead strictly between the extremes.
    assert parity["memory"] < hybrid["memory"] < mirroring["memory"]
    # Error-free overhead: hybrid at or below pure parity (its hot
    # pages avoid the read-modify-write), allowing small noise.
    assert hybrid["overhead"] <= parity["overhead"] + 0.02

    table = format_table(
        ["Scheme", "Error-free overhead", "Memory overhead"],
        [[r["label"], f"{100 * r['overhead']:+.1f}%",
          f"{100 * r['memory']:.1f}%"] for r in rows],
        title=f"Ablation — hybrid protection on {APP} "
              f"(scale={BENCH_SCALE}; Section 6.1's proposed extension)")
    write_result(results_dir, "ablation_hybrid", table)
