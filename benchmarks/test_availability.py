"""Section 3.3.2: availability arithmetic, paper-vs-model.

Checks the analytic claims: at a 100 ms checkpoint interval with 80 ms
detection latency and 50 ms hardware recovery, worst-case node-loss
unavailability stays near 820 ms and availability beats 99.999% at one
error per day; the memory-intact case (~250 ms) reaches 99.9997%.
"""

from conftest import write_result

from repro.core.availability import (
    NS_PER_DAY,
    NS_PER_MS,
    availability,
    average_lost_work_ns,
    nines,
    unavailable_time_ms,
    worst_case_lost_work_ns,
)
from repro.harness.reporting import format_table


def _paper_numbers():
    worst_lost_work = worst_case_lost_work_ns(100 * NS_PER_MS,
                                                 80 * NS_PER_MS)
    avg_lost_work = average_lost_work_ns(100 * NS_PER_MS,
                                            80 * NS_PER_MS)
    rows = []
    for label, lost_work_ms, hw_ms, ph2_ms, ph3_ms in [
        ("worst case, node loss (Radix)", worst_lost_work / 1e6, 50, 100,
         490),
        ("average, node loss", avg_lost_work / 1e6 / 1.3, 50, 30, 140),
        ("average, memory intact", avg_lost_work / 1e6 / 1.3, 50, 0, 70),
    ]:
        unavailable_ms = unavailable_time_ms(lost_work_ms, hw_ms,
                                                ph2_ms, ph3_ms)
        a = availability(NS_PER_DAY, unavailable_ms * 1e6)
        rows.append((label, unavailable_ms, a, nines(a)))
    return rows


def test_availability(benchmark, results_dir):
    rows = benchmark(_paper_numbers)

    worst = rows[0]
    assert worst[1] <= 900.0            # paper: ~820 ms worst case
    assert worst[2] > 0.99999           # five nines even then
    intact = rows[2]
    assert intact[2] > 0.99999

    table = format_table(
        ["Scenario", "Unavailable (ms)", "Availability @ 1 err/day",
         "Nines"],
        [[label, f"{ms:.0f}", f"{100 * a:.5f}%", f"{n:.1f}"]
         for label, ms, a, n in rows],
        title="Availability model (paper: 820ms worst -> 99.999%; "
              "250ms intact -> 99.9997%)")
    write_result(results_dir, "availability", table)
