"""Figure 11: maximum log size in the Cp configuration.

The paper's largest log is ~2.5 MB (Radix) with two checkpoints of
retention at a 10 ms interval.  Our scaled runs produce smaller logs;
the contract is the ordering — Radix's scattered writes produce by far
the largest log, the Water codes the smallest — and that every log
stays far below the reserved region.
"""

from conftest import BENCH_SCALE, cached_run, write_result

from repro.harness.reporting import format_table
from repro.harness.runner import BENCH_LOG_BYTES
from repro.workloads.registry import APP_NAMES


def _collect():
    rows = []
    for app in APP_NAMES:
        result = cached_run(app, "cp_parity")
        rows.append({"app": app, "max_log_bytes": result.max_log_bytes,
                     "checkpoints": result.checkpoints})
    return rows


def test_fig11_log_size(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    sizes = {r["app"]: r["max_log_bytes"] for r in rows}

    # Radix tops the paper's Figure 11 outright; at our scale its high
    # miss stalls compress the references (and therefore the writes)
    # executed per interval, so it shares the top of the ranking with
    # the other two L2-overflowing applications — see EXPERIMENTS.md.
    top3 = sorted(sizes, key=sizes.get, reverse=True)[:3]
    assert "radix" in top3, top3
    assert set(top3) <= {"radix", "ocean", "cholesky", "fft"}, top3
    for water in ("water-n2", "water-sp"):
        assert sizes[water] < sizes["radix"] / 4
    # max_log_bytes sums all 16 nodes; each node's share must fit its
    # reserved region (no LogOverflowError was raised either way).
    for app, size in sizes.items():
        assert size < 16 * BENCH_LOG_BYTES, \
            f"{app} log exceeded the machine-wide region"

    table = format_table(
        ["App", "Max log (KB, sum of 16 nodes)", "Checkpoints"],
        [[r["app"], f"{r['max_log_bytes'] / 1024:.0f}",
          r["checkpoints"]] for r in rows],
        title=f"Figure 11 — maximum log size, Cp configuration "
              f"(scale={BENCH_SCALE}; paper max: ~2.5MB for Radix)")
    write_result(results_dir, "fig11_log_size", table)
