"""Simulator throughput: references simulated per wall-clock second.

Not a paper exhibit — a performance regression guard for the simulator
itself.  The whole evaluation's turnaround depends on this number, so
it is tracked alongside the figures (pytest-benchmark reports the
per-round timing; the test also prints refs/sec).
"""

from conftest import write_result

from repro.harness.reporting import format_table
from repro.harness.runner import build_machine
from repro.machine.config import MachineConfig
from repro.workloads.registry import get_workload


def _simulate(variant):
    machine = build_machine(variant,
                            machine_config=MachineConfig.bench())
    machine.attach_workload(get_workload("lu", scale=0.25))
    machine.run()
    return machine.total_mem_refs(), machine


def test_simulator_throughput(benchmark, results_dir):
    refs, _machine = benchmark.pedantic(lambda: _simulate("baseline"),
                                        rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    refs_per_sec = refs / seconds

    # Regression guard: the trace-driven simulator should stay above
    # ~50k refs/s on any reasonable host (typical: several 100k/s).
    assert refs_per_sec > 50_000, f"{refs_per_sec:.0f} refs/s"

    table = format_table(
        ["Metric", "Value"],
        [["references per round", refs],
         ["mean wall seconds", f"{seconds:.2f}"],
         ["simulated refs/sec (baseline)", f"{refs_per_sec:,.0f}"]],
        title="Simulator throughput (regression guard, not a paper "
              "exhibit)")
    write_result(results_dir, "simulator_throughput", table)
