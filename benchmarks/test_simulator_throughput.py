"""Simulator throughput: references simulated per wall-clock second.

Not a paper exhibit — a performance regression guard for the simulator
itself.  The whole evaluation's turnaround depends on this number, so
it is tracked alongside the figures in two forms:

* the pytest-benchmark test below (human-readable table in
  ``results/simulator_throughput.txt``), and
* the ``perf``-marked harness test, which writes the machine-readable
  ``results/BENCH_throughput.json`` — refs/sec per exhibit, speedup
  against the recorded scalar-tier baseline, the columnar-vs-scalar
  tier comparison, the sweep executor's parallel wall-clock
  comparison, and the result store's warm-cache hit-path latency —
  and enforces the soft regression threshold plus the cache-hit and
  columnar-speedup gates (``repro.harness.perf``).

Run the perf harness alone with ``pytest benchmarks -m perf`` or via
``python tools/bench.py`` (docs/PERFORMANCE.md).
"""

import os

import pytest

from conftest import write_result

from repro.harness.perf import (
    RECORDED_BASELINE_REFS_PER_SEC,
    format_report,
    hard_failures,
    throughput_report,
    write_report,
)
from repro.harness.reporting import format_table
from repro.harness.runner import build_machine
from repro.machine.config import MachineConfig
from repro.workloads.registry import get_workload


def _simulate(variant):
    machine = build_machine(variant,
                            machine_config=MachineConfig.bench())
    machine.attach_workload(get_workload("lu", scale=0.25))
    machine.run()
    return machine.total_mem_refs(), machine


def test_simulator_throughput(benchmark, results_dir):
    refs, _machine = benchmark.pedantic(lambda: _simulate("baseline"),
                                        rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    refs_per_sec = refs / seconds

    # Regression guard: the trace-driven simulator should stay above
    # ~50k refs/s on any reasonable host (typical: several 100k/s).
    assert refs_per_sec > 50_000, f"{refs_per_sec:.0f} refs/s"

    table = format_table(
        ["Metric", "Value"],
        [["references per round", refs],
         ["mean wall seconds", f"{seconds:.2f}"],
         ["simulated refs/sec (baseline)", f"{refs_per_sec:,.0f}"]],
        title="Simulator throughput (regression guard, not a paper "
              "exhibit)")
    write_result(results_dir, "simulator_throughput", table)


@pytest.mark.perf
def test_throughput_report(results_dir):
    """Write BENCH_throughput.json and gate on the soft threshold."""
    report = throughput_report(rounds=3)
    path = os.path.join(results_dir, "BENCH_throughput.json")
    write_report(report, path)
    print()
    print(format_report(report))
    print(f"report: {path}")

    failures = hard_failures(report)
    assert not failures, "; ".join(failures)
    # The recorded number is the scalar fast path's bench-host rate
    # from before the columnar engine; staying at or above it is the
    # point of the exercise.
    base = report["exhibits"]["baseline"]["refs_per_sec"]
    assert base > 50_000, f"{base:.0f} refs/s"
    assert RECORDED_BASELINE_REFS_PER_SEC == 752_941  # provenance pin
