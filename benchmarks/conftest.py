"""Shared fixtures for the benchmark harness.

Simulation runs are expensive and several figures consume the same
configuration (Figures 9, 10 and 11 all read the Cp run), so runs are
memoised per session.  Every benchmark also writes its formatted table
to ``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.harness.runner import RunResult, run_app

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Run-length multiplier for every benchmark; lower it (e.g.
#: ``REPRO_BENCH_SCALE=0.3 pytest benchmarks/``) for a quick pass.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_run_cache: Dict[Tuple[str, str], RunResult] = {}


def cached_run(app: str, variant: str) -> RunResult:
    key = (app, variant)
    if key not in _run_cache:
        _run_cache[key] = run_app(app, variant, scale=BENCH_SCALE)
    return _run_cache[key]


@pytest.fixture(scope="session")
def run_cache():
    return cached_run


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
