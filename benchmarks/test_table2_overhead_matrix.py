"""Table 2: effect of application behaviour and checkpoint frequency.

The paper's qualitative matrix:

    working set            high frequency   low frequency
    does not fit in L2     High             High
    fits in L2, dirty      High             Low
    fits in L2, clean      Medium           Low

Reproduced with three directed synthetic working-set classes at the
bench checkpoint interval ("high") and a 4x sparser one ("low").
"""

from conftest import BENCH_SCALE, write_result

from repro.harness.experiments import table2_overhead_matrix
from repro.harness.reporting import format_table


def test_table2_overhead_matrix(benchmark, results_dir):
    rows = benchmark.pedantic(table2_overhead_matrix, rounds=1,
                              iterations=1,
                              kwargs={"scale": BENCH_SCALE})
    by_class = {r["working_set"]: r for r in rows}

    big = by_class["does_not_fit_l2"]
    dirty = by_class["fits_l2_mostly_dirty"]
    clean = by_class["fits_l2_mostly_clean"]

    # Row 1: high overhead regardless of frequency (log/parity bound).
    assert big["low"] > 0.5 * clean["high"]
    # Row 2: dirty working sets hurt at high frequency, relax at low.
    assert dirty["high"] > 2 * dirty["low"]
    # Row 3: clean working sets checkpoint cheaply at both (medium/low).
    assert clean["high"] < dirty["high"]
    assert clean["low"] <= clean["high"]

    table = format_table(
        ["Working set", "High ckpt frequency", "Low ckpt frequency",
         "Paper says"],
        [
            ["does not fit in L2", f"{100 * big['high']:.1f}%",
             f"{100 * big['low']:.1f}%", "High / High"],
            ["fits in L2, mostly dirty", f"{100 * dirty['high']:.1f}%",
             f"{100 * dirty['low']:.1f}%", "High / Low"],
            ["fits in L2, mostly clean", f"{100 * clean['high']:.1f}%",
             f"{100 * clean['low']:.1f}%", "Medium / Low"],
        ],
        title=f"Table 2 — overhead vs working set and checkpoint "
              f"frequency (scale={BENCH_SCALE})")
    write_result(results_dir, "table2_overhead_matrix", table)
