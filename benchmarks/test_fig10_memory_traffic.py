"""Figure 10: breakdown of memory traffic in the Cp configuration.

Same five categories as Figure 9, measured at the DRAM interface.
Here LOG is visible (log copies are memory writes on the home node)
and PAR includes the parity read-modify-writes on the parity homes.
"""

from conftest import BENCH_SCALE, cached_run, write_result

from repro.harness.reporting import format_table
from repro.sim.stats import TRAFFIC_CATEGORIES
from repro.workloads.registry import APP_NAMES


def _collect():
    rows = []
    for app in APP_NAMES:
        result = cached_run(app, "cp_parity")
        row = {"app": app}
        row.update(result.memory_traffic)
        rows.append(row)
    return rows


def test_fig10_memory_traffic(benchmark, results_dir):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    for row in rows:
        # Every ReVive category materialises at the memory interface.
        assert row["PAR"] > 0, row["app"]
        assert row["LOG"] > 0, row["app"]
        assert row["CkpWB"] > 0, row["app"]
        # Parity is the largest ReVive component (paper: if mirroring
        # were used, only PAR would shrink — to one third).
        assert row["PAR"] >= row["LOG"], row["app"]

    table = format_table(
        ["App"] + list(TRAFFIC_CATEGORIES) + ["Total MB"],
        [[r["app"]] + [f"{r[c] / 1e6:.2f}" for c in TRAFFIC_CATEGORIES]
         + [f"{sum(r[c] for c in TRAFFIC_CATEGORIES) / 1e6:.2f}"]
         for r in rows],
        title=f"Figure 10 — memory traffic breakdown, Cp configuration, "
              f"MB (scale={BENCH_SCALE})")
    write_result(results_dir, "fig10_memory_traffic", table)
