"""Figure 12: breakdown of the unavailable time due to an error.

Section 6.3's scenario: the error (permanent loss of a node) occurs
just before the second checkpoint is established and is detected 0.8 of
an interval later, maximising both lost work and recovery time.  The
unavailable time decomposes into lost work + hardware recovery
(Phase 1, fixed 50 ms) + log rebuild (Phase 2) + rollback (Phase 3).

Contract with the paper: Radix — the largest log — needs the longest
ReVive recovery (paper: 59 ms vs a 17 ms average in its scaled
simulation); extrapolated to the 100 ms real-system interval, total
unavailability lands under ~1 s, giving five nines at one error/day.
Recovery is also verified functionally elsewhere (the test suite
checks bit-for-bit rollback); this benchmark reports the timing.
"""

from conftest import BENCH_SCALE, write_result

from repro.core.availability import availability, NS_PER_DAY
from repro.harness.experiments import fig12_recovery
from repro.harness.reporting import format_table
from repro.workloads.registry import APP_NAMES


def _collect():
    return fig12_recovery(apps=APP_NAMES, scale=BENCH_SCALE, lost_node=3)


def test_fig12_recovery(benchmark, results_dir):
    experiments = benchmark.pedantic(_collect, rounds=1, iterations=1)
    by_app = {e.app: e for e in experiments}

    revive_ns = {e.app: e.result.revive_recovery_ns for e in experiments}
    # Radix's big log means the longest ReVive recovery.
    assert max(revive_ns, key=revive_ns.get) == "radix"
    # Everyone recovers and replays real work.
    for e in experiments:
        assert e.result.entries_undone > 0, e.app
        assert e.result.lost_work_ns > 0, e.app

    rows = []
    worst_unavail_ms = 0.0
    for e in experiments:
        r = e.result
        unavail_ms = e.unavailable_ms_scaled
        worst_unavail_ms = max(worst_unavail_ms, unavail_ms)
        rows.append([
            e.app,
            f"{r.lost_work_ns / 1e3:.0f}",
            f"{r.phase2_ns / 1e3:.0f}",
            f"{r.phase3_ns / 1e3:.0f}",
            f"{r.entries_undone}",
            f"{unavail_ms:.0f}",
        ])
    avg_unavail_ms = sum(e.unavailable_ms_scaled
                         for e in experiments) / len(experiments)
    a = availability(NS_PER_DAY, worst_unavail_ms * 1e6)
    rows.append(["AVERAGE", "", "", "", "",
                 f"{avg_unavail_ms:.0f}"])

    # The paper's headline: > 99.999% availability at 1 error/day even
    # for the worst case.
    assert a > 0.99999, a

    table = format_table(
        ["App", "Lost work (us)", "Log rebuild (us)", "Rollback (us)",
         "Entries undone", "Unavailable, scaled to 100ms interval (ms)"],
        rows,
        title=f"Figure 12 — worst-case node-loss recovery "
              f"(scale={BENCH_SCALE}; paper: 820ms worst, ~400ms avg, "
              f"availability >= 99.999% at 1 error/day; "
              f"measured worst-case availability {100 * a:.5f}%)")
    write_result(results_dir, "fig12_recovery", table)
