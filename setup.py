"""Setup shim: all metadata lives in pyproject.toml.

Present so environments without the `wheel` package can still do
`pip install -e . --no-use-pep517`.
"""
from setuptools import setup

setup()
