"""ReVive: the paper's contribution.

Distributed parity protection (`parity`), in-memory pre-image logging
(`log`), the directory-controller extension tying them into the
coherence protocol (`controller`), global checkpointing (`checkpoint`),
multi-phase rollback recovery (`recovery`), fault injection (`faults`),
and the availability model (`availability`).
"""

from repro.core.config import ReViveConfig
from repro.core.parity import ParityEngine
from repro.core.log import MemoryLog, LogEntry, LogOverflowError
from repro.core.controller import ReViveController
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.recovery import RecoveryManager, RecoveryResult
from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.availability import (
    availability,
    unavailable_time_ms,
    scale_to_real_interval,
)
from repro.core.io import IOManager, IORecord
from repro.core.detection import (
    design_space,
    required_checkpoints,
    retained_log_bytes,
)

__all__ = [
    "ReViveConfig",
    "ParityEngine",
    "MemoryLog",
    "LogEntry",
    "LogOverflowError",
    "ReViveController",
    "CheckpointCoordinator",
    "RecoveryManager",
    "RecoveryResult",
    "NodeLossFault",
    "TransientSystemFault",
    "availability",
    "unavailable_time_ms",
    "scale_to_real_interval",
    "IOManager",
    "IORecord",
    "design_space",
    "required_checkpoints",
    "retained_log_bytes",
]
