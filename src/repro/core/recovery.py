"""Rollback recovery (Section 3.2.4, Figure 7).

Recovery runs in four phases:

* **Phase 1** — hardware recovery: diagnosis, reconfiguration, protocol
  reset.  Outside the paper's scope; a fixed cost (50 ms for 16
  processors, from the Hive/FLASH numbers the paper adopts).
* **Phase 2** — only after memory loss: the lost node's *log region* is
  reconstructed line-by-line by XORing the surviving members of each
  stripe.  Afterwards the log is decoded from the rebuilt bytes alone.
* **Phase 3** — rollback: every node's log entries belonging to epochs
  newer than the recovery target are applied *newest first*, restoring
  each line's checkpoint pre-image.  Lost data pages touched by the
  rollback are rebuilt from parity on demand before entries land in
  them.  At the end the caches and directories are invalidated and
  execution may resume.
* **Phase 4** — background repair: every remaining stripe damaged by the
  node loss is rebuilt.  The machine is *available* during this phase;
  its time is reported separately and never counted as downtime.

The functional side is exact — recovery operates on real line values
and is verified bit-for-bit against golden checkpoint snapshots — while
phase durations come from a cost model over the machine's bandwidth
parameters (reads are batched page-at-a-time across all surviving
processors, so per-access resource walks would misrepresent the
pipelining; see the cost helpers at the bottom).

Observability: a traced recovery emits the ``recovery`` category
events documented in docs/OBSERVABILITY.md — ``recovery.begin`` at
the detection time, a ``recovery.phase_begin`` / ``recovery.phase_end``
pair per phase (``hw_recovery``, ``log_rebuild``, ``rollback``,
``background_repair``) whose timestamp difference *is* the phase
duration, and ``recovery.end`` at the resume time.
:func:`repro.obs.analysis.recovery_breakdown` reconstructs the
Figure 12 components from these events alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine


@dataclass
class RecoveryResult:
    """Everything measured about one recovery."""

    target_epoch: int
    lost_node: Optional[int]
    detect_time: int
    lost_work_ns: int
    phase1_ns: int
    phase2_ns: int
    phase3_ns: int
    phase4_background_ns: int
    entries_undone: int = 0
    log_lines_rebuilt: int = 0
    pages_rebuilt_during_rollback: int = 0
    pages_rebuilt_background: int = 0
    resume_time: int = 0

    @property
    def unavailable_ns(self) -> int:
        """Downtime as the paper counts it: lost work + Phases 1-3."""
        return (self.lost_work_ns + self.phase1_ns + self.phase2_ns
                + self.phase3_ns)

    @property
    def revive_recovery_ns(self) -> int:
        """Figure 12's quantity: Phases 2 + 3 only."""
        return self.phase2_ns + self.phase3_ns

    def breakdown(self) -> Dict[str, int]:
        """The Figure 12 components as a dict of nanoseconds."""
        return {
            "lost_work": self.lost_work_ns,
            "hw_recovery": self.phase1_ns,
            "log_rebuild": self.phase2_ns,
            "rollback": self.phase3_ns,
        }


class RecoveryManager:
    """Executes rollback recovery against a machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.config = machine.config
        self.revive_config = machine.revive_config

    # -- public entry point ----------------------------------------------------

    def recover(self, detect_time: int, lost_node: Optional[int] = None,
                target_epoch: Optional[int] = None) -> RecoveryResult:
        """Run full recovery.  The fault must already be applied.

        ``target_epoch`` defaults to the worst case the paper evaluates:
        the error occurred just before the latest commit, so the system
        rolls back to the *second* most recent checkpoint.
        """
        machine = self.machine
        profiler = getattr(machine, "profiler", None)
        if profiler is None:
            return self._recover(detect_time, lost_node, target_epoch)
        with profiler.timer("recovery"):
            return self._recover(detect_time, lost_node, target_epoch)

    def _recover(self, detect_time: int, lost_node: Optional[int],
                 target_epoch: Optional[int]) -> RecoveryResult:
        machine = self.machine
        if lost_node is None:
            lost = [node.node_id for node in machine.nodes
                    if node.memory.lost]
            if len(lost) > 1:
                raise RuntimeError(
                    f"nodes {lost} lost memory simultaneously — beyond "
                    f"ReVive's single-node fault model (Section 3.1.2)")
            if lost:
                lost_node = lost[0]
        tracer = machine.tracer
        if tracer.enabled:
            tracer.emit(detect_time, "recovery", "recovery.begin",
                        lost_node=lost_node)
        phase1_ns = self.revive_config.hw_recovery_ns

        # Phase 1 side effects: wipe caches and directory state.
        for node in machine.nodes:
            node.hierarchy.clear()
            node.directory.clear_all(at=detect_time)

        # Phase 2 must precede commit-record inspection: the lost
        # node's log region is unreadable until rebuilt from parity.
        phase2_ns = 0
        log_lines_rebuilt = 0
        if lost_node is not None:
            phase2_ns, log_lines_rebuilt = self._rebuild_lost_log(lost_node)

        committed = self.determine_committed_epoch()
        if target_epoch is None:
            target_epoch = max(0, committed - 1)
        if target_epoch > committed:
            raise ValueError(
                f"cannot recover to epoch {target_epoch}: only {committed} "
                f"checkpoints are committed")
        oldest_kept = max(0, committed - (self.revive_config.keep_checkpoints
                                          - 1))
        if target_epoch < oldest_kept:
            raise ValueError(
                f"epoch {target_epoch} was reclaimed (oldest kept: "
                f"{oldest_kept}); increase keep_checkpoints")

        lost_work_ns = max(
            0, detect_time - machine.commit_time_of_epoch(target_epoch))

        phase3_ns, entries, pages_on_demand = self._rollback(
            target_epoch, committed, lost_node)

        phase4_ns, pages_background = self._background_repair(lost_node)

        # Logs and epochs resume from the recovery target.
        for log in machine.revive.logs.values():
            log.reset_to_epoch(target_epoch)
        machine.truncate_checkpoint_history(target_epoch)
        if machine.io_manager is not None:
            # Unreleased outputs from the undone interval never became
            # external; drop them (released history is untouchable).
            machine.io_manager.on_rollback(target_epoch)

        result = RecoveryResult(
            target_epoch=target_epoch,
            lost_node=lost_node,
            detect_time=detect_time,
            lost_work_ns=lost_work_ns,
            phase1_ns=phase1_ns,
            phase2_ns=phase2_ns,
            phase3_ns=phase3_ns,
            phase4_background_ns=phase4_ns,
            entries_undone=entries,
            log_lines_rebuilt=log_lines_rebuilt,
            pages_rebuilt_during_rollback=pages_on_demand,
            pages_rebuilt_background=pages_background,
        )
        result.resume_time = detect_time + result.phase1_ns \
            + result.phase2_ns + result.phase3_ns
        machine.stats.counter("recovery.count").add()
        machine.stats.counter("recovery.entries_undone").add(entries)
        spans = machine.spans
        if spans.enabled:
            # One machine-wide span per recovery (matching
            # ``recovery.count``) covering detection through resume.
            # Phase 4 runs in the background with the machine available,
            # so it is excluded — same convention as ``unavailable_ns``.
            sp = spans.begin("recovery", -1, detect_time,
                             lost_node=lost_node, target_epoch=target_epoch)
            sp.seg("dir", detect_time + result.phase1_ns)
            sp.seg("parity", detect_time + result.phase1_ns
                   + result.phase2_ns)
            sp.seg("log", result.resume_time)
            sp.end(result.resume_time)
        if tracer.enabled:
            self._trace_phases(tracer, result)
        return result

    @staticmethod
    def _trace_phases(tracer, result: RecoveryResult) -> None:
        """Emit the phase-boundary and end events for one recovery.

        Each phase gets a ``recovery.phase_begin`` / ``phase_end``
        pair whose ``ts`` difference equals the phase duration, so a
        trace consumer can recompute the Figure 12 breakdown without
        access to the :class:`RecoveryResult`.  Phase 4 runs in the
        background starting at the resume time; the machine is
        available during it.
        """
        cursor = result.detect_time
        phases = [
            ("hw_recovery", result.phase1_ns, {}),
            ("log_rebuild", result.phase2_ns,
             {"lines_rebuilt": result.log_lines_rebuilt}),
            ("rollback", result.phase3_ns,
             {"entries_undone": result.entries_undone,
              "pages_rebuilt": result.pages_rebuilt_during_rollback}),
        ]
        for phase, dur, fields in phases:
            tracer.emit(cursor, "recovery", "recovery.phase_begin",
                        phase=phase)
            cursor += dur
            tracer.emit(cursor, "recovery", "recovery.phase_end",
                        phase=phase, dur_ns=dur, **fields)
        tracer.emit(result.resume_time, "recovery", "recovery.end",
                    target_epoch=result.target_epoch,
                    lost_work_ns=result.lost_work_ns,
                    entries_undone=result.entries_undone,
                    resume_time=result.resume_time)
        tracer.emit(result.resume_time, "recovery", "recovery.phase_begin",
                    phase="background_repair")
        tracer.emit(result.resume_time + result.phase4_background_ns,
                    "recovery", "recovery.phase_end",
                    phase="background_repair",
                    dur_ns=result.phase4_background_ns,
                    pages_rebuilt=result.pages_rebuilt_background)

    # -- committed-epoch determination (two-phase commit evidence) -------------

    def determine_committed_epoch(self) -> int:
        """Last checkpoint committed on *every* node, from memory alone.

        Reads the durable commit records out of each node's (possibly
        just rebuilt) log region.  A checkpoint counts as established
        only if every node holds its record — exactly the guarantee the
        two barriers of Section 4.2's Checkpoint Commit Race provide.
        """
        machine = self.machine
        global_commit = None
        for node in machine.nodes:
            log = machine.revive.logs[node.node_id]
            records = log.find_commit_records(node.memory.read_line)
            node_max = max((r.value for r in records), default=0)
            if global_commit is None or node_max < global_commit:
                global_commit = node_max
        return global_commit or 0

    # -- Phase 2 -----------------------------------------------------------------

    def _rebuild_lost_log(self, lost_node: int) -> Tuple[int, int]:
        """Reconstruct the lost node's log region from parity.

        Time is charged for a two-pass rebuild — first the metadata
        lines (one per block), whose markers reveal which entry slots
        are live, then only the live entry lines — so Phase 2 grows
        with the *log contents*, as the paper states, not with the
        region's reserved size.  Functionally the whole region is
        restored (the dead lines are free to recompute and keep the
        parity invariant checkable).
        """
        machine = self.machine
        memory = machine.nodes[lost_node].memory
        if not memory.lost:
            raise RuntimeError(
                f"node {lost_node} memory is intact; Phase 2 not needed")
        parity = machine.revive.parity
        for line_addr in machine.log_region_lines(lost_node):
            memory.restore_line(line_addr, parity.reconstruct_line(line_addr))
        memory.mark_recovered()
        # The stripe map memoized before the fault must not survive the
        # node's reincarnation: re-derive all geometry from scratch.
        machine.geom_cache.invalidate()
        log = machine.revive.logs[lost_node]
        meta_lines = log.n_blocks
        live_entries = len(log.decode_region(memory.read_line))
        timed_lines = meta_lines + live_entries
        workers = self.config.n_nodes - 1
        phase2_ns = (timed_lines * self._line_rebuild_cost_ns()
                     // max(1, workers))
        return phase2_ns, timed_lines

    # -- Phase 3 ------------------------------------------------------------------

    def _rollback(self, target_epoch: int, committed: int,
                  lost_node: Optional[int]) -> Tuple[int, int, int]:
        """Apply log entries newest-first; rebuild lost pages on demand.

        Every restore travels the same parity-maintaining write path the
        hardware uses, except when the stripe's parity page sits on the
        lost node — those stripes are repaired wholesale in Phase 4.
        Keeping parity live during the rollback is what makes on-demand
        page reconstruction sound: a lost page is rebuilt from stripe
        members that may themselves have been rolled back already.
        """
        machine = self.machine
        space = machine.addr_space
        total_entries = 0
        pages_rebuilt = 0
        per_node_cost: List[int] = []
        self._rebuilt_pages: Set[Tuple[int, int]] = set()

        for node in machine.nodes:
            log = machine.revive.logs[node.node_id]
            entries = log.entries_to_undo(target_epoch, committed,
                                          node.memory.read_line)
            cost = 0
            for entry in entries:
                page_key = (node.node_id, space.page_of(entry.addr))
                if (lost_node is not None and node.node_id == lost_node
                        and page_key not in self._rebuilt_pages):
                    # Restoring into a lost page: rebuild its stripe
                    # member first so unlogged lines recover too.
                    self._rebuild_page(*page_key)
                    self._rebuilt_pages.add(page_key)
                    pages_rebuilt += 1
                    cost += self._page_rebuild_cost_ns()
                self._restore_line(node.node_id, entry.addr, entry.value,
                                   lost_node)
                cost += self._entry_restore_cost_ns()
                total_entries += 1
            per_node_cost.append(cost)

        if lost_node is not None:
            # The lost node's log is replayed by the survivors; spread
            # its cost across them for the duration estimate.
            lost_cost = per_node_cost[lost_node]
            per_node_cost[lost_node] = 0
            workers = max(1, self.config.n_nodes - 1)
            per_node_cost = [c + lost_cost // workers for c in per_node_cost]

        phase3_ns = max(per_node_cost) if per_node_cost else 0
        return phase3_ns, total_entries, pages_rebuilt

    def _restore_line(self, node_id: int, line_addr: int, value: int,
                      lost_node: Optional[int]) -> None:
        """Write one line through the parity-maintaining restore path.

        Stripes whose parity page lives on the lost node are skipped —
        their parity is recomputed from data at the end of Phase 4.
        """
        machine = self.machine
        memory = machine.nodes[node_id].memory
        parity = machine.revive.parity
        parity_line = parity.parity_line_of(line_addr)
        parity_home = machine.addr_space.node_of(parity_line)
        if parity_home != lost_node:
            parity.apply_update(line_addr, memory.read_line(line_addr),
                                value)
        memory.restore_line(line_addr, value)

    def _rebuild_page(self, node: int, ppage: int) -> None:
        """Functionally reconstruct one lost page from its stripe.

        The reconstructed values are exactly what the live parity
        already accounts for, so these writes must *not* fold into the
        parity again.
        """
        machine = self.machine
        memory = machine.nodes[node].memory
        parity = machine.revive.parity
        for line_addr in machine.addr_space.lines_of_page(node, ppage):
            memory.restore_line(line_addr, parity.reconstruct_line(line_addr))

    # -- Phase 4 --------------------------------------------------------------------

    def _background_repair(self,
                           lost_node: Optional[int]) -> Tuple[int, int]:
        """Repair every stripe the recovery left damaged.

        Functionally: (a) rebuild the lost node's remaining pages from
        parity, and (b) recompute every parity line whose stripe was
        touched by rollback writes (rollback bypasses the normal
        parity-update path, as the paper's Phase 4 does).  The returned
        duration models the machine at ``rebuild_dedication`` of its
        capacity; the system is available throughout.
        """
        machine = self.machine
        space = machine.addr_space
        parity = machine.revive.parity
        pages_rebuilt = 0

        if lost_node is not None:
            memory = machine.nodes[lost_node].memory
            already = getattr(self, "_rebuilt_pages", set())
            # Remaining data pages of the lost node (mapped ones not
            # already rebuilt on demand during the rollback).
            for node_id, ppage in space.mapped_physical_pages():
                if node_id != lost_node or (node_id, ppage) in already:
                    continue
                self._rebuild_page(node_id, ppage)
                pages_rebuilt += 1
            # The system page (context lines) lives outside the mapped set.
            system_page = machine.system_page(lost_node)
            if (lost_node, system_page) not in already:
                self._rebuild_page(lost_node, system_page)
                pages_rebuilt += 1

        # Recompute parity for every touched stripe (cheap functionally;
        # covered by the same background duration estimate).
        touched = set(space.mapped_physical_pages())
        for node in machine.nodes:
            for ppage in machine.reserved_pages_of(node.node_id):
                touched.add((node.node_id, ppage))
        parity_pages = set()
        for node_id, ppage in touched:
            parity_pages.add(parity.geometry.parity_location(node_id, ppage))
        for parity_node, parity_page in sorted(parity_pages):
            target = machine.nodes[parity_node].memory
            for line_addr in space.lines_of_page(parity_node, parity_page):
                target.restore_line(line_addr,
                                    parity.recompute_parity_line(line_addr))
            if lost_node is not None and parity_node == lost_node:
                pages_rebuilt += 1

        workers = self.config.n_nodes - (1 if lost_node is not None else 0)
        effective = max(1e-9, workers * self.revive_config.rebuild_dedication)
        phase4_ns = int(pages_rebuilt * self._page_rebuild_cost_ns()
                        / effective)
        return phase4_ns, pages_rebuilt

    # -- cost model --------------------------------------------------------------------

    def _line_rebuild_cost_ns(self) -> int:
        """Gathering one line's stripe peers and writing the result."""
        group = self.machine.revive.parity.geometry.group_size
        transfer = self.config.line_size / self.config.link_bytes_per_ns
        return int(group * (self.config.mem_row_hit_ns + transfer)
                   + self.config.mem_row_hit_ns)

    def _page_rebuild_cost_ns(self) -> int:
        return self._line_rebuild_cost_ns() * self.config.lines_per_page

    def _entry_restore_cost_ns(self) -> int:
        """Read a log entry (sequential) and write the data line back."""
        return self.config.mem_row_hit_ns + self.config.mem_row_miss_ns
