"""ReVive I/O: output commit and input logging (Section 8's extension).

The paper defers I/O to future work but sketches the approach: "our
distributed parity mechanism is a powerful building block that can be
used to protect the I/O buffers."  This module implements that sketch
for the classic *output-commit problem*:

* **Outputs** (network packets, disk writes) must not become externally
  visible until a checkpoint that covers them commits — otherwise a
  rollback would un-happen something the outside world already saw.
  Outbound records are therefore buffered in a per-node I/O region of
  ordinary parity-protected main memory (stored through the same
  marker-protected record format as the ReVive log, so they survive
  node loss) and *released* only at the next global commit.
* **Inputs** are logged on arrival, also into the protected region, so
  that after a rollback the re-executed interval can *replay* the same
  inputs instead of asking the outside world to resend them.

Rollback semantics: records created after the recovery target are
discarded (they were never released); released records are external
history and are never touched.  Node loss: the I/O region is rebuilt
from parity with the rest of memory, and the pending records are
re-decoded from the rebuilt bytes — the same recovery discipline the
log itself uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.core.log import MemoryLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine

#: Address-field namespace for I/O records: output ports live above
#: input ports so decode can tell the directions apart.
_OUTPUT_BASE = 1 << 20
_INPUT_BASE = 1


@dataclass(frozen=True)
class IORecord:
    """One buffered I/O event."""

    node: int
    port: int
    payload: int
    epoch: int            # epoch the record was created in
    is_output: bool


class IOManager:
    """Output-commit buffering and input logging for one machine.

    Construction requires ``ReViveConfig.io_buffer_pages > 0`` so every
    node has a reserved, parity-protected I/O region.
    """

    def __init__(self, machine: "Machine") -> None:
        if machine.revive is None:
            raise ValueError("ReVive must be enabled for I/O buffering")
        if not machine.io_region_pages(0):
            raise ValueError(
                "no I/O region reserved; set ReViveConfig.io_buffer_pages")
        self.machine = machine
        self.buffers: Dict[int, MemoryLog] = {}
        for node in range(machine.config.n_nodes):
            region = machine.io_region_lines(node)
            self.buffers[node] = MemoryLog(node, region,
                                           machine.config.line_size)
        self.released: List[IORecord] = []
        self.inputs_seen: List[IORecord] = []

    # -- issue paths ---------------------------------------------------------

    def write_output(self, node: int, port: int, payload: int,
                     at: int) -> int:
        """Buffer one outbound record; returns the buffering done-time.

        The record becomes externally visible only when the next global
        checkpoint commits.
        """
        return self._append(node, _OUTPUT_BASE + port, payload, at)

    def log_input(self, node: int, port: int, payload: int, at: int) -> int:
        """Log one inbound record for post-rollback replay."""
        done = self._append(node, _INPUT_BASE + port, payload, at)
        log = self.buffers[node]
        self.inputs_seen.append(IORecord(node, port, payload,
                                         log.current_epoch,
                                         is_output=False))
        return done

    def _append(self, node: int, addr_field: int, payload: int,
                at: int) -> int:
        # Records travel the controller's marker-protected append path:
        # functional content + parity exactness + timing for free.
        controller = self.machine.revive
        return controller.append_record_to(self.buffers[node], node,
                                           addr_field << 6, payload, at)

    # -- checkpoint / recovery hooks ---------------------------------------------

    def on_commit(self, committed_epoch: int) -> List[IORecord]:
        """Release every output buffered before this commit.

        Returns the newly released records (the 'external world' sees
        them now).  Buffers advance to the new epoch and reclaim, like
        the log itself.
        """
        released_now: List[IORecord] = []
        for node, log in self.buffers.items():
            memory = self.machine.nodes[node].memory
            node_records = [
                IORecord(node, (entry.addr >> 6) - _OUTPUT_BASE,
                         entry.value, entry.epoch, is_output=True)
                for entry in log.entries_to_undo(log.current_epoch,
                                                 log.current_epoch,
                                                 memory.read_line)
                if (entry.addr >> 6) >= _OUTPUT_BASE
            ]
            node_records.reverse()            # per-node issue order
            released_now.extend(node_records)
            log.advance_epoch()
            log.reclaim(log.current_epoch)    # everything released/replayed
            log.gang_clear_logged()
        # Ordering is per-node FIFO; cross-node order is unspecified,
        # as for any distributed set of I/O buffers.
        self.released.extend(released_now)
        return released_now

    def on_rollback(self, target_epoch: int) -> int:
        """Discard the unreleased (current-epoch) records.

        Returns how many pending records were dropped.  Released
        records are external history and are preserved.  The buffer
        epoch advances monotonically rather than rewinding with the
        machine: rewinding would alias stale released records whose
        markers are still in memory, and the buffer's epoch is a
        private commit counter, not the checkpoint number.
        """
        dropped = 0
        for node, log in self.buffers.items():
            memory = self.machine.nodes[node].memory
            dropped += len(log.entries_to_undo(log.current_epoch,
                                               log.current_epoch,
                                               memory.read_line))
            log.advance_epoch()
            log.reclaim(log.current_epoch)
            log.gang_clear_logged()
        return dropped

    # -- snapshot / restore (docs/SNAPSHOTS.md) ----------------------------------

    def snapshot(self) -> dict:
        """Plain-data state: buffer logs + released/seen record lists."""
        def _rec(r: IORecord) -> list:
            return [r.node, r.port, r.payload, r.epoch, r.is_output]
        return {"buffers": {n: log.snapshot()
                            for n, log in self.buffers.items()},
                "released": [_rec(r) for r in self.released],
                "inputs_seen": [_rec(r) for r in self.inputs_seen]}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`."""
        for n, log_state in state["buffers"].items():
            self.buffers[n].restore(log_state)
        self.released[:] = [IORecord(*r) for r in state["released"]]
        self.inputs_seen[:] = [IORecord(*r) for r in state["inputs_seen"]]

    # -- queries ---------------------------------------------------------------------

    def pending_outputs(self) -> List[IORecord]:
        """Outputs buffered but not yet released (decoded from memory)."""
        out: List[IORecord] = []
        for node, log in self.buffers.items():
            memory = self.machine.nodes[node].memory
            node_records = [
                IORecord(node, (entry.addr >> 6) - _OUTPUT_BASE,
                         entry.value, entry.epoch, is_output=True)
                for entry in log.entries_to_undo(log.current_epoch,
                                                 log.current_epoch,
                                                 memory.read_line)
                if (entry.addr >> 6) >= _OUTPUT_BASE
            ]
            node_records.reverse()            # per-node issue order
            out.extend(node_records)
        return out

    def replay_inputs(self, since_epoch: int) -> List[IORecord]:
        """Inputs to replay when re-executing after a rollback."""
        return [r for r in self.inputs_seen if r.epoch >= since_epoch]
