"""Availability arithmetic (Section 3.3.2).

``A = (T_E - T_U) / T_E`` where ``T_E`` is the mean time between errors
and ``T_U`` the mean unavailable time per error.  The paper's headline:
with a 100 ms checkpoint interval, 80 ms detection latency, 50 ms
hardware recovery, and worst-case node-loss recovery (~590 ms for
Radix), unavailability stays near 820 ms, so even one error per day
yields better than 99.999% availability.

Measured recovery times from the scaled simulation are extrapolated to
the paper's real-system interval with :func:`scale_to_real_interval`
using the same proportionality the paper itself applies (log size — and
hence Phases 2/3 — grows with the checkpoint interval).
"""

from __future__ import annotations

NS_PER_DAY = 86_400_000_000_000
NS_PER_MS = 1_000_000

#: The real-system checkpoint interval the paper's availability numbers
#: assume (Section 3.3.2).
REAL_INTERVAL_NS = 100 * NS_PER_MS


def availability(mean_time_between_errors_ns: float,
                 unavailable_ns_per_error: float) -> float:
    """Fraction of time the machine is available."""
    if mean_time_between_errors_ns <= 0:
        raise ValueError("mean time between errors must be positive")
    if unavailable_ns_per_error < 0:
        raise ValueError("unavailable time cannot be negative")
    if unavailable_ns_per_error >= mean_time_between_errors_ns:
        return 0.0
    return ((mean_time_between_errors_ns - unavailable_ns_per_error)
            / mean_time_between_errors_ns)


def nines(availability_fraction: float) -> float:
    """Number of nines: 0.99999 -> 5.0."""
    import math

    if not 0.0 <= availability_fraction < 1.0:
        raise ValueError("availability must be in [0, 1)")
    if availability_fraction == 0.0:
        return 0.0
    return -math.log10(1.0 - availability_fraction)


def unavailable_time_ms(lost_work_ms: float, hw_recovery_ms: float,
                        log_rebuild_ms: float, rollback_ms: float) -> float:
    """Total downtime per error, the Figure 7 / Figure 12 sum."""
    parts = (lost_work_ms, hw_recovery_ms, log_rebuild_ms, rollback_ms)
    if any(p < 0 for p in parts):
        raise ValueError("time components cannot be negative")
    return sum(parts)


def scale_to_real_interval(measured_ns: int, simulated_interval_ns: int,
                           real_interval_ns: int = REAL_INTERVAL_NS) -> int:
    """Extrapolate a measured recovery component to the real interval.

    The paper simulates at a 10 ms interval and multiplies by 10 for
    the 100 ms real system, arguing conservatively that log size (and
    therefore log rebuild and rollback time) grows at most
    proportionally to the interval.
    """
    if simulated_interval_ns <= 0 or real_interval_ns <= 0:
        raise ValueError("intervals must be positive")
    return int(measured_ns * real_interval_ns / simulated_interval_ns)


def worst_case_lost_work_ns(checkpoint_interval_ns: int,
                            detection_latency_ns: int) -> int:
    """Error just before a commit, detected ``detection_latency`` later."""
    if checkpoint_interval_ns < 0 or detection_latency_ns < 0:
        raise ValueError("times cannot be negative")
    return checkpoint_interval_ns + detection_latency_ns


def average_lost_work_ns(checkpoint_interval_ns: int,
                         detection_latency_ns: int) -> int:
    """Error half-way into an interval, on average (Section 3.3.2)."""
    if checkpoint_interval_ns < 0 or detection_latency_ns < 0:
        raise ValueError("times cannot be negative")
    return checkpoint_interval_ns // 2 + detection_latency_ns
