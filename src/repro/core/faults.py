"""Fault injection (Section 3.1.2's error classes).

Two fault models cover the paper's recovery scenarios:

* :class:`NodeLossFault` — permanent loss of an entire node: its memory
  contents (including its share of logs and parity), caches, and
  processor vanish.  Recovery needs all four phases.
* :class:`TransientSystemFault` — a system-wide glitch (e.g. all
  processors reset, all caches and in-flight messages lost) that leaves
  every memory module intact.  Recovery skips Phases 2 and 4 entirely
  and Phase 3 never rebuilds pages — the paper's fast path (~250 ms
  average unavailability instead of ~350 ms).

A fault is *applied* to a paused machine; the benchmark harness runs
the workload up to the detection time, applies the fault, and invokes
:class:`repro.core.recovery.RecoveryManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine


@dataclass(frozen=True)
class NodeLossFault:
    """Permanent loss of one node (worst case the paper evaluates)."""

    node: int

    def apply(self, machine: "Machine") -> None:
        """Inflict this fault on the machine."""
        if not 0 <= self.node < machine.config.n_nodes:
            raise ValueError(f"no such node: {self.node}")
        node = machine.nodes[self.node]
        node.memory.destroy()
        node.hierarchy.clear()
        node.directory.clear_all()
        if self.node < len(machine.processors):
            machine.processors[self.node].kill()
        machine.stats.counter("fault.node_loss").add()

    @property
    def loses_memory(self) -> bool:
        """Whether this fault class destroys memory contents."""
        return True

    @property
    def lost_node(self) -> Optional[int]:
        """The node whose memory is lost, or ``None``."""
        return self.node


@dataclass(frozen=True)
class TransientSystemFault:
    """System-wide transient error; memory modules stay intact."""

    def apply(self, machine: "Machine") -> None:
        """Inflict this fault on the machine."""
        for node in machine.nodes:
            node.hierarchy.clear()
            node.directory.clear_all()
        machine.stats.counter("fault.transient").add()

    @property
    def loses_memory(self) -> bool:
        """Whether this fault class destroys memory contents."""
        return False

    @property
    def lost_node(self) -> Optional[int]:
        """The node whose memory is lost, or ``None``."""
        return None
