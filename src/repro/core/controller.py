"""The ReVive directory-controller extension (Sections 3.2.1, 3.2.2, 4.1).

The coherence protocol calls two hooks:

* :meth:`on_store_intent` — a read-exclusive or upgrade reached the home
  (Figure 5(a)).  If the line's Logged bit is clear, its pre-image is
  copied from memory to the log and the log's parity updated, all in
  the background; the data reply is never delayed.  The line stays busy
  in the directory until the log-parity acknowledgment arrives.
* :meth:`on_memory_write` — a write-back (or sharing write-back / flush)
  is about to update main memory.  If the line is already logged, only
  the data parity needs maintenance (Figure 4) and the write-back can
  be acknowledged as soon as the data is written.  Otherwise the log
  entry and its parity must be fully committed *before* the data write
  (Figure 5(b), the Log-Data Update Race of Section 4.2), so the
  acknowledgment is delayed.

Ordering guarantees implemented exactly as Section 4.2 requires:
log-entry line before marker word (Atomic Log Update), log + log parity
before data (Log-Data Update), data then data parity (Data-Parity Update
— safe because the log already holds the pre-image).

Table 1 accounting: each event class maintains counters of its *extra*
memory accesses, extra lines touched, and extra network messages, with
the paper's definitions (the data reply's memory read and the data
write itself are not extra).  Metadata-line writes are write-combined
in a controller buffer and flushed once per eight entries; their costs
are charged to separate ``revive.metaflush.*`` counters so the
per-event numbers remain comparable with the paper's table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.core.log import ENTRIES_PER_BLOCK, MemoryLog
from repro.core.parity import ParityEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine

#: Table 1 event classes.
EVENT_WB_LOGGED = "wb_logged"        # Figure 4
EVENT_RDX_UNLOGGED = "rdx_unlogged"  # Figure 5(a)
EVENT_WB_UNLOGGED = "wb_unlogged"    # Figure 5(b)


class ReViveController:
    """Per-machine ReVive logic; owns one :class:`MemoryLog` per node."""

    def __init__(self, machine: "Machine", parity: ParityEngine,
                 logs: Dict[int, MemoryLog]) -> None:
        self.machine = machine
        self.config = machine.config
        self.stats = machine.stats
        self.parity = parity
        self.logs = logs
        # Entries accumulated since the last metadata-buffer flush.
        self._meta_pending: Dict[int, int] = {n: 0 for n in logs}

    # -- event accounting ----------------------------------------------------

    def _count_event(self, event: str, accesses: int, lines: int,
                     messages: int) -> None:
        base = f"revive.{event}"
        self.stats.counter(f"{base}.events").add()
        self.stats.counter(f"{base}.extra_accesses").add(accesses)
        self.stats.counter(f"{base}.extra_lines").add(lines)
        self.stats.counter(f"{base}.extra_messages").add(messages)

    # -- protocol hooks ----------------------------------------------------------

    def on_store_intent(self, home_id: int, line_addr: int, at: int) -> int:
        """Figure 5(a): log the pre-image on read-exclusive / upgrade.

        Returns the time until which the directory entry stays busy.
        The caller supplies the data reply; this hook only performs the
        background log copy and log-parity update.
        """
        log = self.logs[home_id]
        if log.is_logged(line_addr):
            return at
        home = self.machine.nodes[home_id]
        old_value = home.memory.read_line(line_addr)
        busy = self._append_log_entry(home_id, line_addr, old_value, at)
        # Extra work: 1 access to copy data to log (+1 line), then 3
        # accesses / 1 line / 2 messages for the log parity (Table 1).
        self._count_event(EVENT_RDX_UNLOGGED, accesses=4, lines=2,
                          messages=2)
        return busy

    def on_memory_write(self, home_id: int, line_addr: int, new_value: int,
                        at: int, category: str,
                        span=None) -> Tuple[int, int]:
        """Write ``line_addr`` in home memory through the ReVive path.

        Returns ``(ack_time, busy_until)``: when the write-back may be
        acknowledged, and how long the directory entry must stay busy
        (until the last parity acknowledgment).  ``span``, when given,
        receives the segments on the acknowledgment's critical path;
        parity work past the ack time is background and uncharged.
        """
        home = self.machine.nodes[home_id]
        log = self.logs[home_id]
        old_value = home.memory.read_line(line_addr)

        mirrored = self.parity.is_mirrored_line(line_addr)
        if log.is_logged(line_addr):
            # Figure 4: data parity maintenance only.
            t = at
            extra_accesses = 0
            if not mirrored:
                # Read the old data content to form U = D xor D'.
                t = home.mem_timing.access(t)
                self.stats.memory_traffic.add("PAR", self.config.line_size)
                extra_accesses += 1
                if span is not None:
                    span.seg("mem_read", t)
            write_done = home.mem_timing.access(t)
            self.stats.memory_traffic.add(category, self.config.line_size)
            home.memory.write_line(line_addr, new_value)
            self.parity.apply_update(line_addr, old_value, new_value)
            parity_ack = self.parity.time_update(line_addr, write_done)
            extra_accesses += 1 if mirrored else 2
            self._count_event(EVENT_WB_LOGGED, accesses=extra_accesses,
                              lines=1, messages=2)
            if span is not None:
                span.seg("mem_write", write_done)
            return write_done, parity_ack

        # Figure 5(b): log first, then data; the ack is delayed until
        # the log entry and its parity are safely stored.
        read_done = home.mem_timing.access(at)
        self.stats.memory_traffic.add("PAR", self.config.line_size)
        if span is not None:
            span.seg("mem_read", read_done)
        log_done = self._append_log_entry(home_id, line_addr, old_value,
                                          read_done, span=span)
        write_done = home.mem_timing.access(log_done)
        self.stats.memory_traffic.add(category, self.config.line_size)
        home.memory.write_line(line_addr, new_value)
        self.parity.apply_update(line_addr, old_value, new_value)
        parity_start = write_done
        if not mirrored:
            # The controller has no data cache (Section 3.2.2), so the
            # old data content is re-read to form the parity update.
            parity_start = home.mem_timing.access(write_done, row_hit=True)
            self.stats.memory_traffic.add("PAR", self.config.line_size)
        data_parity_ack = self.parity.time_update(line_addr, parity_start)
        # Copy-to-log: 2 accesses / 1 line; log parity: 3 / 1 / 2;
        # data parity: 3 / 1 / 2 (Table 1; mirroring drops the reads).
        if mirrored:
            self._count_event(EVENT_WB_UNLOGGED, accesses=5, lines=3,
                              messages=4)
        else:
            self._count_event(EVENT_WB_UNLOGGED, accesses=8, lines=3,
                              messages=4)
        if span is not None:
            span.seg("mem_write", write_done)
        return write_done, data_parity_ack

    # -- checkpoint support ------------------------------------------------------

    def append_commit_record(self, node_id: int, at: int) -> int:
        """Durably mark a checkpoint commit in the node's log.

        Called between the two barriers of the two-phase commit; the
        record travels the same log + parity path as data entries.
        Returns the completion time.
        """
        log = self.logs[node_id]
        return self._append_log_entry(node_id, line_addr=0, old_value=0,
                                      at=at, is_commit=True)

    def on_checkpoint_committed(self, at: int = 0) -> None:
        """Gang-clear every L bit and reclaim stale log epochs.

        ``at`` is the checkpoint's commit time; it stamps the
        ``log.reclaim`` trace events the reclamation emits.
        """
        keep = self.machine.revive_config.keep_checkpoints
        for log in self.logs.values():
            log.gang_clear_logged()
            log.reclaim(log.current_epoch - (keep - 1), at=at)

    def max_log_bytes(self) -> int:
        """Largest per-run log footprint seen on any sample."""
        return max(log.max_bytes_used for log in self.logs.values())

    def total_log_bytes(self) -> int:
        """Current live log bytes summed over all nodes."""
        return sum(log.bytes_used for log in self.logs.values())

    # -- internals -------------------------------------------------------------------

    def append_record_to(self, log: MemoryLog, home_id: int,
                         addr_field: int, value: int, at: int) -> int:
        """Append a record to an arbitrary parity-protected record store.

        Same marker-protected, parity-maintained path as the ReVive
        log; used by the I/O output-commit buffers (``core.io``).
        """
        return self._append_log_entry(home_id, addr_field, value, at,
                                      log=log)

    def _append_log_entry(self, home_id: int, line_addr: int, old_value: int,
                          at: int, is_commit: bool = False,
                          log: MemoryLog = None, span=None) -> int:
        """Write one log record (entry line, then marker) with parity.

        Returns the time the log-parity acknowledgment arrives, i.e.
        when the record is fully safe.  ``span``, when given, receives
        the log and parity segments; the two overlapping acknowledgment
        paths (entry parity vs. metadata flush) fold into the span's
        monotone cursor, so the segment sum still lands exactly on the
        returned time.
        """
        home = self.machine.nodes[home_id]
        if log is None:
            log = self.logs[home_id]
        writes = log.make_writes(line_addr, old_value,
                                 home.memory.read_line, is_commit=is_commit)
        entry_line = writes[0][0]

        # Old content of the entry line (stale data from a reclaimed
        # wrap) is needed to form the log-parity update.
        t = home.mem_timing.access(at, row_hit=True)
        self.stats.memory_traffic.add("PAR", self.config.line_size)

        # Functional writes, in marker-last order, with exact parity.
        for mem_line, new_content in writes:
            previous = home.memory.read_line(mem_line)
            home.memory.write_line(mem_line, new_content)
            self.parity.apply_update(mem_line, previous, new_content)

        # Timed path: entry-line write + its parity round trip.
        t = home.mem_timing.access(t, row_hit=True)
        self.stats.memory_traffic.add("LOG", self.config.line_size)
        if span is not None:
            span.seg("log", t)
        ack = self.parity.time_update(entry_line, t, sequential=True)
        if span is not None:
            span.seg("parity", ack)

        log.commit_append(line_addr, is_commit=is_commit, at=t)
        ack = max(ack, self._maybe_flush_metadata(home_id, t, log,
                                                  span=span))
        self.stats.sample_log_size(at, self.total_log_bytes())
        self._check_log_pressure(log)
        return ack

    def snapshot(self) -> dict:
        """Plain-data state: per-node logs + metadata write-combine fill."""
        return {"logs": {n: log.snapshot() for n, log in self.logs.items()},
                "meta_pending": dict(self._meta_pending)}

    def digest_state(self) -> dict:
        """Determinism-observatory hook (obs/digest.py).

        The controller's own fingerprint excludes the per-node logs,
        which ``machine/digest.py`` digests individually as
        ``node<i>.log`` components so a log divergence names its node.
        """
        return {"meta_pending": dict(self._meta_pending)}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` (docs/SNAPSHOTS.md)."""
        for n, log_state in state["logs"].items():
            self.logs[n].restore(log_state)
        self._meta_pending.update(state["meta_pending"])

    def _check_log_pressure(self, log: MemoryLog) -> None:
        """Request an early checkpoint when a log nears capacity."""
        fraction = self.machine.revive_config.emergency_checkpoint_fraction
        if fraction is None or self.machine.checkpointing is None:
            return
        if log.slots_used >= fraction * log.capacity_slots:
            self.machine.request_early_checkpoint()

    def _maybe_flush_metadata(self, home_id: int, at: int,
                              log: MemoryLog, span=None) -> int:
        """Write-combine metadata words; flush once per full block."""
        self._meta_pending[home_id] += 1
        if self._meta_pending[home_id] < ENTRIES_PER_BLOCK:
            return at
        self._meta_pending[home_id] = 0
        home = self.machine.nodes[home_id]
        # Flush the metadata line of the block just completed.
        _entry, meta_line, _within = log._slot_lines(max(log.head - 1, 0))
        done = home.mem_timing.access(at, row_hit=True)
        self.stats.memory_traffic.add("LOG", self.config.line_size)
        self.stats.counter("revive.metaflush.events").add()
        meta_ack = self.parity.time_update(meta_line, done, sequential=True)
        if span is not None:
            # Charged only past the span's cursor: the flush runs in
            # parallel with the entry-line parity ack recorded by the
            # caller, and only the excess extends the critical path.
            span.seg("log", done)
            span.seg("parity", meta_ack)
        return meta_ack
