"""Error-detection-latency design space (Sections 3.1.2, 3.2.3, 3.3.2).

ReVive assumes fail-stop behaviour for its own hardware but tolerates a
*bounded* detection latency for everything else: an error may be
noticed up to L after it happened, and recovery must roll back to a
checkpoint that precedes the error.  The latency bound drives two
design parameters:

* **Retention** — how many past checkpoints must stay recoverable:
  an error just before commit k, detected L later, may be noticed
  after ``floor(L / interval)`` further commits, so
  ``ceil(L / interval) + 1`` checkpoints of log must be retained.
* **Log space** — retained epochs multiply the worst-case log bytes.

Combined with the availability model this yields the design-space
sweep the paper's Section 3.3.2 walks through for its 100 ms / 80 ms
choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.availability import availability, NS_PER_DAY


def required_checkpoints(detection_latency_ns: int,
                         interval_ns: int) -> int:
    """Checkpoints that must remain recoverable (Section 3.2.3).

    With latency below one interval this is the paper's "two most
    recent checkpoints"; longer latencies need proportionally more.
    """
    if interval_ns <= 0:
        raise ValueError("interval must be positive")
    if detection_latency_ns < 0:
        raise ValueError("detection latency cannot be negative")
    return math.ceil(detection_latency_ns / interval_ns) + 1


def worst_case_rollback_epochs(detection_latency_ns: int,
                               interval_ns: int) -> int:
    """How many commits back the recovery target can lie."""
    return required_checkpoints(detection_latency_ns, interval_ns) - 1


def retained_log_bytes(per_epoch_bytes: int, detection_latency_ns: int,
                       interval_ns: int) -> int:
    """Worst-case log footprint for the retention the latency demands."""
    if per_epoch_bytes < 0:
        raise ValueError("per_epoch_bytes cannot be negative")
    return per_epoch_bytes * required_checkpoints(detection_latency_ns,
                                                  interval_ns)


@dataclass(frozen=True)
class DesignPoint:
    """One (interval, detection latency) configuration evaluated."""

    interval_ns: int
    detection_latency_ns: int
    keep_checkpoints: int
    worst_lost_work_ns: int
    unavailable_ns: int
    availability_at_1_per_day: float
    log_bytes: int


def design_space(intervals_ns: List[int], latencies_ns: List[int],
                 recovery_overhead_ns: int,
                 per_epoch_log_bytes: int) -> List[DesignPoint]:
    """Sweep the (interval, latency) plane (the Section 3.3.2 analysis).

    ``recovery_overhead_ns`` is the latency-independent downtime:
    hardware recovery plus the measured ReVive Phases 2+3.
    ``per_epoch_log_bytes`` scales the retention cost.
    """
    points = []
    for interval in intervals_ns:
        for latency in latencies_ns:
            keep = required_checkpoints(latency, interval)
            lost = interval + latency           # error just before commit
            unavailable = lost + recovery_overhead_ns
            points.append(DesignPoint(
                interval_ns=interval,
                detection_latency_ns=latency,
                keep_checkpoints=keep,
                worst_lost_work_ns=lost,
                unavailable_ns=unavailable,
                availability_at_1_per_day=availability(NS_PER_DAY,
                                                       unavailable),
                log_bytes=retained_log_bytes(per_epoch_log_bytes, latency,
                                             interval),
            ))
    return points
