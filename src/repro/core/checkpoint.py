"""Global checkpoint establishment (Section 3.2.3, Figure 6).

Periodically, every processor is interrupted; each saves its execution
context to memory and writes back every dirty cached line (both travel
the full ReVive write-back path, so logging and parity updates happen
as a side effect).  Then the machine runs a two-phase commit: barrier,
durable per-node commit record in the log, barrier.  Afterwards the L
bits are gang-cleared and log space older than the retained-checkpoint
window is reclaimed.

The coordinator runs synchronously from the simulator's global hook:
it advances every processor's local clock across the checkpoint and
reports the commit time, and the machine rebuilds the event queue.

Observability: each checkpoint emits the ``ckpt`` category events
``ckpt.begin`` (interrupt delivery), ``ckpt.flush_done`` (all dirty
lines written back), ``ckpt.barrier1`` (first two-phase-commit
barrier passed, commit records being appended), and ``ckpt.commit``
(second barrier passed, checkpoint established) through the machine's
tracer; the per-node commit records themselves appear as ``log.append``
events with ``commit=true``.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine

#: Issue gap between successive flush write-backs from one processor.
#: The stream is paced by moving a 64-byte line over the 3.2 B/ns
#: system bus (Table 3), not by the L2 access alone.
FLUSH_ISSUE_NS = 20


class CheckpointCoordinator:
    """Orchestrates global checkpoints for one machine."""

    def __init__(self, machine: "Machine", interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.machine = machine
        self.interval_ns = interval_ns
        #: Absolute commit time of checkpoint k (k = epoch number).
        #: Checkpoint 0 is the initial state, committed at time 0.
        self.commit_times: List[int] = [0]

    @property
    def checkpoints_committed(self) -> int:
        """How many checkpoints have committed so far."""
        return len(self.commit_times) - 1

    def run_checkpoint(self, trigger_time: int) -> int:
        """Establish one global checkpoint; returns the commit time.

        The caller (the machine's simulator hook) is responsible for
        rescheduling the processors at the returned time.
        """
        machine = self.machine
        config = machine.config
        stats = machine.stats
        protocol = machine.protocol
        tracer = machine.tracer

        interrupt_at = trigger_time + config.interrupt_ns
        if tracer.enabled:
            tracer.emit(trigger_time, "ckpt", "ckpt.begin",
                        epoch=self.checkpoints_committed + 1)
        # Machine-wide span (node -1): interrupt + flush to the flush
        # barrier, commit records as the log segment, barriers as net.
        spans = machine.spans
        sp = (spans.begin("ckpt", -1, trigger_time,
                          epoch=self.checkpoints_committed + 1)
              if spans.enabled else None)
        flush_done = interrupt_at
        total_dirty = 0
        for node in machine.nodes:
            proc = machine.processors[node.node_id] \
                if node.node_id < len(machine.processors) else None
            start = interrupt_at
            if proc is not None and not proc.finished:
                start = max(proc.time, trigger_time) + config.interrupt_ns
            # Save the execution context (one line written to local memory).
            issue = start + config.context_save_ns
            last_ack = protocol.writeback(
                node.node_id, machine.context_line(node.node_id),
                machine.next_store_value(), issue, category="CkpWB",
                retain_clean=True)
            # Write back every dirty cached line, pipelined.
            for line in node.hierarchy.dirty_lines():
                ack = protocol.writeback(node.node_id, line.addr, line.value,
                                         issue, category="CkpWB",
                                         retain_clean=True)
                node.hierarchy.mark_clean(line.addr)
                issue += FLUSH_ISSUE_NS
                if ack > last_ack:
                    last_ack = ack
                total_dirty += 1
            node_done = max(issue, last_ack)
            if node_done > flush_done:
                flush_done = node_done

        if tracer.enabled:
            tracer.emit(flush_done, "ckpt", "ckpt.flush_done",
                        dirty_lines=total_dirty)
        if sp is not None:
            sp.seg("mem_write", flush_done)

        # Two-phase commit: barrier; durable commit record; barrier.
        barrier1 = flush_done + config.barrier_ns
        if tracer.enabled:
            tracer.emit(barrier1, "ckpt", "ckpt.barrier1")
        if sp is not None:
            sp.seg("net", barrier1)
        marker_done = barrier1
        for node in machine.nodes:
            log = machine.revive.logs[node.node_id]
            log.advance_epoch()
            ack = machine.revive.append_commit_record(node.node_id, barrier1)
            if ack > marker_done:
                marker_done = ack
        commit_time = marker_done + config.barrier_ns
        if sp is not None:
            sp.seg("log", marker_done)
            sp.seg("net", commit_time)
            sp.end(commit_time)

        machine.revive.on_checkpoint_committed(at=commit_time)
        self.commit_times.append(commit_time)
        if tracer.enabled:
            tracer.emit(commit_time, "ckpt", "ckpt.commit",
                        epoch=self.checkpoints_committed,
                        dur_ns=commit_time - trigger_time)
        if machine.io_manager is not None:
            # Output commit: everything buffered before this commit is
            # now covered by a recoverable checkpoint and may be
            # released to the outside world.
            machine.io_manager.on_commit(self.checkpoints_committed)
        stats.counter("ckpt.count").add()
        stats.counter("ckpt.dirty_lines_flushed").add(total_dirty)
        stats.counter("ckpt.total_ns").add(commit_time - trigger_time)
        stats.sample_log_size(commit_time, machine.revive.total_log_bytes())
        if machine.revive_config.debug_snapshots:
            machine.take_snapshot(self.current_epoch())
        return commit_time

    def current_epoch(self) -> int:
        """Epoch number of the most recently committed checkpoint."""
        return self.checkpoints_committed

    def snapshot(self) -> dict:
        """Plain-data state: the commit-time history."""
        return {"commit_times": list(self.commit_times)}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` (docs/SNAPSHOTS.md)."""
        self.commit_times[:] = state["commit_times"]

    def next_trigger_after(self, commit_time: int) -> int:
        """When the next periodic checkpoint should fire."""
        return commit_time + self.interval_ns
