"""Hardware-maintained distributed parity (Section 3.2.1).

Every write of main memory produces a parity update ``U = D XOR D'``
that the home directory controller sends to the parity page's home,
where the old parity is read, XORed with ``U``, and written back, then
acknowledged.  Mirroring (1+1 groups) short-circuits the XORs: the new
data value is simply written to the mirror page (the paper's degenerate
case, saving the two reads).

The engine owns both the *functional* parity contents (stored in the
parity nodes' ``NodeMemory`` like any other line) and the *timing* of
the update round-trip, and provides the reconstruction primitive used
by recovery: any lost line equals the XOR of its surviving stripe
members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.memory.geomcache import GeometryCache
from repro.memory.layout import ParityGeometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine


class ParityEngine:
    """Distributed parity maintenance and reconstruction."""

    def __init__(self, machine: "Machine", geometry: ParityGeometry) -> None:
        if not geometry.enabled:
            raise ValueError("ParityEngine requires an enabled geometry")
        self.machine = machine
        self.geometry = geometry
        self.config = machine.config
        self.stats = machine.stats
        self.updates = 0
        # One geometry lookup per distinct line, ever: home node,
        # parity line, parity home and mirroring are all memoized in
        # the machine-owned cache (docs/PERFORMANCE.md).
        self.geom = machine.geom_cache

    # -- address helpers ---------------------------------------------------

    def parity_line_of(self, line_addr: int) -> int:
        """Physical address of the parity line covering a data line."""
        parity_line = self.geom.entry(line_addr)[1]
        if parity_line is None:
            raise ValueError(
                f"line {line_addr:#x} is itself parity; it has no "
                f"covering parity line")
        return parity_line

    def is_mirrored_line(self, line_addr: int) -> bool:
        """Does this line's stripe use mirroring (no read-modify-write)?"""
        return self.geom.entry(line_addr)[3]

    def peer_lines_of(self, line_addr: int) -> List[int]:
        """The other stripe members (data + parity) of any line."""
        return list(self.geom.peers(line_addr))

    # -- error-free operation ------------------------------------------------

    def apply_update(self, line_addr: int, old_value: int,
                     new_value: int) -> None:
        """Functionally fold one data-line write into its parity line.

        With mirroring the parity (mirror) line simply takes the new
        value.  Timing is charged separately by :meth:`time_update` so
        the directory controller can write-combine metadata-line parity
        while keeping contents exact.
        """
        _home, parity_line, parity_home, mirrored = self.geom.entry(line_addr)
        if parity_line is None:
            raise ValueError(
                f"line {line_addr:#x} is itself parity; it has no "
                f"covering parity line")
        parity_node = self.machine.nodes[parity_home]
        if mirrored:
            parity_node.memory.write_line(parity_line, new_value)
        else:
            old_parity = parity_node.memory.read_line(parity_line)
            parity_node.memory.write_line(
                parity_line, old_parity ^ old_value ^ new_value)

    def time_update(self, line_addr: int, at: int,
                    sequential: bool = False) -> int:
        """Charge the timing and traffic of one parity-update round trip.

        Update message to the parity home, parity read + write there
        (just the write under mirroring), and the acknowledgment back.
        Returns the ack's arrival time at the data's home node.
        ``sequential`` marks log-region updates, whose parity is
        accessed in order and hits open DRAM rows.
        """
        network = self.machine.network
        home_id, parity_line, parity_home, mirrored = \
            self.geom.entry(line_addr)
        if parity_line is None:
            raise ValueError(
                f"line {line_addr:#x} is itself parity; it has no "
                f"covering parity line")
        parity_node = self.machine.nodes[parity_home]

        arrive = network.send_line(home_id, parity_home, at, "PAR")
        if mirrored:
            done = parity_node.mem_timing.access(arrive, row_hit=sequential)
            self.stats.memory_traffic.add("PAR", self.config.line_size)
        else:
            read_done = parity_node.mem_timing.access(arrive,
                                                      row_hit=sequential)
            self.stats.memory_traffic.add("PAR", self.config.line_size)
            done = parity_node.mem_timing.access(read_done, row_hit=True)
            self.stats.memory_traffic.add("PAR", self.config.line_size)
        ack = network.send_control(parity_home, home_id, done, "PAR")
        self.updates += 1
        return ack

    def update_for_write(self, line_addr: int, old_value: int,
                         new_value: int, at: int,
                         sequential: bool = False) -> int:
        """Functional + timed parity update for one memory write."""
        self.apply_update(line_addr, old_value, new_value)
        return self.time_update(line_addr, at, sequential=sequential)

    # -- snapshot / restore (docs/SNAPSHOTS.md) --------------------------------

    def snapshot(self) -> dict:
        """Plain-data state (the update counter; contents live in memory)."""
        return {"updates": self.updates}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`."""
        self.updates = state["updates"]

    # -- reconstruction (used by recovery, Phases 2-4) -------------------------

    def reconstruct_line(self, line_addr: int) -> int:
        """Recompute a lost line by XORing its surviving stripe members.

        With mirroring this degenerates to reading the single peer.
        Purely functional; recovery charges timing separately because
        reconstruction is batched page-at-a-time.
        """
        nodes = self.machine.nodes
        home_node = self.geom.home_node
        value = 0
        for peer in self.geom.peers(line_addr):
            value ^= nodes[home_node(peer)].memory.read_line(peer)
        return value

    def recompute_parity_line(self, parity_line: int) -> int:
        """Recompute a parity line from its data members (stripe repair)."""
        space = self.machine.addr_space
        node, ppage = space.node_page_of(parity_line)
        offset = parity_line % self.config.page_size
        value = 0
        for data_node, data_page in self.geometry.stripe_data_pages(node,
                                                                    ppage):
            member = space.page_base(data_node, data_page) + offset
            value ^= self.machine.nodes[data_node].memory.read_line(member)
        return value

    # -- invariants (tests and post-recovery verification) ----------------------

    def check_stripe(self, parity_node: int, ppage: int) -> bool:
        """True when a parity page equals the XOR of its data pages."""
        space = self.machine.addr_space
        for parity_line in space.lines_of_page(parity_node, ppage):
            stored = self.machine.nodes[parity_node].memory.read_line(
                parity_line)
            if stored != self.recompute_parity_line(parity_line):
                return False
        return True

    def check_all_parity(self) -> List[Tuple[int, int]]:
        """Exhaustive parity scan; returns the list of broken stripes.

        Only stripes containing at least one touched page are scanned —
        untouched stripes are all-zero and trivially consistent.
        """
        space = self.machine.addr_space
        touched = set(space.mapped_physical_pages())
        for node in range(self.config.n_nodes):
            for ppage in self.machine.reserved_pages_of(node):
                touched.add((node, ppage))
        broken = []
        checked = set()
        for node, ppage in touched:
            parity_node, parity_page = self.geometry.parity_location(node,
                                                                     ppage)
            key = (parity_node, parity_page)
            if key in checked:
                continue
            checked.add(key)
            if not self.check_stripe(parity_node, parity_page):
                broken.append(key)
        return broken

    def memory_overhead_fraction(self) -> float:
        """Fraction of main memory consumed by parity (Section 6.2)."""
        return self.geometry.parity_fraction()
