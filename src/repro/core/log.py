"""The ReVive memory log (Section 3.2.2).

Each node owns a log region carved out of its own parity-protected main
memory.  The region is a circular buffer of *blocks*; a block is nine
memory lines: eight entry lines, each holding the 64-byte pre-image of
one data line, plus one metadata line holding eight packed 64-bit words
— one per entry — encoding the entry's data-line address, its epoch, a
16-bit sequence number, and the validity *Marker* of Section 4.2.

The marker protocol is preserved exactly: an append writes the entry
line first and the metadata word (with the valid bit) strictly after,
so a fault between the two leaves an invalid — and therefore ignored —
entry.  Checkpoint commits append a *commit record* (a reserved address
pattern) through the same path, making the two-phase commit durable in
parity-protected storage: recovery can determine the last fully
committed checkpoint from memory contents alone, even for a lost node
whose log was rebuilt by XOR.

Metadata word layout (bit 0 is the LSB)::

    bit  0      valid marker
    bits 1-7    epoch mod 128
    bits 8-23   sequence number mod 65536 (insertion order, wrap-safe)
    bits 24-63  line address >> 6 (40 bits)

Observability: a log carries a ``tracer`` (``NULL_TRACER`` by default,
installed by ``Machine``); :meth:`MemoryLog.commit_append` emits the
``log.append`` event for every record that lands (data and commit
records alike) and :meth:`MemoryLog.reclaim` emits ``log.reclaim``
when checkpoint commit frees slots.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import NULL_TRACER

ENTRIES_PER_BLOCK = 8
LINES_PER_BLOCK = ENTRIES_PER_BLOCK + 1
#: Accounting size of one entry: a 64-byte line plus its 1/8 share of
#: the metadata line (Figure 11 reports log bytes).
ENTRY_BYTES = 72

_SEQ_MOD = 1 << 16
_EPOCH_MOD = 1 << 7
_ADDR_BITS = 40
#: Address-field pattern marking a checkpoint commit record.
_COMMIT_PATTERN = (1 << _ADDR_BITS) - 1
_WORD_MASK = (1 << 64) - 1


class LogOverflowError(RuntimeError):
    """The log region filled up before a checkpoint reclaimed space."""


@dataclass(frozen=True)
class LogEntry:
    """One decoded log record."""

    __slots__ = ("addr", "epoch", "seq", "value", "is_commit")

    addr: int          # line-aligned physical address (commit records: -1)
    epoch: int         # epoch mod 128 as stored; resolved epoch if known
    seq: int           # sequence number mod 65536
    value: int         # the logged pre-image (commit records: epoch echo)
    is_commit: bool

    @property
    def is_data(self) -> bool:
        """True for data records (False for commit records)."""
        return not self.is_commit


def _pack_word(addr_line: int, epoch: int, seq: int, valid: bool) -> int:
    return ((addr_line & (_COMMIT_PATTERN)) << 24) \
        | ((seq % _SEQ_MOD) << 8) \
        | ((epoch % _EPOCH_MOD) << 1) \
        | (1 if valid else 0)


def _unpack_word(word: int) -> Tuple[int, int, int, bool]:
    valid = bool(word & 1)
    epoch = (word >> 1) & (_EPOCH_MOD - 1)
    seq = (word >> 8) & (_SEQ_MOD - 1)
    addr_line = (word >> 24) & _COMMIT_PATTERN
    return addr_line, epoch, seq, valid


def unwrap_sequence(seqs: Iterable[int]) -> Dict[int, int]:
    """Map wrapped 16-bit sequence numbers to a totally ordered rebase.

    Valid as long as fewer than 2^15 slots are live at once, which the
    region-size validation guarantees.
    """
    seqs = list(seqs)
    if not seqs:
        return {}
    lo, hi = min(seqs), max(seqs)
    if hi - lo <= _SEQ_MOD // 2:
        return {s: s for s in seqs}
    # The live window straddles the wrap point: small values are newer.
    return {s: s + _SEQ_MOD if s < _SEQ_MOD // 2 else s for s in seqs}


class MemoryLog:
    """Per-node ReVive log living in the node's own memory region."""

    def __init__(self, node: int, region_lines: Sequence[int],
                 line_size: int, l_bit_capacity: Optional[int] = None) -> None:
        """``l_bit_capacity`` models Section 4.1.2's cheap variant: L
        bits live only in a directory cache of that many entries, so a
        displaced line is occasionally re-logged.  ``0`` disables L bits
        entirely (every write-back logs); ``None`` is the full per-line
        bit."""
        if len(region_lines) < LINES_PER_BLOCK:
            raise ValueError("log region smaller than one block")
        if l_bit_capacity is not None and l_bit_capacity < 0:
            raise ValueError("l_bit_capacity must be >= 0 or None")
        self.node = node
        self.line_size = line_size
        self.region_lines: List[int] = list(region_lines)
        self.n_blocks = len(self.region_lines) // LINES_PER_BLOCK
        self.capacity_slots = self.n_blocks * ENTRIES_PER_BLOCK
        if self.capacity_slots >= _SEQ_MOD // 2:
            raise ValueError(
                "log region too large for 16-bit sequence disambiguation")
        self.head = 0                    # total slots ever appended
        self.tail = 0                    # oldest retained slot
        self.current_epoch = 0
        self.epoch_start: Dict[int, int] = {0: 0}
        self.l_bit_capacity = l_bit_capacity
        # The L bits; a dict for LRU order under bounded capacity.
        self.logged_lines: Dict[int, None] = {}
        self.max_bytes_used = 0
        self.appends = 0
        #: Trace sink for ``log.*`` events (``NULL_TRACER`` when off).
        self.tracer = NULL_TRACER

    # -- geometry -----------------------------------------------------------

    def _slot_lines(self, slot: int) -> Tuple[int, int, int]:
        """(entry line addr, metadata line addr, index within block)."""
        ring_slot = slot % self.capacity_slots
        block, within = divmod(ring_slot, ENTRIES_PER_BLOCK)
        base = block * LINES_PER_BLOCK
        meta_line = self.region_lines[base]
        entry_line = self.region_lines[base + 1 + within]
        return entry_line, meta_line, within

    # -- L bits --------------------------------------------------------------

    def is_logged(self, line_addr: int) -> bool:
        """Test the line's L bit.

        With a bounded capacity (the directory-cache variant of
        Section 4.1.2) a displaced bit reads as clear, so the line is
        re-logged — wasteful but correct, because recovery applies
        entries in reverse insertion order.
        """
        if self.l_bit_capacity == 0:
            return False
        return line_addr in self.logged_lines

    def set_logged(self, line_addr: int) -> None:
        """Set the line's L bit (subject to the capacity policy)."""
        if self.l_bit_capacity == 0:
            return
        self.logged_lines.pop(line_addr, None)
        self.logged_lines[line_addr] = None
        if self.l_bit_capacity is not None \
                and len(self.logged_lines) > self.l_bit_capacity:
            # Displace the least recently set bit (directory cache).
            del self.logged_lines[next(iter(self.logged_lines))]

    def gang_clear_logged(self) -> None:
        """Clear every L bit (done after each checkpoint commit)."""
        self.logged_lines.clear()

    # -- appends ---------------------------------------------------------------

    def make_writes(self, line_addr: int, old_value: int,
                    read_line: Callable[[int], int],
                    is_commit: bool = False) -> List[Tuple[int, int]]:
        """Build the ordered (mem_line, new_content) writes for one append.

        ``read_line`` fetches current memory contents (needed to splice
        one 64-bit word into the metadata line).  The first write is the
        entry line, the second the metadata line carrying the valid
        marker — the order that makes a mid-append fault safe
        (Atomic Log Update Race, Section 4.2).

        Commit records skip the entry-line write: their metadata word is
        self-contained.
        """
        if self.head - self.tail >= self.capacity_slots:
            raise LogOverflowError(
                f"node {self.node} log full "
                f"({self.capacity_slots} slots); checkpoint more often or "
                f"grow log_bytes_per_node")
        slot = self.head
        entry_line, meta_line, within = self._slot_lines(slot)
        addr_field = _COMMIT_PATTERN if is_commit \
            else (line_addr >> 6) & _COMMIT_PATTERN
        word = _pack_word(addr_field, self.current_epoch, slot, valid=True)
        old_meta = read_line(meta_line)
        shift = 64 * within
        new_meta = (old_meta & ~(_WORD_MASK << shift)) | (word << shift)
        writes: List[Tuple[int, int]] = []
        if not is_commit:
            writes.append((entry_line, old_value))
        else:
            # A commit record's entry line stores the epoch number so
            # decoded logs can cross-check the metadata word.
            writes.append((entry_line, self.current_epoch))
        writes.append((meta_line, new_meta))
        return writes

    def commit_append(self, line_addr: int, is_commit: bool = False,
                      at: int = 0) -> None:
        """Advance the head after the writes of :meth:`make_writes` landed.

        ``at`` is the simulated time of the append, used only for the
        ``log.append`` trace event (node, slot, epoch, line address,
        commit flag, live bytes).
        """
        slot = self.head
        self.head += 1
        self.appends += 1
        if not is_commit:
            self.set_logged(line_addr)
        used = self.bytes_used
        if used > self.max_bytes_used:
            self.max_bytes_used = used
        if self.tracer.enabled:
            self.tracer.emit(at, "log", "log.append", node=self.node,
                             slot=slot, epoch=self.current_epoch,
                             line=(-1 if is_commit else line_addr),
                             commit=is_commit, bytes_used=used)

    # -- epochs -----------------------------------------------------------------

    def advance_epoch(self) -> int:
        """Start a new epoch after a checkpoint commit; returns its number."""
        self.current_epoch += 1
        self.epoch_start[self.current_epoch] = self.head
        return self.current_epoch

    def reclaim(self, oldest_epoch_to_keep: int, at: int = 0) -> int:
        """Free slots of epochs older than ``oldest_epoch_to_keep``.

        Returns the number of slots reclaimed.  Only bookkeeping — the
        memory lines are simply overwritten later (log space reclamation
        "only involves moving the log head pointer", Section 3.3.1).
        ``at`` (simulated ns) stamps the ``log.reclaim`` trace event.
        """
        new_tail = self.epoch_start.get(oldest_epoch_to_keep)
        if new_tail is None or new_tail <= self.tail:
            return 0
        reclaimed = new_tail - self.tail
        self.tail = new_tail
        if self.tracer.enabled:
            self.tracer.emit(at, "log", "log.reclaim", node=self.node,
                             slots=reclaimed,
                             oldest_epoch=oldest_epoch_to_keep,
                             bytes_used=self.bytes_used)
        for epoch in [e for e in self.epoch_start
                      if e < oldest_epoch_to_keep]:
            del self.epoch_start[epoch]
        return reclaimed

    # -- rollback support ----------------------------------------------------------

    def entries_to_undo(self, target_epoch: int, upto_epoch: int,
                        read_line: Callable[[int], int]) -> List[LogEntry]:
        """Decode entries with epoch in [target, upto], newest first.

        Reads the log *from memory content alone*, not from Python-side
        bookkeeping — the same code path recovery uses on a node whose
        log region was just rebuilt from parity and whose controller
        state (head/tail pointers) went down with the node.  Records of
        reclaimed epochs may still carry valid markers; the epoch filter
        rejects them (this assumes fewer than 128 epochs elapse within
        one log wrap, which the 7-bit epoch field imposes — a real
        implementation would widen the field or scrub markers).
        """
        keep_epochs = {e % _EPOCH_MOD for e in
                       range(target_epoch, upto_epoch + 1)}
        live = [e for e in self.decode_region(read_line)
                if e.is_data and e.epoch in keep_epochs]
        rebase = unwrap_sequence([e.seq for e in live])
        live.sort(key=lambda e: rebase[e.seq], reverse=True)
        return live

    def find_commit_records(self,
                            read_line: Callable[[int], int]) -> List[LogEntry]:
        """All decodable commit records (two-phase-commit evidence)."""
        return [e for e in self.decode_region(read_line) if e.is_commit]

    def decode_region(self,
                      read_line: Callable[[int], int]) -> List[LogEntry]:
        """Decode every valid record findable in the region's memory.

        Scans all ring positions; slots never written read as zero and
        carry no valid marker.
        """
        out: List[LogEntry] = []
        for position in range(self.capacity_slots):
            entry_line, meta_line, within = self._slot_lines(position)
            meta = read_line(meta_line)
            word = (meta >> (64 * within)) & _WORD_MASK
            addr_field, epoch, seq, valid = _unpack_word(word)
            if not valid:
                continue
            if addr_field == _COMMIT_PATTERN:
                out.append(LogEntry(addr=-1, epoch=epoch, seq=seq,
                                    value=read_line(entry_line),
                                    is_commit=True))
            else:
                out.append(LogEntry(addr=addr_field << 6, epoch=epoch,
                                    seq=seq, value=read_line(entry_line),
                                    is_commit=False))
        return out

    def reset_to_epoch(self, target_epoch: int) -> None:
        """After rollback, drop undone entries and resume at the target."""
        start = self.epoch_start.get(target_epoch, self.tail)
        self.head = start
        self.current_epoch = target_epoch
        for epoch in [e for e in self.epoch_start if e > target_epoch]:
            del self.epoch_start[epoch]
        self.logged_lines.clear()

    # -- snapshot / restore (docs/SNAPSHOTS.md) ----------------------------------

    def snapshot(self) -> dict:
        """Plain-data state: pointers, epochs, L bits (in LRU order)."""
        return {"head": self.head,
                "tail": self.tail,
                "current_epoch": self.current_epoch,
                "epoch_start": list(self.epoch_start.items()),
                "logged_lines": list(self.logged_lines),
                "max_bytes_used": self.max_bytes_used,
                "appends": self.appends}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` (geometry is reconstructed by
        the owning machine; only mutable state is carried)."""
        self.head = state["head"]
        self.tail = state["tail"]
        self.current_epoch = state["current_epoch"]
        self.epoch_start.clear()
        self.epoch_start.update(state["epoch_start"])
        self.logged_lines.clear()
        for line_addr in state["logged_lines"]:
            self.logged_lines[line_addr] = None
        self.max_bytes_used = state["max_bytes_used"]
        self.appends = state["appends"]

    # -- statistics --------------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        """Live log bytes (slots retained x 72 B per entry)."""
        return (self.head - self.tail) * ENTRY_BYTES

    @property
    def slots_used(self) -> int:
        """Live entry slots between tail and head."""
        return self.head - self.tail
