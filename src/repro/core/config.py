"""ReVive configuration.

The defaults correspond to the paper's evaluated design point: 7+1
distributed parity, two retained checkpoints, and a checkpoint interval
scaled to the simulated machine (the paper runs its simulations at 10 ms
for 128 KB caches standing in for 100 ms on a real 2 MB machine; our
bench preset scales a further step — see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ReViveConfig:
    """Parameters of the ReVive mechanisms."""

    #: Data pages per parity stripe (the N of N+1).  1 selects mirroring
    #: (the degenerate case of Section 3.2.1); 7 is the paper's default.
    parity_group_size: int = 7

    #: Hybrid protection (Section 6.1's suggestion): this fraction of
    #: each node's pages — the lowest page indices, which first-touch
    #: allocation hands to the earliest-touched (hottest) data — is
    #: mirrored instead of parity-protected.  0 disables the hybrid.
    mirrored_fraction: float = 0.0

    #: Simulated nanoseconds between global checkpoints.  ``None``
    #: disables periodic checkpoints (the paper's CpInf configuration,
    #: which isolates log + parity maintenance overhead).
    checkpoint_interval_ns: int = 500_000

    #: How many past checkpoints must remain recoverable.  Two suffices
    #: when the error-detection latency is below one interval
    #: (Section 3.2.3).
    keep_checkpoints: int = 2

    #: Worst-case error-detection latency, as a fraction of the
    #: checkpoint interval (the paper evaluates 80 ms against 100 ms).
    detection_latency_fraction: float = 0.8

    #: Memory set aside for the log region on each node.
    log_bytes_per_node: int = 256 * 1024

    #: When a node's log fills past this fraction of its region, an
    #: early (emergency) checkpoint is requested so reclamation frees
    #: space before the log overflows — the flexibility Section 3.1
    #: credits logging with ("we can choose the checkpoint frequency").
    #: ``None`` disables; CpInf configurations cannot use it (nothing
    #: ever reclaims their logs).
    emergency_checkpoint_fraction: "float | None" = 0.85

    #: Pages per node reserved as a parity-protected I/O buffer region
    #: (the Section 8 extension: output commit + input logging via
    #: ``core.io.IOManager``).  0 disables I/O buffering.
    io_buffer_pages: int = 0

    #: L-bit implementation (Section 4.1.2).  ``None``: a full bit per
    #: memory line.  A positive integer: bits live in a directory cache
    #: of that many entries, so displaced lines get re-logged
    #: (occasionally wasteful, always correct).  ``0``: no L bits at
    #: all — every write-back logs, and recovery relies on reverse-order
    #: application of duplicate entries.
    l_bit_capacity: "int | None" = None

    #: Phase-1 hardware recovery time (diagnosis, reconfiguration,
    #: protocol reset) — 50 ms for a 16-processor machine, from the
    #: Hive/FLASH measurements the paper cites.
    hw_recovery_ns: int = 50_000_000

    #: Fraction of the machine devoted to background parity-group
    #: rebuilding (Phase 4); the paper quotes ~20 s for 2 GB at 50%.
    rebuild_dedication: float = 0.5

    #: Keep a full memory snapshot at every commit so tests can verify
    #: rollback bit-for-bit.  Costs host memory, not simulated time.
    debug_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.parity_group_size < 1:
            raise ValueError("parity_group_size must be >= 1 "
                             "(ReVive always protects memory)")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")
        if self.checkpoint_interval_ns is not None \
                and self.checkpoint_interval_ns <= 0:
            raise ValueError("checkpoint_interval_ns must be positive or None")
        if not 0.0 <= self.detection_latency_fraction < self.keep_checkpoints:
            raise ValueError(
                "detection latency must be below the retained-checkpoint "
                "window or errors could outlive their logs")
        if self.log_bytes_per_node <= 0:
            raise ValueError("log_bytes_per_node must be positive")
        if not 0.0 < self.rebuild_dedication <= 1.0:
            raise ValueError("rebuild_dedication must be in (0, 1]")
        if not 0.0 <= self.mirrored_fraction <= 1.0:
            raise ValueError("mirrored_fraction must be in [0, 1]")
        if self.l_bit_capacity is not None and self.l_bit_capacity < 0:
            raise ValueError("l_bit_capacity must be None or >= 0")
        if self.emergency_checkpoint_fraction is not None \
                and not 0.0 < self.emergency_checkpoint_fraction <= 1.0:
            raise ValueError(
                "emergency_checkpoint_fraction must be in (0, 1] or None")
        if self.io_buffer_pages < 0:
            raise ValueError("io_buffer_pages must be >= 0")
        if self.mirrored_fraction and self.parity_group_size == 1:
            raise ValueError("hybrid protection is redundant under pure "
                             "mirroring (parity_group_size=1)")

    @property
    def mirroring(self) -> bool:
        """True for the pure-mirroring (1+1) configuration."""
        return self.parity_group_size == 1

    @property
    def detection_latency_ns(self) -> int:
        """Absolute worst-case detection latency."""
        if self.checkpoint_interval_ns is None:
            return 0
        return int(self.checkpoint_interval_ns
                   * self.detection_latency_fraction)

    # -- the paper's four evaluated configurations -------------------------

    @classmethod
    def cp_parity(cls, interval_ns: int = 500_000, **kw) -> "ReViveConfig":
        """Periodic checkpoints with 7+1 parity (the paper's Cp10ms)."""
        return cls(parity_group_size=7, checkpoint_interval_ns=interval_ns,
                   **kw)

    @classmethod
    def cpinf_parity(cls, **kw) -> "ReViveConfig":
        """No periodic checkpoints, 7+1 parity (CpInf)."""
        return cls(parity_group_size=7, checkpoint_interval_ns=None, **kw)

    @classmethod
    def cp_mirroring(cls, interval_ns: int = 500_000, **kw) -> "ReViveConfig":
        """Periodic checkpoints with mirroring (Cp10msM)."""
        return cls(parity_group_size=1, checkpoint_interval_ns=interval_ns,
                   **kw)

    @classmethod
    def cpinf_mirroring(cls, **kw) -> "ReViveConfig":
        """No periodic checkpoints, mirroring (CpInfM)."""
        return cls(parity_group_size=1, checkpoint_interval_ns=None, **kw)

    @classmethod
    def cp_hybrid(cls, interval_ns: int = 500_000,
                  mirrored_fraction: float = 0.25, **kw) -> "ReViveConfig":
        """Hybrid: hottest pages mirrored, the rest 7+1 parity
        (the extension Section 6.1 proposes)."""
        return cls(parity_group_size=7, checkpoint_interval_ns=interval_ns,
                   mirrored_fraction=mirrored_fraction, **kw)
