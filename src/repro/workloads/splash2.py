"""Synthetic analogs of the twelve Splash-2 applications (Table 4).

*Paper used:* the Splash-2 binaries, executed by an execution-driven
simulator.  *We build:* one :class:`~repro.workloads.synthetic.SyntheticSpec`
per application, shaped after the application's published behaviour
(working sets, sharing style, read/write mix — Woo et al., ISCA '95, and
the paper's own Table 4) and calibrated so the analog's L2 miss rate on
the bench-preset machine lands near the paper's measured value.

The spec constants below are the result of that calibration (see
``tests/test_workload_calibration.py``, which pins the achieved rates).
Reference lengths are proportional to Table 4's instruction counts so
the relative run lengths match the paper's.

Key shapes preserved:

* **FFT, Ocean, Radix** are the three applications whose important
  working sets overflow the L2 — they must show the high miss rates
  (1.8-2.5%), the heavy write-back traffic, and (for FFT/Ocean) the
  nearly-all-dirty caches at checkpoint time that give them the paper's
  worst ReVive overheads.
* **Water-N2 / Water-Sp** are compute-bound with tiny working sets —
  the near-zero overhead end of Figure 8.
* The rest sit in between, with sharing styles matching their
  algorithms (migratory for FMM's cell interactions, producer-consumer
  for LU/Cholesky pipelines, task-queue-style uniform sharing for
  Radiosity/Raytrace).

All twelve analogs inherit the synthetic generator's columnar
contract, and all twelve are pinned bit-identical across the three
execution tiers (reference loop / scalar fast path / columnar batch
engine) by the tier oracle in ``tests/test_columnar.py`` — the analog
set doubles as the equivalence corpus because it spans the hit-rate
spectrum the columnar engine's miss-fallout segmentation must handle
(water-nsq's ~0% misses through ocean's ~2%).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.synthetic import SyntheticSpec

#: Paper's Table 4, for reporting paper-vs-measured: total instructions
#: (millions) and global L2 miss rate (percent).
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "barnes":    {"instructions_M": 1230, "l2_miss_pct": 0.05,
                  "problem": "16K particles"},
    "cholesky":  {"instructions_M": 1224, "l2_miss_pct": 0.26,
                  "problem": "tk29.O"},
    "fft":       {"instructions_M": 468,  "l2_miss_pct": 1.78,
                  "problem": "1M points"},
    "fmm":       {"instructions_M": 1002, "l2_miss_pct": 0.24,
                  "problem": "16K particles"},
    "lu":        {"instructions_M": 336,  "l2_miss_pct": 0.07,
                  "problem": "512x512 matrix, 16x16 block"},
    "ocean":     {"instructions_M": 270,  "l2_miss_pct": 2.02,
                  "problem": "258x258 grid"},
    "radiosity": {"instructions_M": 744,  "l2_miss_pct": 0.15,
                  "problem": "-test"},
    "radix":     {"instructions_M": 186,  "l2_miss_pct": 2.51,
                  "problem": "4M keys, radix 1024"},
    "raytrace":  {"instructions_M": 612,  "l2_miss_pct": 0.26,
                  "problem": "car"},
    "volrend":   {"instructions_M": 984,  "l2_miss_pct": 0.29,
                  "problem": "head"},
    "water-n2":  {"instructions_M": 1074, "l2_miss_pct": 0.02,
                  "problem": "1000 molecules"},
    "water-sp":  {"instructions_M": 870,  "l2_miss_pct": 0.02,
                  "problem": "1728 molecules"},
}


def _refs(instructions_m: float) -> int:
    """Per-processor reference count proportional to Table 4's length."""
    return int(60_000 + instructions_m * 45)


#: Calibrated specs (bench-preset machine: 4KB L1 / 32KB L2).
SPLASH2_SPECS: Dict[str, SyntheticSpec] = {
    "barnes": SyntheticSpec(
        name="barnes", refs_per_proc=_refs(1230), phases=6,
        hot_lines=192, stream_lines=0, stream_fraction=0.0,
        shared_lines=96, shared_fraction=0.02, sharing="uniform",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.01,
        write_fraction=0.25, shared_write_fraction=0.002, seed=101),
    "cholesky": SyntheticSpec(
        name="cholesky", refs_per_proc=_refs(1224), phases=6,
        hot_lines=128, stream_lines=4096, stream_mode="random",
        stream_fraction=0.0015,
        shared_lines=256, shared_fraction=0.05, sharing="producer",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.02,
        write_fraction=0.3, seed=102),
    "fft": SyntheticSpec(
        name="fft", refs_per_proc=_refs(468), phases=6,
        hot_lines=128, stream_lines=0, stream_fraction=0.0,
        shared_lines=4096, shared_fraction=0.026, sharing="transpose",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.02,
        write_fraction=0.45, seed=103),
    "fmm": SyntheticSpec(
        name="fmm", refs_per_proc=_refs(1002), phases=6,
        hot_lines=224, stream_lines=0, stream_fraction=0.0,
        shared_lines=512, shared_fraction=0.04, sharing="migratory",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.02,
        write_fraction=0.25, seed=104),
    "lu": SyntheticSpec(
        name="lu", refs_per_proc=_refs(336), phases=6,
        hot_lines=160, stream_lines=0, stream_fraction=0.0,
        shared_lines=64, shared_fraction=0.03, sharing="producer",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.01,
        write_fraction=0.35, seed=105),
    "ocean": SyntheticSpec(
        name="ocean", refs_per_proc=_refs(270), phases=6,
        hot_lines=128, stream_lines=2048, stream_mode="random",
        stream_fraction=0.008,
        shared_lines=12288, shared_fraction=0.018, sharing="neighbor",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.02,
        write_fraction=0.4, shared_write_fraction=0.35, seed=106),
    "radiosity": SyntheticSpec(
        name="radiosity", refs_per_proc=_refs(744), phases=6,
        hot_lines=160, stream_lines=2048, stream_mode="random",
        stream_fraction=0.0008,
        shared_lines=128, shared_fraction=0.03, sharing="uniform",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.02,
        write_fraction=0.2, shared_write_fraction=0.002, seed=107),
    "radix": SyntheticSpec(
        name="radix", refs_per_proc=_refs(186), phases=6,
        hot_lines=96, stream_lines=8192, stream_mode="random",
        stream_fraction=0.018,
        shared_lines=2048, shared_fraction=0.012, sharing="transpose",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.02,
        write_fraction=0.8, seed=108),
    "raytrace": SyntheticSpec(
        name="raytrace", refs_per_proc=_refs(612), phases=6,
        hot_lines=160, stream_lines=2048, stream_mode="random",
        stream_fraction=0.0015,
        shared_lines=128, shared_fraction=0.03, sharing="uniform",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.01,
        write_fraction=0.08, shared_write_fraction=0.002, seed=109),
    "volrend": SyntheticSpec(
        name="volrend", refs_per_proc=_refs(984), phases=6,
        hot_lines=160, stream_lines=2048, stream_mode="random",
        stream_fraction=0.002,
        shared_lines=128, shared_fraction=0.03, sharing="uniform",
        hot_shared_fraction=0.001, hot_shared_write_fraction=0.01,
        write_fraction=0.1, shared_write_fraction=0.002, seed=110),
    "water-n2": SyntheticSpec(
        name="water-n2", refs_per_proc=_refs(1074), phases=6,
        hot_lines=160, stream_lines=0, stream_fraction=0.0,
        shared_lines=64, shared_fraction=0.01, sharing="migratory",
        hot_shared_fraction=0.0005, hot_shared_write_fraction=0.01,
        write_fraction=0.3, burst_every=48, burst_ns=150, seed=111),
    "water-sp": SyntheticSpec(
        name="water-sp", refs_per_proc=_refs(870), phases=6,
        hot_lines=160, stream_lines=0, stream_fraction=0.0,
        shared_lines=64, shared_fraction=0.01, sharing="neighbor",
        hot_shared_fraction=0.0005, hot_shared_write_fraction=0.01,
        write_fraction=0.3, shared_write_fraction=0.05,
        burst_every=48, burst_ns=150, seed=112),
}
