"""Access-pattern building blocks (numpy address-sequence generators).

Each builder returns an ``int64`` array of *byte* addresses, always
line-aligned.  The synthetic workload generator composes these into
per-phase reference streams; the patterns are the vocabulary Splash-2
behaviours are described in: strided sweeps (dense linear algebra,
grids), random working-set re-use (tree codes, ray tracing), hot-line
accesses (locks, reduction variables), and region sweeps used for
all-to-all communication phases.
"""

from __future__ import annotations

import numpy as np

LINE = 64


def strided_sweep(base: int, n_lines: int, count: int,
                  start_line: int = 0, stride_lines: int = 1) -> np.ndarray:
    """``count`` addresses walking a region linearly, wrapping around."""
    if n_lines <= 0:
        raise ValueError("n_lines must be positive")
    idx = (start_line + stride_lines * np.arange(count, dtype=np.int64)) \
        % n_lines
    return base + idx * LINE


def random_lines(rng: np.random.Generator, base: int, n_lines: int,
                 count: int) -> np.ndarray:
    """Uniformly random lines within a region (capacity-miss driver)."""
    if n_lines <= 0:
        raise ValueError("n_lines must be positive")
    return base + rng.integers(0, n_lines, count, dtype=np.int64) * LINE


def zipf_lines(rng: np.random.Generator, base: int, n_lines: int,
               count: int, alpha: float = 1.2) -> np.ndarray:
    """Skewed re-use: low-numbered lines are touched far more often.

    Approximates pointer-chasing working sets (Barnes, FMM octrees)
    where a hot upper tree coexists with a cold fringe.
    """
    if n_lines <= 0:
        raise ValueError("n_lines must be positive")
    # Inverse-CDF sampling of a bounded zipf-like distribution.
    u = rng.random(count)
    idx = np.floor(n_lines ** (1.0 - u ** alpha)).astype(np.int64) % n_lines
    return base + idx * LINE


def hot_lines(rng: np.random.Generator, base: int, n_hot: int,
              count: int) -> np.ndarray:
    """Accesses to a handful of hot lines (locks, global counters)."""
    return random_lines(rng, base, max(1, n_hot), count)


def interleave(rng: np.random.Generator, parts: list,
               weights: list) -> np.ndarray:
    """Randomly interleave several address arrays with given weights.

    The result's length equals the sum of the parts' lengths; each
    part's internal order is preserved (streams stay streams).
    """
    if len(parts) != len(weights):
        raise ValueError("parts and weights must align")
    parts = [np.asarray(p, dtype=np.int64) for p in parts if len(p)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    total = sum(len(p) for p in parts)
    # Build a tag sequence: which part supplies the next address.
    tags = np.concatenate([np.full(len(p), i, dtype=np.int64)
                           for i, p in enumerate(parts)])
    rng.shuffle(tags)
    out = np.empty(total, dtype=np.int64)
    cursors = [0] * len(parts)
    for pos, tag in enumerate(tags.tolist()):
        part = parts[tag]
        out[pos] = part[cursors[tag]]
        cursors[tag] += 1
    return out


def write_mask(rng: np.random.Generator, count: int,
               write_fraction: float) -> np.ndarray:
    """Boolean write flags with the requested write fraction."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    return rng.random(count) < write_fraction


def constant_gaps(count: int, gap_ns: int) -> np.ndarray:
    """Fixed inter-reference gap (dense compute)."""
    return np.full(count, gap_ns, dtype=np.int64)


def bursty_gaps(rng: np.random.Generator, count: int, gap_ns: int,
                burst_every: int = 64, burst_ns: int = 200) -> np.ndarray:
    """Mostly-dense references with periodic long compute bursts.

    Models applications that alternate memory phases with computation
    (e.g. the force evaluations in the Water codes).
    """
    gaps = np.full(count, gap_ns, dtype=np.int64)
    if burst_every > 0:
        bursts = rng.integers(0, burst_every, count) == 0
        gaps[bursts] += burst_ns
    return gaps
