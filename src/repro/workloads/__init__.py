"""Workloads: access-pattern building blocks, the parameterized synthetic
generator, and the twelve Splash-2 application analogs of Table 4."""

from repro.workloads.base import Workload, WorkloadChunk
from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload
from repro.workloads.registry import (
    APP_NAMES,
    get_workload,
    paper_reference,
)

__all__ = [
    "Workload",
    "WorkloadChunk",
    "SyntheticSpec",
    "SyntheticWorkload",
    "APP_NAMES",
    "get_workload",
    "paper_reference",
]
