"""Parameterized synthetic workload generator.

A :class:`SyntheticSpec` describes a program as the composition of four
reference populations, issued over a number of barrier-delimited phases:

* a **hot** private working set (fits in cache — register/stack/local
  state re-use);
* a **streamed** private region, much larger than the L2, accessed
  randomly, stridedly, or zipf-skewed — the capacity-miss driver that
  positions an application's L2 miss rate;
* a **shared** region divided into per-processor shards, accessed
  according to one of five sharing styles (uniform, nearest-neighbour
  stencil, all-to-all transpose, migratory objects, producer-consumer);
* occasional **hot shared** lines (locks, reduction scalars).

ReVive's overheads are functions of the reference stream's statistics —
write-back rate, first-write rate, dirty-cache population, sharing —
so matching those statistics to a Splash-2 application's (Table 4)
reproduces its overhead profile without executing the original binary.
See DESIGN.md §3 for the substitution argument.

Generated chunks satisfy the columnar contract (repro.workloads.base):
each ``("ops", ...)`` chunk is materialized as fresh int64/bool numpy
arrays that the generator never touches again, so the columnar batch
engine may cache derived columns against chunk identity.  Generation
is pure in (spec, proc_id) — each stream seeds its own PRNG from those
alone — which is what makes ``replay_stream`` and tier-switching
snapshot restores exact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    SHARED_BASE,
    Workload,
    WorkloadChunk,
    private_base,
)

LINE = patterns.LINE
_CHUNK = 8192

SHARING_STYLES = ("uniform", "neighbor", "transpose", "migratory",
                  "producer")
STREAM_MODES = ("random", "stride", "zipf")


@dataclass(frozen=True)
class SyntheticSpec:
    """Full description of one synthetic workload."""

    name: str
    n_procs: int = 16
    refs_per_proc: int = 100_000
    phases: int = 4

    # private populations
    hot_lines: int = 64                # per-proc hot set (lines)
    stream_lines: int = 0              # per-proc big region (lines); 0 = off
    stream_mode: str = "random"
    stream_fraction: float = 0.0       # share of refs into the big region

    # shared populations
    shared_lines: int = 4096           # total shared region (lines)
    shared_fraction: float = 0.2
    sharing: str = "uniform"
    hot_shared_lines: int = 8
    hot_shared_fraction: float = 0.01
    hot_shared_write_fraction: float = 0.05

    # write mix and timing
    write_fraction: float = 0.3
    shared_write_fraction: float = 0.3
    gap_ns: int = 1
    burst_every: int = 0               # 0 = no compute bursts
    burst_ns: int = 200

    instructions_per_ref: float = 2.0
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.sharing not in SHARING_STYLES:
            raise ValueError(f"unknown sharing style {self.sharing!r}")
        if self.stream_mode not in STREAM_MODES:
            raise ValueError(f"unknown stream mode {self.stream_mode!r}")
        fractions = (self.stream_fraction, self.shared_fraction,
                     self.hot_shared_fraction)
        if any(not 0.0 <= f <= 1.0 for f in fractions) \
                or sum(fractions) > 1.0:
            raise ValueError("population fractions must sum to <= 1")
        if self.phases < 1 or self.refs_per_proc < self.phases:
            raise ValueError("need at least one reference per phase")
        if self.n_procs < 1:
            raise ValueError("n_procs must be positive")

    def scaled(self, factor: float) -> "SyntheticSpec":
        """Same behaviour, ``factor``-times the references (run length)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self,
                       refs_per_proc=max(self.phases,
                                         int(self.refs_per_proc * factor)))


class SyntheticWorkload(Workload):
    """Executable workload built from a :class:`SyntheticSpec`."""

    def __init__(self, spec: SyntheticSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.n_procs = spec.n_procs
        self.instructions_per_ref = spec.instructions_per_ref

    def total_refs_hint(self) -> int:
        """Approximate total references (for progress display)."""
        return self.spec.refs_per_proc * self.spec.n_procs

    # -- stream construction ----------------------------------------------

    def stream_for(self, proc_id: int) -> Iterator[WorkloadChunk]:
        """The chunk stream executed by processor ``proc_id``."""
        if not 0 <= proc_id < self.n_procs:
            raise ValueError(f"no processor {proc_id} in this workload")
        return self._generate(proc_id)

    def _generate(self, proc_id: int) -> Iterator[WorkloadChunk]:
        spec = self.spec
        rng = np.random.default_rng((spec.seed, proc_id))

        # First-touch phase: walk the private regions and the processor's
        # own shared shard once, with writes, so pages home locally.
        # The warmup marker after the barrier resets rate statistics so
        # measurements reflect steady state, not compulsory misses.
        yield from self._emit(rng, *self._first_touch(proc_id))
        yield ("barrier",)
        yield ("warmup_done",)

        per_phase = spec.refs_per_proc // spec.phases
        stream_cursor = 0
        for phase in range(spec.phases):
            addrs, writes = self._phase_population(rng, proc_id, phase,
                                                   per_phase, stream_cursor)
            stream_cursor += int(len(addrs) * spec.stream_fraction)
            yield from self._emit(rng, addrs, writes)
            yield ("barrier",)

    # -- populations ------------------------------------------------------------

    def _first_touch(self, proc_id: int) -> Tuple[np.ndarray, np.ndarray]:
        spec = self.spec
        pieces = [patterns.strided_sweep(private_base(proc_id),
                                         spec.hot_lines, spec.hot_lines)]
        if spec.stream_lines:
            pieces.append(patterns.strided_sweep(
                self._stream_base(proc_id), spec.stream_lines,
                spec.stream_lines))
        shard_lines, shard_base = self._shard(proc_id)
        if shard_lines:
            pieces.append(patterns.strided_sweep(shard_base, shard_lines,
                                                 shard_lines))
        addrs = np.concatenate(pieces)
        writes = np.ones(len(addrs), dtype=bool)
        if spec.sharing == "uniform" and spec.shared_lines:
            # Read-shared data (scene, mesh, task structures) is walked
            # once by everyone during initialisation, so steady-state
            # measurements see re-use rather than cold misses.
            warm = patterns.strided_sweep(
                SHARED_BASE + spec.hot_shared_lines * LINE,
                spec.shared_lines, spec.shared_lines)
            addrs = np.concatenate([addrs, warm])
            writes = np.concatenate([writes,
                                     np.zeros(len(warm), dtype=bool)])
        return addrs, writes

    def _phase_population(self, rng: np.random.Generator, proc_id: int,
                          phase: int, count: int,
                          stream_cursor: int) -> Tuple[np.ndarray, np.ndarray]:
        spec = self.spec
        n_stream = int(count * spec.stream_fraction)
        n_shared = int(count * spec.shared_fraction)
        n_hot_shared = int(count * spec.hot_shared_fraction)
        n_hot = max(0, count - n_stream - n_shared - n_hot_shared)

        addr_parts: List[np.ndarray] = []
        write_parts: List[np.ndarray] = []

        if n_hot:
            addr_parts.append(patterns.zipf_lines(
                rng, private_base(proc_id), spec.hot_lines, n_hot))
            write_parts.append(patterns.write_mask(rng, n_hot,
                                                   spec.write_fraction))
        if n_stream:
            addr_parts.append(self._stream_addresses(
                rng, proc_id, n_stream, stream_cursor))
            write_parts.append(patterns.write_mask(rng, n_stream,
                                                   spec.write_fraction))
        if n_shared:
            shared_addrs, shared_writes = self._shared_addresses(
                rng, proc_id, phase, n_shared)
            addr_parts.append(shared_addrs)
            write_parts.append(shared_writes)
        if n_hot_shared:
            addr_parts.append(patterns.hot_lines(
                rng, SHARED_BASE, spec.hot_shared_lines, n_hot_shared))
            write_parts.append(patterns.write_mask(
                rng, n_hot_shared, spec.hot_shared_write_fraction))

        addrs = np.concatenate(addr_parts)
        writes = np.concatenate(write_parts)
        order = rng.permutation(len(addrs))
        return addrs[order], writes[order]

    def _stream_base(self, proc_id: int) -> int:
        # The streamed region sits above the hot set in the private segment.
        return private_base(proc_id) + self.spec.hot_lines * LINE

    def _stream_addresses(self, rng: np.random.Generator, proc_id: int,
                          count: int, cursor: int) -> np.ndarray:
        spec = self.spec
        base = self._stream_base(proc_id)
        if spec.stream_mode == "stride":
            return patterns.strided_sweep(base, spec.stream_lines, count,
                                          start_line=cursor)
        if spec.stream_mode == "zipf":
            return patterns.zipf_lines(rng, base, spec.stream_lines, count)
        return patterns.random_lines(rng, base, spec.stream_lines, count)

    # -- sharing styles ------------------------------------------------------------

    def _shard(self, proc_id: int) -> Tuple[int, int]:
        """(lines, base address) of this processor's shared shard."""
        spec = self.spec
        shard_lines = spec.shared_lines // spec.n_procs
        # Shards start above the hot shared lines.
        base = SHARED_BASE + (spec.hot_shared_lines
                              + proc_id * shard_lines) * LINE
        return shard_lines, base

    def _shared_addresses(self, rng: np.random.Generator, proc_id: int,
                          phase: int,
                          count: int) -> Tuple[np.ndarray, np.ndarray]:
        spec = self.spec
        style = spec.sharing
        n = spec.n_procs
        shard_lines, _ = self._shard(proc_id)
        if shard_lines == 0 or style == "uniform":
            addrs = patterns.random_lines(
                rng, SHARED_BASE + spec.hot_shared_lines * LINE,
                max(1, spec.shared_lines), count)
            return addrs, patterns.write_mask(rng, count,
                                              spec.shared_write_fraction)

        if style == "neighbor":
            # Stencil: mostly own shard, plus the boundary lines of the
            # two neighbouring shards (Ocean's nearest-neighbour rows).
            n_own = int(count * 0.85)
            own = patterns.random_lines(rng, self._shard(proc_id)[1],
                                        shard_lines, n_own)
            borders = []
            for neighbor in ((proc_id - 1) % n, (proc_id + 1) % n):
                _lines, base = self._shard(neighbor)
                borders.append(patterns.random_lines(
                    rng, base, max(1, shard_lines // 8),
                    (count - n_own) // 2))
            addrs = np.concatenate([own] + borders)
            writes = np.concatenate([
                patterns.write_mask(rng, len(own),
                                    spec.shared_write_fraction),
                np.zeros(len(addrs) - len(own), dtype=bool),  # reads only
            ])
            return addrs, writes

        if style == "transpose":
            # All-to-all: read the shard phase-steps away, write your own
            # (FFT / Radix permutation phases).
            src = (proc_id + phase + 1) % n
            half = count // 2
            reads = patterns.strided_sweep(self._shard(src)[1], shard_lines,
                                           half)
            own_writes = patterns.strided_sweep(self._shard(proc_id)[1],
                                                shard_lines, count - half)
            addrs = np.concatenate([reads, own_writes])
            writes = np.concatenate([np.zeros(half, dtype=bool),
                                     np.ones(count - half, dtype=bool)])
            return addrs, writes

        if style == "migratory":
            # Objects move between processors phase to phase and are
            # read-modified-written by their current holder.
            holder_shard = (proc_id + phase) % n
            addrs = patterns.random_lines(rng, self._shard(holder_shard)[1],
                                          shard_lines, count)
            return addrs, patterns.write_mask(rng, count, 0.5)

        assert style == "producer"
        if phase % 2 == 0:
            addrs = patterns.strided_sweep(self._shard(proc_id)[1],
                                           shard_lines, count)
            return addrs, np.ones(count, dtype=bool)
        upstream = (proc_id - 1) % n
        addrs = patterns.strided_sweep(self._shard(upstream)[1], shard_lines,
                                       count)
        return addrs, np.zeros(count, dtype=bool)

    # -- chunk emission ---------------------------------------------------------------

    def _emit(self, rng: np.random.Generator, addrs: np.ndarray,
              writes: np.ndarray) -> Iterator[WorkloadChunk]:
        spec = self.spec
        for start in range(0, len(addrs), _CHUNK):
            stop = min(start + _CHUNK, len(addrs))
            n = stop - start
            if spec.burst_every:
                gaps = patterns.bursty_gaps(rng, n, spec.gap_ns,
                                            spec.burst_every, spec.burst_ns)
            else:
                gaps = patterns.constant_gaps(n, spec.gap_ns)
            yield ("ops", gaps, addrs[start:stop], writes[start:stop])
