"""Lookup of the built-in workloads by name."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.workloads.splash2 import PAPER_TABLE4, SPLASH2_SPECS
from repro.workloads.synthetic import SyntheticWorkload

APP_NAMES: List[str] = sorted(SPLASH2_SPECS)


def get_workload(name: str, scale: float = 1.0,
                 n_procs: int = 16) -> SyntheticWorkload:
    """Instantiate a Splash-2 analog.

    ``scale`` multiplies the run length (reference counts); ``n_procs``
    changes the thread count (the paper always uses 16).
    """
    spec = SPLASH2_SPECS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(APP_NAMES)}")
    if n_procs != spec.n_procs:
        spec = replace(spec, n_procs=n_procs)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return SyntheticWorkload(spec)


def paper_reference(name: str) -> Dict[str, float]:
    """Table 4 reference values for one application."""
    ref = PAPER_TABLE4.get(name)
    if ref is None:
        raise KeyError(f"no Table 4 reference for {name!r}")
    return dict(ref)
