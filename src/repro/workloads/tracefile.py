"""Reference-trace recording and replay.

Any workload's per-processor chunk streams can be serialised to a
compact ``.npz`` trace file and replayed later — useful for archiving
the exact streams behind a published measurement, for diffing two
generator versions, or for driving the simulator with traces produced
outside this package (each processor's events are three parallel arrays
plus a control channel for barriers and the warmup marker).

File format (numpy ``.npz``): for each processor ``p`` and chunk index
``i``, arrays ``p{p}_c{i}_gaps``, ``p{p}_c{i}_addrs``,
``p{p}_c{i}_writes``; control chunks are zero-length arrays whose
``kind`` entry in the JSON header distinguishes barriers and markers.
A ``header`` array holds the JSON metadata (name, n_procs, chunk
kinds).

Replayed chunks satisfy the columnar contract (repro.workloads.base):
the arrays handed out by :class:`TraceWorkload` are the loaded ``.npz``
columns themselves, never copied or mutated, with dtypes normalized at
record time (int64 gaps/addresses, bool writes).  A recorded trace is
therefore a valid input to every execution tier, and a record -> replay
round-trip is bit-identical to the live run under the reference loop,
the scalar fast path, and the columnar batch engine alike
(tests/test_columnar.py::TestTracefileRoundtrip).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List

import numpy as np

from repro.workloads.base import Workload, WorkloadChunk


def record_trace(workload: Workload, path: str) -> Dict[str, int]:
    """Serialise every processor's stream of ``workload`` to ``path``.

    Returns summary statistics (processors, total references).
    """
    arrays: Dict[str, np.ndarray] = {}
    kinds: List[List[str]] = []
    total_refs = 0
    for proc in range(workload.n_procs):
        chunk_kinds: List[str] = []
        for index, chunk in enumerate(workload.stream_for(proc)):
            tag = chunk[0]
            chunk_kinds.append(tag)
            if tag == "ops":
                _tag, gaps, addrs, writes = chunk
                prefix = f"p{proc}_c{index}"
                arrays[f"{prefix}_gaps"] = np.asarray(gaps, dtype=np.int64)
                arrays[f"{prefix}_addrs"] = np.asarray(addrs,
                                                       dtype=np.int64)
                arrays[f"{prefix}_writes"] = np.asarray(writes, dtype=bool)
                total_refs += len(arrays[f"{prefix}_addrs"])
        kinds.append(chunk_kinds)
    header = {
        "name": workload.name,
        "n_procs": workload.n_procs,
        "instructions_per_ref": workload.instructions_per_ref,
        "kinds": kinds,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8).copy()
    np.savez_compressed(path, **arrays)
    return {"n_procs": workload.n_procs, "total_refs": total_refs}


class TraceWorkload(Workload):
    """A workload replayed from a trace file written by `record_trace`."""

    def __init__(self, path: str) -> None:
        self._data = np.load(path)
        header = json.loads(bytes(self._data["header"]).decode("utf-8"))
        self.name = header["name"]
        self.n_procs = int(header["n_procs"])
        self.instructions_per_ref = float(header["instructions_per_ref"])
        self._kinds: List[List[str]] = header["kinds"]

    def stream_for(self, proc_id: int) -> Iterator[WorkloadChunk]:
        """The chunk stream executed by processor ``proc_id``."""
        if not 0 <= proc_id < self.n_procs:
            raise ValueError(f"no processor {proc_id} in this trace")
        return self._replay(proc_id)

    def _replay(self, proc_id: int) -> Iterator[WorkloadChunk]:
        for index, kind in enumerate(self._kinds[proc_id]):
            if kind == "ops":
                prefix = f"p{proc_id}_c{index}"
                yield ("ops",
                       self._data[f"{prefix}_gaps"],
                       self._data[f"{prefix}_addrs"],
                       self._data[f"{prefix}_writes"])
            else:
                yield (kind,)

    def total_refs_hint(self) -> int:
        """Approximate total references (for progress display)."""
        return sum(int(self._data[k].shape[0])
                   for k in self._data.files if k.endswith("_addrs"))
