"""Workload interface.

A workload describes what ``n_procs`` processors do: each processor
consumes a *stream* of chunks, where a chunk is either

* ``("ops", gaps, vaddrs, writes)`` — three equal-length arrays: the
  inter-reference gap in nanoseconds (already divided by the core's
  sustained IPC), the virtual byte address of each reference, and a
  write flag; or
* ``("barrier",)`` — a global synchronization point.  Streams must
  agree on barrier placement: the k-th barrier of every processor is
  the same barrier.

Virtual addresses live in a single shared space; the machine binds
pages to physical memory on first touch.

Columnar contract: the columnar batch engine (``repro.cpu.columnar``)
consumes the ``gaps``/``vaddrs``/``writes`` arrays of an ``("ops", ...)``
chunk wholesale — translating, probing, and classifying whole columns
at once.  Two obligations follow for stream implementations:

* the three arrays must be plain 1-D numpy arrays of equal length
  (integer-valued; the engine casts addresses with ``astype(np.int64)``
  and treats ``writes`` as a boolean mask), and
* a chunk's arrays must never be mutated after it is yielded — the
  engine caches per-chunk derived columns (line addresses, purity
  windows) keyed by the chunk's identity, so in-place edits would
  silently desynchronize the tiers.

Streams that satisfy ``replay_stream``'s purity rule (below) get
tier-independent snapshot/restore for free: the chunk counter is the
only cursor, so an image captured under one execution tier resumes
bit-identically under any other (tests/test_columnar.py).
"""

from __future__ import annotations

import abc
from typing import Iterator, Tuple, Union

import numpy as np

WorkloadChunk = Union[
    Tuple[str],                                        # ("barrier",)
    Tuple[str, np.ndarray, np.ndarray, np.ndarray],    # ("ops", ...)
]

#: Address-space carve-up shared by all built-in workloads: each
#: processor's private segment, then one global shared segment.
PRIVATE_SEGMENT_BITS = 30
SHARED_BASE = 1 << 40


def private_base(proc_id: int) -> int:
    """Base virtual address of a processor's private segment."""
    return (proc_id + 1) << PRIVATE_SEGMENT_BITS


class Workload(abc.ABC):
    """Base class for machine workloads."""

    #: Human-readable workload name (Table 4 row, for the analogs).
    name: str = "workload"
    #: Number of processor threads.
    n_procs: int = 16
    #: Modelled instructions per memory reference (Table 4 instruction
    #: counts are derived as refs * instructions_per_ref).
    instructions_per_ref: float = 2.0

    @abc.abstractmethod
    def stream_for(self, proc_id: int) -> Iterator[WorkloadChunk]:
        """The chunk stream executed by processor ``proc_id``."""

    def replay_stream(self, proc_id: int,
                      chunks: int) -> Tuple[Iterator[WorkloadChunk],
                                            "WorkloadChunk | None"]:
        """Rebuild ``proc_id``'s stream fast-forwarded past ``chunks``.

        Streams are pure functions of (workload spec, ``proc_id``) —
        every generator seeds its own PRNG from those alone — so a
        snapshot needs to record only how many chunks a processor has
        consumed, and restore replays that many here
        (docs/SNAPSHOTS.md).  Returns the repositioned stream and the
        last chunk replayed (``None`` when ``chunks`` is zero), which
        the processor uses to reinstate its in-flight reference arrays.
        """
        stream = self.stream_for(proc_id)
        last = None
        for _ in range(chunks):
            last = next(stream)
        return stream, last

    def total_refs_hint(self) -> int:
        """Approximate total references across all processors (optional)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, n_procs={self.n_procs})"
