"""Async simulation service + content-addressed result cache.

``repro serve`` runs a :class:`SimulationService` behind a JSONL TCP
server; ``repro submit`` (or :func:`submit` from Python) streams a
request through it.  Repeat configurations are served from the
:class:`~repro.harness.store.ResultStore` in O(1) — byte-identical to
a fresh run, with the ledger manifest as the oracle.  Architecture,
protocol, and guarantees: ``docs/SERVING.md``.

Quick start::

    # terminal 1
    python -m repro serve --cache-dir .repro-cache

    # terminal 2 (or any Python process)
    from repro.serve import submit
    for event in submit({"op": "run", "app": "lu", "nodes": 4,
                         "scale": 0.1}):
        print(event["name"])
"""

from repro.serve.client import fetch_metrics, submit
from repro.serve.service import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    OPS,
    ServiceError,
    SimulationService,
    bound_port,
    request_key,
    start_server,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "OPS",
    "ServiceError",
    "SimulationService",
    "bound_port",
    "fetch_metrics",
    "request_key",
    "start_server",
    "submit",
]
