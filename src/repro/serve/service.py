"""The async simulation service behind ``repro serve``.

A :class:`SimulationService` accepts run/latency/sweep/report/campaign
requests,
dedupes them against a content-addressed
:class:`~repro.harness.store.ResultStore` keyed by the ledger config
digest, schedules cache misses across a multiprocessing worker pool
(reusing the deterministic executor from
:mod:`repro.harness.parallel`), and streams progress back as ``svc.*``
events — cache hit/miss per cell, monitor verdicts, span-latency
classes, the result itself, and (for ``report`` requests) Figure-8
style overhead rows.  The architecture, request lifecycle, and
consistency guarantees are documented in ``docs/SERVING.md``.

Two properties make the cache *correct*, not merely fast:

* every simulation is deterministic given its arguments, and
* the ledger manifest is wall-clock-free,

so a cache hit's manifest is byte-identical to the one a fresh run
would write (``tests/test_serve.py`` pins this).  Requests racing on
the same cell coalesce onto one in-flight computation.

Transport: :func:`start_server` wraps the service in an asyncio TCP
server speaking newline-delimited JSON — one request line in, one
event per line out, connection closed after ``svc.done`` /
``svc.error``.  :func:`repro.serve.client.submit` is the matching
client.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.harness import parallel
from repro.harness.runner import (
    DEFAULT_INTERVAL_NS,
    VARIANTS,
    tiny_revive_overrides,
)
from repro.harness.store import (
    KIND_RUN,
    TRACE_ARTIFACT,
    ResultStore,
    job_digest,
    result_from_payload,
    run_payload,
    store_key,
)
from repro.obs.monitor import CacheHealthMonitor, MonitorSuite
from repro.obs.tracer import SCHEMA_VERSION, Tracer
from repro.workloads.registry import APP_NAMES

#: Default TCP port of ``repro serve`` (chosen arbitrarily, unassigned).
DEFAULT_PORT = 7316

#: Default bind address: loopback only — the service performs no
#: authentication and is meant to sit behind one machine's trust
#: boundary (docs/SERVING.md).
DEFAULT_HOST = "127.0.0.1"

#: The request operations the service accepts.
OPS = ("run", "latency", "sweep", "report", "campaign")

#: Variants a ``campaign`` request may name: the campaign warms to a
#: committed checkpoint, so checkpoint-free configurations are out.
CAMPAIGN_VARIANTS = ("cp_parity", "cp_mirroring")

#: Node counts accepted for ``MachineConfig.tiny`` machines (mirrors
#: the CLI's ``--nodes`` choices).
TINY_NODES = (2, 4, 8, 16)


class ServiceError(ValueError):
    """A request the service rejects (streamed back as ``svc.error``)."""


def _normalise(request) -> Dict:
    """Validate a raw request dict into its canonical form.

    Returns ``{op, apps, variants, nodes, scale, interval_us,
    no_cache}`` with every field defaulted and validated, or raises
    :class:`ServiceError`.  ``run``/``latency`` requests name one
    ``app`` (and optional ``variant``); ``sweep``/``report`` requests
    name ``apps`` (and optional ``variants``).
    """
    if not isinstance(request, dict):
        raise ServiceError("request must be a JSON object")
    op = request.get("op", "run")
    if op not in OPS:
        raise ServiceError(f"unknown op {op!r}; choose from "
                           f"{', '.join(OPS)}")
    if op in ("run", "latency", "campaign"):
        app = request.get("app")
        apps = [app] if app is not None else list(request.get("apps") or [])
        if len(apps) != 1:
            raise ServiceError(f"op {op!r} takes exactly one app")
        variant = request.get("variant")
        variants = ([variant] if variant is not None
                    else list(request.get("variants") or ["cp_parity"]))
        if len(variants) != 1:
            raise ServiceError(f"op {op!r} takes exactly one variant")
        if op == "campaign" and variants[0] not in CAMPAIGN_VARIANTS:
            raise ServiceError(
                f"op 'campaign' needs a checkpointing variant "
                f"({', '.join(CAMPAIGN_VARIANTS)})")
    else:
        apps = list(request.get("apps") or [])
        if not apps:
            raise ServiceError(f"op {op!r} needs a non-empty 'apps' list")
        variants = list(request.get("variants")
                        or ["baseline", "cp_parity"])
    unknown = sorted(set(apps) - set(APP_NAMES))
    if unknown:
        raise ServiceError(f"unknown apps: {', '.join(unknown)}")
    unknown = sorted(set(variants) - set(VARIANTS))
    if unknown:
        raise ServiceError(f"unknown variants: {', '.join(unknown)}")
    if op == "report" and "baseline" not in variants:
        raise ServiceError("op 'report' needs the 'baseline' variant "
                           "to compute overheads against")
    nodes = request.get("nodes")
    if nodes is not None and nodes not in TINY_NODES:
        raise ServiceError(f"nodes must be one of {TINY_NODES} (or null "
                           f"for the 16-node bench machine)")
    scale = request.get("scale", 0.1)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ServiceError("scale must be a positive number")
    interval_us = request.get("interval_us", DEFAULT_INTERVAL_NS / 1000)
    if not isinstance(interval_us, (int, float)) or interval_us <= 0:
        raise ServiceError("interval_us must be a positive number")
    req = {"op": op, "apps": apps, "variants": variants, "nodes": nodes,
           "scale": float(scale), "interval_us": float(interval_us),
           "no_cache": bool(request.get("no_cache", False))}
    if op == "campaign":
        warm = request.get("warm_checkpoints", 2)
        if not isinstance(warm, int) or warm < 1:
            raise ServiceError("warm_checkpoints must be a positive "
                               "integer")
        lost_nodes = request.get("lost_nodes", [None, 1])
        if (not isinstance(lost_nodes, list) or not lost_nodes
                or not all(n is None or isinstance(n, int)
                           for n in lost_nodes)):
            raise ServiceError("lost_nodes must be a non-empty list of "
                               "node ids (null = transient fault)")
        fractions = request.get("detect_fractions", [0.2, 0.5, 0.8])
        if (not isinstance(fractions, list) or not fractions
                or not all(isinstance(f, (int, float)) and 0 < f < 1
                           for f in fractions)):
            raise ServiceError("detect_fractions must be a non-empty "
                               "list of fractions in (0, 1)")
        req.update(warm_checkpoints=warm, lost_nodes=lost_nodes,
                   detect_fractions=[float(f) for f in fractions])
    return req


def request_key(req: Dict) -> str:
    """sha256 over the canonical normalised request (stream identity)."""
    blob = json.dumps(req, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _service_execute(payload: Tuple[str, str, Dict, str]):
    """Worker body: one traced cell through the sweep executor.

    Module-level so it pickles into the process pool.  Reuses
    :func:`repro.harness.parallel._execute` — the same code path as a
    traced ``repro sweep`` — so the manifest (and therefore the config
    digest and every stored byte) is identical to what a sweep of the
    same cell produces.  The trace spools through a scratch file and
    rides back as bytes.
    """
    app, variant, kwargs, spool_dir = payload
    os.makedirs(spool_dir, exist_ok=True)
    base = os.path.join(spool_dir, f"{app}__{variant}")
    kwargs = dict(kwargs)
    kwargs["_trace"] = {"path": base + ".jsonl",
                        "ledger_path": base + ".ledger.json",
                        "categories": None}
    _index, result, manifest = parallel._execute((0, (app, variant, kwargs)))
    with open(base + ".jsonl", "rb") as handle:
        trace = handle.read()
    return result, manifest, trace


def _service_campaign(payload: Tuple[Dict, Optional[str]]):
    """Worker body: one fault campaign; module-level so it pickles.

    Runs the campaign serially inside this worker (no nested pools)
    with the service's result store as the warm-image cache, recording
    the campaign's ``snap.*`` events in a ring buffer so the service
    can re-stream them to the client.
    """
    from repro.harness.campaign import run_campaign
    from repro.machine.config import MachineConfig
    from repro.obs.tracer import RingBufferSink

    req, cache_dir = payload
    sink = RingBufferSink()
    tracer = Tracer(sink)
    nodes = req["nodes"]
    machine_config = MachineConfig.tiny(nodes) if nodes else None
    campaign = run_campaign(
        req["apps"][0], req["variants"][0],
        warm_checkpoints=req["warm_checkpoints"],
        lost_nodes=tuple(req["lost_nodes"]),
        detect_fractions=tuple(req["detect_fractions"]),
        scale=req["scale"], n_procs=nodes or 16,
        interval_ns=int(req["interval_us"] * 1000),
        machine_config=machine_config, cache_dir=cache_dir,
        serial=True, tracer=tracer, **tiny_revive_overrides(nodes))
    return campaign.to_jsonable(), sink.events()


class SimulationService:
    """Request → event-stream core of the simulation service.

    ``cache_dir=None`` disables the result store entirely (every
    request simulates); otherwise results are served from / stored
    into a :class:`ResultStore` there, bounded by ``max_cache_bytes``.
    ``workers`` sizes the process pool for cache misses (default: CPU
    count capped at 4); environments without multiprocessing fall back
    to a thread.  ``self.health`` is a :class:`MonitorSuite` holding a
    :class:`CacheHealthMonitor` fed by the store's ``svc.cache_*``
    events — ``service.health.verdicts()`` is the live cache health.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 max_cache_bytes: Optional[int] = None) -> None:
        self.workers = workers or max(1, min(os.cpu_count() or 1, 4))
        self.health = MonitorSuite([CacheHealthMonitor()])
        self.store: Optional[ResultStore] = None
        if cache_dir is not None:
            self.store = ResultStore(cache_dir, max_bytes=max_cache_bytes,
                                     tracer=Tracer(self.health))
        self._inflight: Dict[str, asyncio.Task] = {}
        self._executor = None
        self._executor_broken = False

    # -- request handling ----------------------------------------------

    def _jobs_for(self, req: Dict) -> List[Tuple[str, str, Dict]]:
        """The request's cells, through the canonical sweep job list.

        Going through :func:`~repro.harness.parallel.sweep_jobs` (with
        the same tiny-machine overrides the CLI applies for
        ``--nodes``) guarantees the run kwargs — and therefore the
        config digests and cache keys — match CLI sweeps exactly.
        """
        from repro.machine.config import MachineConfig

        nodes = req["nodes"]
        machine_config = MachineConfig.tiny(nodes) if nodes else None
        return parallel.sweep_jobs(
            req["apps"], req["variants"], scale=req["scale"],
            n_procs=nodes or 16,
            interval_ns=int(req["interval_us"] * 1000),
            machine_config=machine_config,
            **tiny_revive_overrides(nodes))

    async def events(self, request) -> AsyncIterator[Dict]:
        """Handle one request, yielding enveloped ``svc.*`` events.

        The stream is ``svc.accepted``, then per cell (in canonical
        job order): ``svc.cache_hit`` *or* ``svc.cache_miss`` +
        ``svc.scheduled``/``svc.coalesced``, then ``svc.verdicts``,
        ``svc.latency``, ``svc.result``; then ``svc.report`` for
        ``report`` requests; then ``svc.done``.  Any rejection or
        internal failure ends the stream with ``svc.error`` instead.
        Events carry the standard trace envelope at ``ts`` 0 and pass
        ``repro trace-lint``.
        """
        seq = 0

        def env(name: str, cat: str = "svc", **fields) -> Dict:
            nonlocal seq
            event = {"v": SCHEMA_VERSION, "seq": seq, "ts": 0,
                     "cat": cat, "name": name}
            event.update(fields)
            seq += 1
            return event

        try:
            req = _normalise(request)
            key = request_key(req)
            yield env("svc.accepted", op=req["op"], key=key)

            if req["op"] == "campaign":
                use_cache = self.store is not None and not req["no_cache"]
                campaign, snap_events = await self._run_campaign(
                    req, self.store.root if use_cache else None)
                # Re-stream the campaign's own snap.* events under this
                # stream's envelope so the whole stream lints clean.
                for snap in snap_events:
                    fields = {k: v for k, v in snap.items()
                              if k not in ("v", "seq", "ts", "cat", "name")}
                    yield env(snap["name"], cat="snap", **fields)
                yield env("svc.campaign", key=key,
                          outcomes=campaign["outcomes"])
                yield env("svc.done", key=key,
                          jobs=len(campaign["outcomes"]),
                          cached=sum(1 for image in campaign["images"]
                                     if image["cached"]))
                return

            jobs = self._jobs_for(req)
            use_cache = self.store is not None and not req["no_cache"]
            cells = []
            for app, variant, kwargs in jobs:
                jkey = store_key(job_digest(app, variant, kwargs))
                entry = self.store.get(jkey) if use_cache else None
                if entry is not None and (
                        entry.payload.get("manifest") is None
                        or not entry.has_artifact(TRACE_ARTIFACT)):
                    # Result-only entry (untraced sweep): the service
                    # needs verdicts + trace; re-run upgrades it.
                    entry = None
                task = None
                coalesced = False
                if entry is None:
                    task = self._inflight.get(jkey) if use_cache else None
                    coalesced = task is not None
                    if task is None:
                        task = asyncio.ensure_future(self._run_and_store(
                            jkey, app, variant, kwargs,
                            register=use_cache, store=use_cache))
                        if use_cache:
                            self._inflight[jkey] = task
                cells.append((app, variant, jkey, entry, task, coalesced))

            results: Dict[Tuple[str, str], Tuple] = {}
            hits = 0
            for app, variant, jkey, entry, task, coalesced in cells:
                if entry is not None:
                    hits += 1
                    yield env("svc.cache_hit", key=jkey)
                    result = result_from_payload(entry.payload)
                    manifest = entry.payload["manifest"]
                    cached = True
                else:
                    yield env("svc.cache_miss", key=jkey)
                    yield env("svc.coalesced" if coalesced
                              else "svc.scheduled", key=jkey)
                    result, manifest = await task
                    cached = False
                results[(app, variant)] = (result, manifest)
                yield env("svc.verdicts", key=jkey, app=app,
                          variant=variant, verdicts=manifest["verdicts"])
                latency = manifest["verdicts"].get("span_latency", {})
                yield env("svc.latency", key=jkey, app=app, variant=variant,
                          classes=latency.get("classes", {}))
                yield env("svc.result", key=jkey, app=app, variant=variant,
                          cached=cached,
                          result=dataclasses.asdict(result))

            if req["op"] == "report":
                rows = []
                for app in req["apps"]:
                    base, _ = results[(app, "baseline")]
                    row = {"app": app,
                           "baseline_ns": base.execution_time_ns}
                    for variant in req["variants"]:
                        if variant != "baseline":
                            row[variant] = \
                                results[(app, variant)][0].overhead_vs(base)
                    rows.append(row)
                yield env("svc.report", key=key, rows=rows)

            yield env("svc.done", key=key, jobs=len(jobs), cached=hits)
        except ServiceError as exc:
            yield env("svc.error", error=str(exc))
        except Exception as exc:  # noqa: BLE001 — stream, don't crash
            yield env("svc.error", error=f"internal: {exc!r}")

    # -- execution -----------------------------------------------------

    def _ensure_executor(self):
        """The process pool, or None to use the loop's thread executor."""
        if self._executor_broken:
            return None
        if self._executor is None:
            try:
                import multiprocessing as mp
                from concurrent.futures import ProcessPoolExecutor

                # Workers are spawned lazily at first submit — which
                # happens mid-connection.  A fork at that point would
                # inherit the accepted socket into the (long-lived)
                # worker, keeping client connections open after the
                # server closes them; spawn (fork+exec) drops every
                # non-inheritable fd, so workers never pin a stream.
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=mp.get_context("spawn"))
            except (OSError, ImportError, PermissionError, ValueError):
                self._executor_broken = True
                return None
        return self._executor

    async def _run_campaign(self, req: Dict,
                            cache_dir: Optional[str]) -> Tuple:
        """Run one fault campaign in the pool (thread fallback)."""
        from concurrent.futures.process import BrokenProcessPool

        loop = asyncio.get_running_loop()
        payload = (req, cache_dir)
        executor = self._ensure_executor()
        try:
            return await loop.run_in_executor(
                executor, _service_campaign, payload)
        except (OSError, PermissionError, BrokenProcessPool):
            if executor is None:
                raise
            self._executor_broken = True
            self._executor = None
            return await loop.run_in_executor(
                None, _service_campaign, payload)

    async def _run_and_store(self, key: str, app: str, variant: str,
                             kwargs: Dict, register: bool,
                             store: bool) -> Tuple:
        """Simulate one cell in the pool; store the entry on the way out."""
        try:
            loop = asyncio.get_running_loop()
            spool = tempfile.mkdtemp(prefix="repro-serve-")
            payload = (app, variant, kwargs, spool)
            try:
                from concurrent.futures.process import BrokenProcessPool

                executor = self._ensure_executor()
                try:
                    result, manifest, trace = await loop.run_in_executor(
                        executor, _service_execute, payload)
                except (OSError, PermissionError, BrokenProcessPool):
                    if executor is None:
                        raise
                    # The pool died (fork restrictions, OOM-killed
                    # worker, ...): degrade to the thread executor.
                    self._executor_broken = True
                    self._executor = None
                    result, manifest, trace = await loop.run_in_executor(
                        None, _service_execute, payload)
            finally:
                shutil.rmtree(spool, ignore_errors=True)
            if store and self.store is not None:
                self.store.put(key, KIND_RUN, run_payload(result, manifest),
                               artifacts={TRACE_ARTIFACT: trace})
            return result, manifest
        finally:
            if register:
                self._inflight.pop(key, None)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None


# -- transport ----------------------------------------------------------

def _event_line(event: Dict) -> bytes:
    return (json.dumps(event, separators=(",", ":")) + "\n").encode("utf-8")


async def _handle(service: SimulationService,
                  reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    """One connection: one JSON request line in, event lines out."""
    try:
        line = await reader.readline()
        if not line.strip():
            return
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            writer.write(_event_line(
                {"v": SCHEMA_VERSION, "seq": 0, "ts": 0, "cat": "svc",
                 "name": "svc.error",
                 "error": f"malformed JSON request: {exc}"}))
            await writer.drain()
            return
        async for event in service.events(request):
            writer.write(_event_line(event))
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-stream; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def start_server(service: SimulationService,
                       host: str = DEFAULT_HOST,
                       port: int = DEFAULT_PORT) -> asyncio.AbstractServer:
    """Bind the JSONL TCP server (``port=0`` picks a free port)."""

    async def handler(reader, writer):
        await _handle(service, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


def bound_port(server: asyncio.AbstractServer) -> int:
    """The port a started server actually bound (resolves ``port=0``)."""
    return server.sockets[0].getsockname()[1]
