"""The async simulation service behind ``repro serve``.

A :class:`SimulationService` accepts run/latency/sweep/report/campaign
requests,
dedupes them against a content-addressed
:class:`~repro.harness.store.ResultStore` keyed by the ledger config
digest, schedules cache misses across a multiprocessing worker pool
(reusing the deterministic executor from
:mod:`repro.harness.parallel`), and streams progress back as ``svc.*``
events — cache hit/miss per cell, monitor verdicts, span-latency
classes, the result itself, and (for ``report`` requests) Figure-8
style overhead rows.  The architecture, request lifecycle, and
consistency guarantees are documented in ``docs/SERVING.md``.

Two properties make the cache *correct*, not merely fast:

* every simulation is deterministic given its arguments, and
* the ledger manifest is wall-clock-free,

so a cache hit's manifest is byte-identical to the one a fresh run
would write (``tests/test_serve.py`` pins this).  Requests racing on
the same cell coalesce onto one in-flight computation.

Transport: :func:`start_server` wraps the service in an asyncio TCP
server speaking newline-delimited JSON — one request line in, one
event per line out, connection closed after ``svc.done`` /
``svc.error``.  :func:`repro.serve.client.submit` is the matching
client.

Telemetry (docs/SERVING.md "Live telemetry"): every service keeps a
:class:`~repro.obs.metrics.MetricsRegistry` of request counters,
worker-pool gauges, and per-phase latency histograms; a heartbeat
task samples the pool/queue gauges while the server runs; the
``stats`` op streams recent heartbeats plus the full metrics
snapshot; ``svc.timing`` attributes each request's host time to
cache lookup, queue wait, and worker execution; and the same TCP
port answers ``GET /metrics`` with the Prometheus text exposition,
so a deployed ``repro serve`` is scrapeable as-is.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
from collections import deque
from time import perf_counter
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.harness import parallel
from repro.harness.runner import (
    DEFAULT_INTERVAL_NS,
    VARIANTS,
    tiny_revive_overrides,
)
from repro.harness.store import (
    KIND_RUN,
    TRACE_ARTIFACT,
    ResultStore,
    job_digest,
    result_from_payload,
    run_payload,
    store_key,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import CacheHealthMonitor, MonitorSuite
from repro.obs.telemetry import prometheus_text
from repro.obs.tracer import SCHEMA_VERSION, Tracer
from repro.workloads.registry import APP_NAMES

#: Default TCP port of ``repro serve`` (chosen arbitrarily, unassigned).
DEFAULT_PORT = 7316

#: Default bind address: loopback only — the service performs no
#: authentication and is meant to sit behind one machine's trust
#: boundary (docs/SERVING.md).
DEFAULT_HOST = "127.0.0.1"

#: The request operations the service accepts.
OPS = ("run", "latency", "sweep", "report", "campaign", "stats")

#: Seconds between heartbeat samples while the TCP server runs.
HEARTBEAT_PERIOD_S = 2.0

#: Heartbeats retained for ``stats`` requests to re-stream.
_RECENT_HEARTBEATS = 64

#: Variants a ``campaign`` request may name: the campaign warms to a
#: committed checkpoint, so checkpoint-free configurations are out.
CAMPAIGN_VARIANTS = ("cp_parity", "cp_mirroring")

#: Node counts accepted for ``MachineConfig.tiny`` machines (mirrors
#: the CLI's ``--nodes`` choices).
TINY_NODES = (2, 4, 8, 16)


class ServiceError(ValueError):
    """A request the service rejects (streamed back as ``svc.error``)."""


def _normalise(request) -> Dict:
    """Validate a raw request dict into its canonical form.

    Returns ``{op, apps, variants, nodes, scale, interval_us,
    no_cache, digest}`` with every field defaulted and validated, or
    raises :class:`ServiceError`.  ``run``/``latency`` requests name
    one ``app`` (and optional ``variant``); ``sweep``/``report``
    requests name ``apps`` (and optional ``variants``).
    ``digest: true`` records the determinism-observatory chain in
    every simulated cell (campaigns included); chains ride back inside
    each ``svc.result`` and the service accumulates per-cell chain
    tips for the ``stats`` op's digest surface.
    """
    if not isinstance(request, dict):
        raise ServiceError("request must be a JSON object")
    op = request.get("op", "run")
    if op not in OPS:
        raise ServiceError(f"unknown op {op!r}; choose from "
                           f"{', '.join(OPS)}")
    if op == "stats":
        # Pure telemetry read: no apps, machines, or cache involved.
        return {"op": "stats"}
    if op in ("run", "latency", "campaign"):
        app = request.get("app")
        apps = [app] if app is not None else list(request.get("apps") or [])
        if len(apps) != 1:
            raise ServiceError(f"op {op!r} takes exactly one app")
        variant = request.get("variant")
        variants = ([variant] if variant is not None
                    else list(request.get("variants") or ["cp_parity"]))
        if len(variants) != 1:
            raise ServiceError(f"op {op!r} takes exactly one variant")
        if op == "campaign" and variants[0] not in CAMPAIGN_VARIANTS:
            raise ServiceError(
                f"op 'campaign' needs a checkpointing variant "
                f"({', '.join(CAMPAIGN_VARIANTS)})")
    else:
        apps = list(request.get("apps") or [])
        if not apps:
            raise ServiceError(f"op {op!r} needs a non-empty 'apps' list")
        variants = list(request.get("variants")
                        or ["baseline", "cp_parity"])
    unknown = sorted(set(apps) - set(APP_NAMES))
    if unknown:
        raise ServiceError(f"unknown apps: {', '.join(unknown)}")
    unknown = sorted(set(variants) - set(VARIANTS))
    if unknown:
        raise ServiceError(f"unknown variants: {', '.join(unknown)}")
    if op == "report" and "baseline" not in variants:
        raise ServiceError("op 'report' needs the 'baseline' variant "
                           "to compute overheads against")
    nodes = request.get("nodes")
    if nodes is not None and nodes not in TINY_NODES:
        raise ServiceError(f"nodes must be one of {TINY_NODES} (or null "
                           f"for the 16-node bench machine)")
    scale = request.get("scale", 0.1)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ServiceError("scale must be a positive number")
    interval_us = request.get("interval_us", DEFAULT_INTERVAL_NS / 1000)
    if not isinstance(interval_us, (int, float)) or interval_us <= 0:
        raise ServiceError("interval_us must be a positive number")
    req = {"op": op, "apps": apps, "variants": variants, "nodes": nodes,
           "scale": float(scale), "interval_us": float(interval_us),
           "no_cache": bool(request.get("no_cache", False)),
           "digest": bool(request.get("digest", False))}
    if op == "campaign":
        warm = request.get("warm_checkpoints", 2)
        if not isinstance(warm, int) or warm < 1:
            raise ServiceError("warm_checkpoints must be a positive "
                               "integer")
        lost_nodes = request.get("lost_nodes", [None, 1])
        if (not isinstance(lost_nodes, list) or not lost_nodes
                or not all(n is None or isinstance(n, int)
                           for n in lost_nodes)):
            raise ServiceError("lost_nodes must be a non-empty list of "
                               "node ids (null = transient fault)")
        fractions = request.get("detect_fractions", [0.2, 0.5, 0.8])
        if (not isinstance(fractions, list) or not fractions
                or not all(isinstance(f, (int, float)) and 0 < f < 1
                           for f in fractions)):
            raise ServiceError("detect_fractions must be a non-empty "
                               "list of fractions in (0, 1)")
        req.update(warm_checkpoints=warm, lost_nodes=lost_nodes,
                   detect_fractions=[float(f) for f in fractions])
    return req


def request_key(req: Dict) -> str:
    """sha256 over the canonical normalised request (stream identity)."""
    blob = json.dumps(req, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _service_execute(payload: Tuple[str, str, Dict, str, bool]):
    """Worker body: one traced cell through the sweep executor.

    Module-level so it pickles into the process pool.  Reuses
    :func:`repro.harness.parallel._execute` — the same code path as a
    traced ``repro sweep`` — so the manifest (and therefore the config
    digest and every stored byte) is identical to what a sweep of the
    same cell produces.  The trace spools through a scratch file and
    rides back as bytes.  ``digest`` rides in as a side channel
    (popped before the ledger, exactly like a ``run_sweep(digest=True)``
    job), so digested and undigested cells share a cache key.
    """
    app, variant, kwargs, spool_dir, digest = payload
    os.makedirs(spool_dir, exist_ok=True)
    base = os.path.join(spool_dir, f"{app}__{variant}")
    kwargs = dict(kwargs)
    kwargs["_trace"] = {"path": base + ".jsonl",
                        "ledger_path": base + ".ledger.json",
                        "categories": None}
    if digest:
        kwargs["_digest"] = True
    _index, result, manifest = parallel._execute((0, (app, variant, kwargs)))
    with open(base + ".jsonl", "rb") as handle:
        trace = handle.read()
    return result, manifest, trace


def _service_campaign(payload: Tuple[Dict, Optional[str]]):
    """Worker body: one fault campaign; module-level so it pickles.

    Runs the campaign serially inside this worker (no nested pools)
    with the service's result store as the warm-image cache, recording
    the campaign's ``snap.*`` events in a ring buffer so the service
    can re-stream them to the client.
    """
    from repro.harness.campaign import run_campaign
    from repro.machine.config import MachineConfig
    from repro.obs.tracer import RingBufferSink

    req, cache_dir = payload
    sink = RingBufferSink()
    tracer = Tracer(sink)
    nodes = req["nodes"]
    machine_config = MachineConfig.tiny(nodes) if nodes else None
    campaign = run_campaign(
        req["apps"][0], req["variants"][0],
        warm_checkpoints=req["warm_checkpoints"],
        lost_nodes=tuple(req["lost_nodes"]),
        detect_fractions=tuple(req["detect_fractions"]),
        scale=req["scale"], n_procs=nodes or 16,
        interval_ns=int(req["interval_us"] * 1000),
        machine_config=machine_config, cache_dir=cache_dir,
        serial=True, tracer=tracer, digest=req.get("digest", False),
        **tiny_revive_overrides(nodes))
    return campaign.to_jsonable(), sink.events()


class SimulationService:
    """Request → event-stream core of the simulation service.

    ``cache_dir=None`` disables the result store entirely (every
    request simulates); otherwise results are served from / stored
    into a :class:`ResultStore` there, bounded by ``max_cache_bytes``.
    ``workers`` sizes the process pool for cache misses (default: CPU
    count capped at 4); environments without multiprocessing fall back
    to a thread.  ``self.health`` is a :class:`MonitorSuite` holding a
    :class:`CacheHealthMonitor` fed by the store's ``svc.cache_*``
    events — ``service.health.verdicts()`` is the live cache health.
    ``self.metrics`` is a :class:`MetricsRegistry` of request
    counters, pool gauges, and phase latency histograms; the ``stats``
    op and ``GET /metrics`` expose it (docs/SERVING.md).
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 workers: Optional[int] = None,
                 max_cache_bytes: Optional[int] = None,
                 heartbeat_period: float = HEARTBEAT_PERIOD_S) -> None:
        self.workers = workers or max(1, min(os.cpu_count() or 1, 4))
        self.health = MonitorSuite([CacheHealthMonitor()])
        self.metrics = MetricsRegistry()
        self.heartbeat_period = heartbeat_period
        self.recent_heartbeats: "deque[Dict]" = \
            deque(maxlen=_RECENT_HEARTBEATS)
        self.store: Optional[ResultStore] = None
        if cache_dir is not None:
            self.store = ResultStore(cache_dir, max_bytes=max_cache_bytes,
                                     tracer=Tracer(self.health))
        #: Chain tips of digested cells, keyed by store key — the
        #: ``stats`` op's digest surface.  Two entries for the same key
        #: must agree (determinism); last write wins either way.
        self.digest_tips: Dict[str, Dict] = {}
        self._inflight: Dict[str, asyncio.Task] = {}
        self._executor = None
        self._executor_broken = False
        self._beat = 0
        self._busy = 0
        self._heartbeat_task: Optional[asyncio.Task] = None

    # -- telemetry -----------------------------------------------------

    def heartbeat(self) -> Dict:
        """Sample the pool/queue gauges; returns ``stats.heartbeat`` fields.

        ``beat`` is a strictly increasing sequence number (the trace
        linter checks monotonicity), ``inflight`` the coalescable
        in-flight cells, ``workers_busy``/``queue_depth`` the pool
        occupancy split at the worker count.  Called by the periodic
        heartbeat task while the server runs and on demand by every
        ``stats`` request, so the gauges are fresh either way.
        """
        self._beat += 1
        inflight = len(self._inflight)
        busy = min(self._busy, self.workers)
        queued = max(0, self._busy - self.workers)
        self.metrics.gauge("svc.inflight").set(inflight)
        self.metrics.gauge("svc.workers_busy").set(busy)
        self.metrics.gauge("svc.queue_depth").set(queued)
        self.metrics.gauge("svc.workers").set(self.workers)
        sample = {"beat": self._beat, "inflight": inflight,
                  "queue_depth": queued, "workers_busy": busy,
                  "workers": self.workers}
        self.recent_heartbeats.append(sample)
        return sample

    def start_heartbeat(self) -> None:
        """Start the periodic gauge sampler (idempotent; needs a loop)."""
        if self._heartbeat_task is None or self._heartbeat_task.done():
            self._heartbeat_task = asyncio.ensure_future(
                self._heartbeat_loop())

    async def _heartbeat_loop(self) -> None:
        while True:
            self.heartbeat()
            await asyncio.sleep(self.heartbeat_period)

    # -- request handling ----------------------------------------------

    def _jobs_for(self, req: Dict) -> List[Tuple[str, str, Dict]]:
        """The request's cells, through the canonical sweep job list.

        Going through :func:`~repro.harness.parallel.sweep_jobs` (with
        the same tiny-machine overrides the CLI applies for
        ``--nodes``) guarantees the run kwargs — and therefore the
        config digests and cache keys — match CLI sweeps exactly.
        """
        from repro.machine.config import MachineConfig

        nodes = req["nodes"]
        machine_config = MachineConfig.tiny(nodes) if nodes else None
        return parallel.sweep_jobs(
            req["apps"], req["variants"], scale=req["scale"],
            n_procs=nodes or 16,
            interval_ns=int(req["interval_us"] * 1000),
            machine_config=machine_config,
            **tiny_revive_overrides(nodes))

    async def events(self, request) -> AsyncIterator[Dict]:
        """Handle one request, yielding enveloped ``svc.*`` events.

        The stream is ``svc.accepted``, then per cell (in canonical
        job order): ``svc.cache_hit`` *or* ``svc.cache_miss`` +
        ``svc.scheduled``/``svc.coalesced``, then ``svc.verdicts``,
        ``svc.latency``, ``svc.result``; then ``svc.report`` for
        ``report`` requests; then ``svc.timing`` (this request's host
        time split into cache-lookup / queue-wait / execute phases)
        and ``svc.done``.  A ``stats`` request instead streams the
        recent ``stats.heartbeat`` samples and one ``stats.snapshot``
        of the full metrics registry plus the digest surface (the
        chain tip of every digested cell).  Any rejection or internal
        failure ends the stream with ``svc.error`` instead.  Events
        carry the standard trace envelope at ``ts`` 0 and pass
        ``repro trace-lint``.
        """
        seq = 0

        def env(name: str, cat: str = "svc", **fields) -> Dict:
            nonlocal seq
            event = {"v": SCHEMA_VERSION, "seq": seq, "ts": 0,
                     "cat": cat, "name": name}
            event.update(fields)
            seq += 1
            return event

        started = perf_counter()
        try:
            req = _normalise(request)
            key = request_key(req)
            self.metrics.counter(f"svc.requests.{req['op']}").add()
            yield env("svc.accepted", op=req["op"], key=key)

            if req["op"] == "stats":
                sample = self.heartbeat()
                for beat in list(self.recent_heartbeats):
                    yield env("stats.heartbeat", cat="stats", **beat)
                yield env("stats.snapshot", cat="stats",
                          beat=sample["beat"],
                          metrics=self.metrics.full_snapshot(),
                          digest={"cells": len(self.digest_tips),
                                  "tips": dict(self.digest_tips)})
                yield env("svc.done", key=key, jobs=0, cached=0)
                return

            if req["op"] == "campaign":
                use_cache = self.store is not None and not req["no_cache"]
                campaign, snap_events = await self._run_campaign(
                    req, self.store.root if use_cache else None)
                # Re-stream the campaign's own snap.* events under this
                # stream's envelope so the whole stream lints clean.
                for snap in snap_events:
                    fields = {k: v for k, v in snap.items()
                              if k not in ("v", "seq", "ts", "cat", "name")}
                    yield env(snap["name"], cat="snap", **fields)
                yield env("svc.campaign", key=key,
                          outcomes=campaign["outcomes"],
                          digests=campaign.get("digests"))
                yield env("svc.done", key=key,
                          jobs=len(campaign["outcomes"]),
                          cached=sum(1 for image in campaign["images"]
                                     if image["cached"]))
                return

            jobs = self._jobs_for(req)
            use_cache = self.store is not None and not req["no_cache"]
            cells = []
            lookup_begin = perf_counter()
            for app, variant, kwargs in jobs:
                jkey = store_key(job_digest(app, variant, kwargs))
                entry = self.store.get(jkey) if use_cache else None
                if entry is not None and (
                        entry.payload.get("manifest") is None
                        or not entry.has_artifact(TRACE_ARTIFACT)):
                    # Result-only entry (untraced sweep): the service
                    # needs verdicts + trace; re-run upgrades it.
                    entry = None
                task = None
                coalesced = False
                if entry is None:
                    task = self._inflight.get(jkey) if use_cache else None
                    coalesced = task is not None
                    if task is None:
                        task = asyncio.ensure_future(self._run_and_store(
                            jkey, app, variant, kwargs,
                            register=use_cache, store=use_cache,
                            scheduled_at=perf_counter(),
                            digest=req["digest"]))
                        if use_cache:
                            self._inflight[jkey] = task
                cells.append((app, variant, jkey, entry, task, coalesced))
            lookup_s = perf_counter() - lookup_begin

            results: Dict[Tuple[str, str], Tuple] = {}
            hits = 0
            queue_wait_s = 0.0
            execute_s = 0.0
            for app, variant, jkey, entry, task, coalesced in cells:
                if entry is not None:
                    hits += 1
                    self.metrics.counter("svc.cache_hits").add()
                    yield env("svc.cache_hit", key=jkey)
                    result = result_from_payload(entry.payload)
                    manifest = entry.payload["manifest"]
                    cached = True
                else:
                    self.metrics.counter("svc.cache_misses").add()
                    if coalesced:
                        self.metrics.counter("svc.coalesced").add()
                    yield env("svc.cache_miss", key=jkey)
                    yield env("svc.coalesced" if coalesced
                              else "svc.scheduled", key=jkey)
                    result, manifest, timing = await task
                    queue_wait_s += timing["queue_wait_s"]
                    execute_s += timing["execute_s"]
                    cached = False
                chain = getattr(result, "digest", None)
                if chain and chain.get("windows"):
                    self.digest_tips[jkey] = {
                        "app": app, "variant": variant,
                        "windows": len(chain["windows"]),
                        "machine": chain["windows"][-1]["machine"]}
                    self.metrics.counter("svc.digest_runs").add()
                results[(app, variant)] = (result, manifest)
                yield env("svc.verdicts", key=jkey, app=app,
                          variant=variant, verdicts=manifest["verdicts"])
                latency = manifest["verdicts"].get("span_latency", {})
                yield env("svc.latency", key=jkey, app=app, variant=variant,
                          classes=latency.get("classes", {}))
                yield env("svc.result", key=jkey, app=app, variant=variant,
                          cached=cached,
                          result=dataclasses.asdict(result))

            if req["op"] == "report":
                rows = []
                for app in req["apps"]:
                    base, _ = results[(app, "baseline")]
                    row = {"app": app,
                           "baseline_ns": base.execution_time_ns}
                    for variant in req["variants"]:
                        if variant != "baseline":
                            row[variant] = \
                                results[(app, variant)][0].overhead_vs(base)
                    rows.append(row)
                yield env("svc.report", key=key, rows=rows)

            total_s = perf_counter() - started
            self.metrics.log_histogram("svc.request_us").record(
                int(total_s * 1e6))
            yield env("svc.timing", key=key, phases={
                "cache_lookup_ms": round(lookup_s * 1e3, 3),
                "queue_wait_ms": round(queue_wait_s * 1e3, 3),
                "execute_ms": round(execute_s * 1e3, 3),
                "total_ms": round(total_s * 1e3, 3)})
            yield env("svc.done", key=key, jobs=len(jobs), cached=hits)
        except ServiceError as exc:
            self.metrics.counter("svc.errors").add()
            yield env("svc.error", error=str(exc))
        except Exception as exc:  # noqa: BLE001 — stream, don't crash
            self.metrics.counter("svc.errors").add()
            yield env("svc.error", error=f"internal: {exc!r}")

    # -- execution -----------------------------------------------------

    def _ensure_executor(self):
        """The process pool, or None to use the loop's thread executor."""
        if self._executor_broken:
            return None
        if self._executor is None:
            try:
                import multiprocessing as mp
                from concurrent.futures import ProcessPoolExecutor

                # Workers are spawned lazily at first submit — which
                # happens mid-connection.  A fork at that point would
                # inherit the accepted socket into the (long-lived)
                # worker, keeping client connections open after the
                # server closes them; spawn (fork+exec) drops every
                # non-inheritable fd, so workers never pin a stream.
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=mp.get_context("spawn"))
            except (OSError, ImportError, PermissionError, ValueError):
                self._executor_broken = True
                return None
        return self._executor

    async def _run_campaign(self, req: Dict,
                            cache_dir: Optional[str]) -> Tuple:
        """Run one fault campaign in the pool (thread fallback)."""
        from concurrent.futures.process import BrokenProcessPool

        loop = asyncio.get_running_loop()
        payload = (req, cache_dir)
        executor = self._ensure_executor()
        self._busy += 1
        try:
            try:
                return await loop.run_in_executor(
                    executor, _service_campaign, payload)
            except (OSError, PermissionError, BrokenProcessPool):
                if executor is None:
                    raise
                self._executor_broken = True
                self._executor = None
                return await loop.run_in_executor(
                    None, _service_campaign, payload)
        finally:
            self._busy -= 1

    async def _run_and_store(self, key: str, app: str, variant: str,
                             kwargs: Dict, register: bool, store: bool,
                             scheduled_at: float,
                             digest: bool = False) -> Tuple:
        """Simulate one cell in the pool; store the entry on the way out.

        Returns ``(result, manifest, timing)`` where ``timing`` splits
        the cell's host time into ``queue_wait_s`` (scheduling to
        worker start — event-loop plus pool queueing) and
        ``execute_s`` (worker wall time); both also land in the
        ``svc.queue_wait_us``/``svc.execute_us`` latency histograms.
        """
        timing = {"queue_wait_s": 0.0, "execute_s": 0.0}
        try:
            loop = asyncio.get_running_loop()
            spool = tempfile.mkdtemp(prefix="repro-serve-")
            payload = (app, variant, kwargs, spool, digest)
            begin = perf_counter()
            timing["queue_wait_s"] = begin - scheduled_at
            self._busy += 1
            try:
                from concurrent.futures.process import BrokenProcessPool

                executor = self._ensure_executor()
                try:
                    result, manifest, trace = await loop.run_in_executor(
                        executor, _service_execute, payload)
                except (OSError, PermissionError, BrokenProcessPool):
                    if executor is None:
                        raise
                    # The pool died (fork restrictions, OOM-killed
                    # worker, ...): degrade to the thread executor.
                    self._executor_broken = True
                    self._executor = None
                    result, manifest, trace = await loop.run_in_executor(
                        None, _service_execute, payload)
            finally:
                self._busy -= 1
                timing["execute_s"] = perf_counter() - begin
                shutil.rmtree(spool, ignore_errors=True)
            self.metrics.log_histogram("svc.queue_wait_us").record(
                int(timing["queue_wait_s"] * 1e6))
            self.metrics.log_histogram("svc.execute_us").record(
                int(timing["execute_s"] * 1e6))
            if store and self.store is not None:
                self.store.put(key, KIND_RUN, run_payload(result, manifest),
                               artifacts={TRACE_ARTIFACT: trace})
            return result, manifest, timing
        finally:
            if register:
                self._inflight.pop(key, None)

    def close(self) -> None:
        """Shut the worker pool and heartbeat down (idempotent)."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None


# -- transport ----------------------------------------------------------

def _event_line(event: Dict) -> bytes:
    return (json.dumps(event, separators=(",", ":")) + "\n").encode("utf-8")


async def _serve_http(service: SimulationService, request_line: bytes,
                      reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
    """Minimal HTTP/1.0 endpoint on the JSONL port: ``GET /metrics``.

    Prometheus and curl speak HTTP, not the JSONL protocol, so the
    server answers any line starting with ``GET `` as an HTTP request:
    ``/metrics`` returns the text exposition of the metrics registry
    (gauges refreshed by an on-demand heartbeat), anything else 404s.
    One request per connection, ``Connection: close`` semantics.
    """
    try:
        while True:  # drain request headers up to the blank line / EOF
            header = await reader.readline()
            if not header.strip():
                break
    except (ConnectionResetError, BrokenPipeError):
        return
    parts = request_line.decode("latin-1").split()
    path = parts[1].split("?")[0] if len(parts) > 1 else "/"
    if path == "/metrics":
        service.heartbeat()
        body = prometheus_text(service.metrics.full_snapshot()) \
            .encode("utf-8")
        status = b"200 OK"
        ctype = b"text/plain; version=0.0.4; charset=utf-8"
    else:
        body = b"repro serve: try GET /metrics\n"
        status = b"404 Not Found"
        ctype = b"text/plain; charset=utf-8"
    writer.write(b"HTTP/1.0 " + status + b"\r\n"
                 b"Content-Type: " + ctype + b"\r\n"
                 b"Content-Length: " + str(len(body)).encode("ascii")
                 + b"\r\nConnection: close\r\n\r\n" + body)
    await writer.drain()


async def _handle(service: SimulationService,
                  reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    """One connection: one JSON request line in, event lines out."""
    try:
        line = await reader.readline()
        if not line.strip():
            return
        if line.startswith(b"GET "):
            await _serve_http(service, line, reader, writer)
            return
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            writer.write(_event_line(
                {"v": SCHEMA_VERSION, "seq": 0, "ts": 0, "cat": "svc",
                 "name": "svc.error",
                 "error": f"malformed JSON request: {exc}"}))
            await writer.drain()
            return
        async for event in service.events(request):
            writer.write(_event_line(event))
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-stream; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def start_server(service: SimulationService,
                       host: str = DEFAULT_HOST,
                       port: int = DEFAULT_PORT) -> asyncio.AbstractServer:
    """Bind the JSONL TCP server (``port=0`` picks a free port).

    Also starts the service's heartbeat task so the pool/queue gauges
    are sampled every ``heartbeat_period`` seconds while serving.
    """

    async def handler(reader, writer):
        await _handle(service, reader, writer)

    service.start_heartbeat()
    return await asyncio.start_server(handler, host=host, port=port)


def bound_port(server: asyncio.AbstractServer) -> int:
    """The port a started server actually bound (resolves ``port=0``)."""
    return server.sockets[0].getsockname()[1]
