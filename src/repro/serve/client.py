"""Blocking client for the ``repro serve`` JSONL protocol.

One request per connection: :func:`submit` sends the request as a
single JSON line and yields each ``svc.*`` event as the server streams
it back, until the server closes the connection (after ``svc.done`` or
``svc.error``).  The protocol and event catalog are documented in
``docs/SERVING.md``; the worked example there uses exactly this
function.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, Optional

from repro.serve.service import DEFAULT_HOST, DEFAULT_PORT


def submit(request: Dict, host: str = DEFAULT_HOST,
           port: int = DEFAULT_PORT,
           timeout: Optional[float] = 300.0) -> Iterator[Dict]:
    """Send one request to a running service; yield its event stream.

    ``timeout`` bounds each read (None blocks forever) — generous by
    default because a cache miss runs a real simulation.  Raises
    ``OSError`` when no server listens at ``host:port`` and
    ``ValueError`` on a non-JSON line (a non-``repro serve`` peer).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        with sock.makefile("rwb") as stream:
            stream.write(json.dumps(request).encode("utf-8") + b"\n")
            stream.flush()
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"non-JSON line from server: {line[:80]!r}") from exc
