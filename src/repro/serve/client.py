"""Blocking client for the ``repro serve`` JSONL protocol.

One request per connection: :func:`submit` sends the request as a
single JSON line and yields each ``svc.*`` event as the server streams
it back, until the server closes the connection (after ``svc.done`` or
``svc.error``).  :func:`fetch_metrics` speaks the same port's HTTP
side (``GET /metrics``) and returns the Prometheus text exposition.
The protocol and event catalog are documented in ``docs/SERVING.md``;
the worked example there uses exactly these functions.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, Optional

from repro.serve.service import DEFAULT_HOST, DEFAULT_PORT


def submit(request: Dict, host: str = DEFAULT_HOST,
           port: int = DEFAULT_PORT,
           timeout: Optional[float] = 300.0) -> Iterator[Dict]:
    """Send one request to a running service; yield its event stream.

    ``timeout`` bounds each read (None blocks forever) — generous by
    default because a cache miss runs a real simulation.  Raises
    ``OSError`` when no server listens at ``host:port`` and
    ``ValueError`` on a non-JSON line (a non-``repro serve`` peer).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        with sock.makefile("rwb") as stream:
            stream.write(json.dumps(request).encode("utf-8") + b"\n")
            stream.flush()
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"non-JSON line from server: {line[:80]!r}") from exc


def fetch_metrics(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                  timeout: Optional[float] = 30.0) -> str:
    """Fetch ``GET /metrics`` from a running service.

    Returns the Prometheus text-exposition body (what a scraper would
    ingest).  Raises ``OSError`` when no server listens and
    ``ValueError`` on a non-200 response.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    header, sep, body = b"".join(chunks).partition(b"\r\n\r\n")
    status = header.split(b"\r\n", 1)[0].split()
    if not sep or len(status) < 2 or status[1] != b"200":
        raise ValueError(f"metrics endpoint returned "
                         f"{header.decode('latin-1', 'replace')[:80]!r}")
    return body.decode("utf-8")
