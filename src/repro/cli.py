"""Command-line interface.

Exposes the common workflows without writing Python::

    python -m repro list                      # available workloads
    python -m repro run ocean --variant cp_parity
    python -m repro compare radix             # all five variants
    python -m repro recover lu --lost-node 3  # fault injection + recovery
    python -m repro table3                    # machine configuration

All commands accept ``--scale`` (run length multiplier) and
``--interval-us`` (checkpoint interval).  Exit status is nonzero when a
recovery verification fails, so the CLI is scriptable in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager
from repro.harness.reporting import format_table
from repro.harness.runner import (
    DEFAULT_INTERVAL_NS,
    VARIANT_LABELS,
    VARIANTS,
    build_machine,
    run_app,
)
from repro.sim.stats import TRAFFIC_CATEGORIES
from repro.workloads.registry import APP_NAMES, paper_reference


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReVive (ISCA 2002) reproduction: run the simulator, "
                    "compare configurations, inject faults.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the twelve Splash-2 analogs")
    sub.add_parser("table3", help="print the modelled machine parameters")

    run_p = sub.add_parser("run", help="run one workload on one variant")
    _common(run_p)
    run_p.add_argument("--variant", choices=VARIANTS, default="cp_parity")

    cmp_p = sub.add_parser("compare",
                           help="run all five variants and report overheads")
    _common(cmp_p)

    rec_p = sub.add_parser("recover",
                           help="inject a fault and verify recovery")
    _common(rec_p)
    rec_p.add_argument("--lost-node", type=int, default=None,
                       help="node to lose permanently "
                            "(omit for a transient system-wide fault)")
    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", choices=APP_NAMES)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="run-length multiplier (default 1.0)")
    parser.add_argument("--interval-us", type=float,
                        default=DEFAULT_INTERVAL_NS / 1000,
                        help="checkpoint interval in microseconds")


def cmd_list() -> int:
    """``repro list``: print the twelve workload analogs."""
    rows = []
    for app in APP_NAMES:
        ref = paper_reference(app)
        rows.append([app, ref["problem"], ref["instructions_M"],
                     ref["l2_miss_pct"]])
    print(format_table(
        ["App", "Paper problem size", "Paper instr (M)", "Paper L2 miss %"],
        rows, title="Splash-2 application analogs (Table 4)"))
    return 0


def cmd_table3() -> int:
    """``repro table3``: print the machine parameters."""
    from repro.harness.experiments import table3_architecture

    row = table3_architecture()
    print(format_table(["Parameter", "Value"],
                       [[k, v] for k, v in row.items()],
                       title="Modelled machine (Table 3)"))
    return 0


def cmd_run(args) -> int:
    """``repro run``: one workload on one variant."""
    interval = int(args.interval_us * 1000)
    result = run_app(args.app, args.variant, scale=args.scale,
                     interval_ns=interval)
    rows = [
        ["execution time (us)", f"{result.execution_time_ns / 1e3:.1f}"],
        ["references", result.total_refs],
        ["L2 miss rate", f"{100 * result.l2_miss_rate:.3f}%"],
        ["checkpoints", result.checkpoints],
        ["max log (KB)", f"{result.max_log_bytes / 1024:.0f}"],
    ]
    for category in TRAFFIC_CATEGORIES:
        rows.append([f"memory traffic {category} (MB)",
                     f"{result.memory_traffic[category] / 1e6:.2f}"])
    print(format_table(["Metric", "Value"], rows,
                       title=f"{args.app} on "
                             f"{VARIANT_LABELS[args.variant]}"))
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: all five variants, with overheads."""
    interval = int(args.interval_us * 1000)
    base = run_app(args.app, "baseline", scale=args.scale)
    rows = [["Base", f"{base.execution_time_ns / 1e3:.1f}", "—"]]
    for variant in VARIANTS[1:]:
        result = run_app(args.app, variant, scale=args.scale,
                         interval_ns=interval)
        rows.append([VARIANT_LABELS[variant],
                     f"{result.execution_time_ns / 1e3:.1f}",
                     f"{100 * result.overhead_vs(base):+.1f}%"])
    print(format_table(["Variant", "Time (us)", "Overhead"], rows,
                       title=f"{args.app}: error-free execution "
                             f"(Figure 8 row)"))
    return 0


def cmd_recover(args) -> int:
    """``repro recover``: fault injection + verified recovery."""
    interval = int(args.interval_us * 1000)
    machine = build_machine("cp_parity", interval_ns=interval,
                            debug_snapshots=True)
    from repro.workloads.registry import get_workload

    machine.attach_workload(get_workload(args.app, scale=args.scale))
    horizon = 3 * interval
    while machine.checkpointing.checkpoints_committed < 2:
        if machine.all_finished:
            print("run too short for two checkpoints; raise --scale or "
                  "lower --interval-us", file=sys.stderr)
            return 2
        machine.run(until=horizon)
        horizon += interval
    detect = machine.checkpointing.commit_times[2] + int(0.8 * interval)
    machine.run(until=detect)

    if args.lost_node is not None:
        NodeLossFault(args.lost_node).apply(machine)
    else:
        TransientSystemFault().apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=args.lost_node,
                                              target_epoch=1)
    mismatches = machine.verify_against_snapshot(result.target_epoch)
    broken = machine.revive.parity.check_all_parity()
    print(format_table(
        ["Phase", "us"],
        [["lost work", f"{result.lost_work_ns / 1e3:.0f}"],
         ["1: hardware recovery", f"{result.phase1_ns / 1e3:.0f}"],
         ["2: log rebuild", f"{result.phase2_ns / 1e3:.0f}"],
         ["3: rollback", f"{result.phase3_ns / 1e3:.0f}"],
         ["4: background repair",
          f"{result.phase4_background_ns / 1e3:.0f}"]],
        title=f"{args.app}: recovery "
              f"({result.entries_undone} entries undone)"))
    if mismatches or broken:
        print(f"VERIFICATION FAILED: {len(mismatches)} mismatching lines, "
              f"{len(broken)} broken stripes", file=sys.stderr)
        return 1
    print("verification: memory bit-exact, parity consistent")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = make_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "table3":
        return cmd_table3()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    assert args.command == "recover"
    return cmd_recover(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
