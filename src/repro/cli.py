"""Command-line interface.

Exposes the common workflows without writing Python::

    python -m repro list                      # available workloads
    python -m repro run ocean --variant cp_parity
    python -m repro compare radix             # all five variants
    python -m repro sweep lu fft --workers 4  # parallel app x variant sweep
    python -m repro recover lu --lost-node 3  # fault injection + recovery
    python -m repro campaign lu --workers 4   # fork-based fault campaign
    python -m repro trace lu --out out.jsonl  # traced node-loss recovery
    python -m repro report sweep_traces/      # dashboard from traces/ledgers
    python -m repro latency out.jsonl         # span latency percentiles
    python -m repro export-trace out.jsonl    # Perfetto / chrome://tracing
    python -m repro trace-lint out.jsonl      # schema-validate a trace
    python -m repro table3                    # machine configuration
    python -m repro serve --cache-dir .cache  # async simulation service
    python -m repro submit lu --nodes 4       # stream a request to it
    python -m repro profile lu --nodes 4      # per-actor host-time profile
    python -m repro stats                     # live telemetry from serve
    python -m repro diff a.json b.json        # first divergent window
    python -m repro diff a.json b.json --bisect   # ... down to the event

All commands accept ``--scale`` (run length multiplier),
``--interval-us`` (checkpoint interval), and ``--nodes`` (shrink to a
``MachineConfig.tiny(n)`` machine).  ``run`` and ``recover`` accept
``--trace PATH`` (write the JSONL event trace documented in
docs/OBSERVABILITY.md), ``--trace-categories`` (comma-separated
filter), ``--profile`` (wall-clock profile of the simulator itself),
and ``--ledger PATH`` (live run-health monitors + manifest).
``trace`` is the full worked example: a traced run with a node-loss
fault whose recovery breakdown is recomputed *from the trace* and
checked against the live ``RecoveryResult``.  ``sweep --trace-dir``
collects per-job traces and ledgers, merged deterministically;
``report`` renders the Figure 8/11/12 dashboard from such a directory
(or any trace files) without re-running anything.  Exit status is
nonzero when a recovery verification (or the trace cross-check)
fails, so the CLI is scriptable in CI.

``sweep`` and ``latency`` accept a shared ``--cache-dir``: a
content-addressed result store (docs/SERVING.md) that lets repeat
configurations skip the simulation entirely, with a hits/misses log
line.  ``serve`` runs the async simulation service over the same
store; ``submit`` streams a run/latency/sweep/report request to it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager
from repro.harness.reporting import (
    format_table,
    profile_table,
    trace_summary_table,
)
from repro.harness.runner import (
    BENCH_LOG_BYTES,
    DEFAULT_INTERVAL_NS,
    VARIANT_LABELS,
    VARIANTS,
    build_machine,
    profile_summary,
    run_app,
)
from repro.machine.config import MachineConfig
from repro.obs import (
    CATEGORIES,
    JsonlFileSink,
    MonitorSuite,
    Profiler,
    RunLedger,
    Tracer,
    attach_monitors,
    default_monitors,
    read_trace,
    recovery_breakdown,
)
from repro.sim.stats import TRAFFIC_CATEGORIES
from repro.workloads.registry import APP_NAMES, paper_reference


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReVive (ISCA 2002) reproduction: run the simulator, "
                    "compare configurations, inject faults.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the twelve Splash-2 analogs")
    sub.add_parser("table3", help="print the modelled machine parameters")

    run_p = sub.add_parser("run", help="run one workload on one variant")
    _common(run_p)
    _observability(run_p)
    run_p.add_argument("--variant", choices=VARIANTS, default="cp_parity")
    run_p.add_argument("--digest", metavar="PATH", default=None,
                       help="record the determinism digest chain (one "
                            "window per checkpoint boundary) and write "
                            "the run's spec + chain there — the input "
                            "of 'repro diff' (docs/OBSERVABILITY.md)")

    cmp_p = sub.add_parser("compare",
                           help="run all five variants and report overheads")
    _common(cmp_p)

    swp_p = sub.add_parser(
        "sweep",
        help="run an app x variant sweep, fanning out over worker "
             "processes (results are bit-identical to a serial sweep; "
             "see docs/PERFORMANCE.md)")
    swp_p.add_argument("apps", nargs="*", metavar="APP",
                       help="applications to sweep (default: all twelve)")
    swp_p.add_argument("--variants", default=None, metavar="V1,V2",
                       help="comma-separated variants "
                            f"(default: all of {','.join(VARIANTS)})")
    swp_p.add_argument("--scale", type=float, default=1.0,
                       help="run-length multiplier (default 1.0)")
    swp_p.add_argument("--interval-us", type=float,
                       default=DEFAULT_INTERVAL_NS / 1000,
                       help="checkpoint interval in microseconds")
    swp_p.add_argument("--nodes", type=int, default=None,
                       choices=(2, 4, 8, 16),
                       help="use a MachineConfig.tiny(n) machine")
    swp_p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: one per job, "
                            "capped at the CPU count; 1 forces serial)")
    swp_p.add_argument("--chunksize", type=int, default=1,
                       help="jobs handed to a worker per dispatch")
    swp_p.add_argument("--serial", action="store_true",
                       help="run in-process without multiprocessing")
    swp_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write the full sweep results as JSON")
    swp_p.add_argument("--trace-dir", metavar="DIR", default=None,
                       help="write each job's JSONL trace + ledger there "
                            "and merge the per-run ledgers into "
                            "sweep.ledger.json (render with: repro "
                            "report DIR)")
    swp_p.add_argument("--trace-categories", metavar="CATS", default=None,
                       help="comma-separated category filter for "
                            "--trace-dir traces")
    swp_p.add_argument("--digest", action="store_true",
                       help="record every job's determinism digest "
                            "chain; with --trace-dir the merged chains "
                            "land in sweep.digest.json beside the "
                            "ledger (serial and parallel sweeps write "
                            "identical files)")
    _cache_flags(swp_p)

    cam_p = sub.add_parser(
        "campaign",
        help="fork-based fault campaign: warm one machine to N "
             "checkpoints, snapshot it (content-addressed in "
             "--cache-dir), and fork the lost-node x detection-latency "
             "grid from the warm image across worker processes "
             "(docs/SNAPSHOTS.md)")
    _common(cam_p, default_scale=0.5, default_interval_us=50.0,
            default_nodes=4)
    cam_p.add_argument("--variant", choices=("cp_parity", "cp_mirroring"),
                       default="cp_parity")
    cam_p.add_argument("--warm", type=int, default=2, metavar="N",
                       help="checkpoints committed before the snapshot "
                            "(default 2)")
    cam_p.add_argument("--lost-nodes", default="none,1", metavar="N1,N2",
                       help="comma-separated fault sites; 'none' injects "
                            "a memory-intact transient fault "
                            "(default none,1)")
    cam_p.add_argument("--detect-fractions", default="0.2,0.5,0.8",
                       metavar="F1,F2",
                       help="detection latencies as fractions of the "
                            "checkpoint interval (default 0.2,0.5,0.8)")
    cam_p.add_argument("--hybrid-fractions", default=None, metavar="F1,F2",
                       help="optional mirrored_fraction axis; each "
                            "fraction warms its own image")
    cam_p.add_argument("--workers", type=int, default=None,
                       help="worker processes for the fault grid")
    cam_p.add_argument("--serial", action="store_true",
                       help="run the grid in-process")
    cam_p.add_argument("--cold", action="store_true",
                       help="re-simulate the warm-up in every scenario "
                            "instead of forking (the perf-gate baseline)")
    cam_p.add_argument("--trace", metavar="PATH", default=None,
                       help="write the campaign's snap.* events as JSONL")
    cam_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write the full campaign as JSON")
    _cache_flags(cam_p)

    srv_p = sub.add_parser(
        "serve",
        help="run the async simulation service: accepts "
             "run/latency/sweep/report requests over newline-delimited "
             "JSON, dedupes them against the content-addressed result "
             "store, and streams progress events back "
             "(docs/SERVING.md)")
    srv_p.add_argument("--host", default=None,
                       help="bind address (default 127.0.0.1)")
    srv_p.add_argument("--port", type=int, default=None,
                       help="TCP port (default 7316; 0 picks a free one)")
    srv_p.add_argument("--workers", type=int, default=None,
                       help="worker processes for cache misses "
                            "(default: CPU count, capped at 4)")
    srv_p.add_argument("--max-cache-mb", type=float, default=None,
                       help="size-bound the result store; least-"
                            "recently-used entries are evicted")
    _cache_flags(srv_p, default_dir=".repro-cache")

    sbm_p = sub.add_parser(
        "submit",
        help="submit a request to a running 'repro serve' instance and "
             "stream its progress events")
    sbm_p.add_argument("apps", nargs="+", metavar="APP",
                       help="application(s); run/latency take exactly one")
    sbm_p.add_argument("--op", choices=("run", "latency", "sweep",
                                        "report", "campaign"),
                       default="run",
                       help="request operation (default run)")
    sbm_p.add_argument("--variants", default=None, metavar="V1,V2",
                       help="comma-separated variants (default: "
                            "cp_parity for run/latency, "
                            "baseline,cp_parity for sweep/report)")
    sbm_p.add_argument("--scale", type=float, default=0.1,
                       help="run-length multiplier (default 0.1)")
    sbm_p.add_argument("--interval-us", type=float,
                       default=DEFAULT_INTERVAL_NS / 1000,
                       help="checkpoint interval in microseconds")
    sbm_p.add_argument("--nodes", type=int, default=None,
                       choices=(2, 4, 8, 16),
                       help="use a MachineConfig.tiny(n) machine")
    sbm_p.add_argument("--host", default=None,
                       help="server address (default 127.0.0.1)")
    sbm_p.add_argument("--port", type=int, default=None,
                       help="server port (default 7316)")
    sbm_p.add_argument("--no-cache", action="store_true",
                       help="ask the server to bypass its result store")
    sbm_p.add_argument("--json", action="store_true",
                       help="print the raw event stream as JSON lines")

    prf_p = sub.add_parser(
        "profile",
        help="host-time attribution of one run: per-component self vs "
             "cumulative seconds, per-actor dispatch time with the "
             "batch-vs-protocol-fallout tier split, and flamegraph / "
             "Perfetto / prof.* trace exports (docs/OBSERVABILITY.md)")
    _common(prf_p, default_scale=0.25, default_interval_us=50.0,
            default_nodes=4)
    prf_p.add_argument("--variant", choices=VARIANTS, default="cp_parity")
    prf_p.add_argument("--top", type=int, default=None, metavar="N",
                       help="show only the N hottest actors")
    prf_p.add_argument("--min-coverage", type=float, default=None,
                       metavar="FRACTION",
                       help="exit 1 unless at least this fraction of "
                            "machine.run wall time is attributed to "
                            "actors (the reconciliation gate)")
    prf_p.add_argument("--flame", metavar="PATH", default=None,
                       help="write collapsed-stack lines for "
                            "flamegraph.pl / speedscope")
    prf_p.add_argument("--perfetto", metavar="PATH", default=None,
                       help="write Chrome Trace counter tracks for "
                            "ui.perfetto.dev")
    prf_p.add_argument("--trace", metavar="PATH", default=None,
                       help="write the profile as prof.* JSONL events "
                            "(passes repro trace-lint)")
    prf_p.add_argument("--json", metavar="PATH", default=None,
                       help="write the profile snapshot as JSON")

    sts_p = sub.add_parser(
        "stats",
        help="fetch live telemetry from a running 'repro serve': "
             "heartbeat gauges and the metrics snapshot over the JSONL "
             "protocol, or the raw Prometheus text exposition")
    sts_p.add_argument("--host", default=None,
                       help="server address (default 127.0.0.1)")
    sts_p.add_argument("--port", type=int, default=None,
                       help="server port (default 7316)")
    sts_p.add_argument("--prometheus", action="store_true",
                       help="print the GET /metrics exposition body "
                            "instead of the event stream")
    sts_p.add_argument("--json", action="store_true",
                       help="print the raw event stream as JSON lines")

    rec_p = sub.add_parser("recover",
                           help="inject a fault and verify recovery")
    _common(rec_p)
    _observability(rec_p)
    rec_p.add_argument("--lost-node", type=int, default=None,
                       help="node to lose permanently "
                            "(omit for a transient system-wide fault)")

    trc_p = sub.add_parser(
        "trace",
        help="traced node-loss recovery on a tiny machine; the recovery "
             "breakdown is recomputed from the JSONL trace and checked "
             "against the live RecoveryResult (docs/OBSERVABILITY.md)")
    _common(trc_p, default_scale=0.5,
            default_interval_us=50.0, default_nodes=4)
    _observability(trc_p)
    trc_p.add_argument("--out", default="trace.jsonl",
                       help="JSONL trace output path (default trace.jsonl); "
                            "--trace overrides it")
    trc_p.add_argument("--lost-node", type=int, default=1,
                       help="node to lose permanently (default 1)")

    rep_p = sub.add_parser(
        "report",
        help="render a run-health dashboard (Figures 8/11/12) from "
             "JSONL traces and ledger manifests alone — pass trace "
             "files or a sweep --trace-dir directory")
    rep_p.add_argument("paths", nargs="+", metavar="PATH",
                       help="trace files (*.jsonl) or directories of "
                            "traces + ledgers (e.g. a sweep --trace-dir)")
    rep_p.add_argument("--json", metavar="PATH", default=None,
                       help="also dump the full report as JSON")

    lint_p = sub.add_parser(
        "trace-lint",
        help="validate JSONL traces against the schema "
             "(docs/OBSERVABILITY.md): envelope, categories, names, "
             "required fields, span pairing + segment-sum closure; "
             "exit 1 on any problem")
    lint_p.add_argument("paths", nargs="+", metavar="PATH",
                        help="JSONL trace files to validate")

    lat_p = sub.add_parser(
        "latency",
        help="per-class transaction latency percentiles "
             "(p50/p90/p99/p999) and critical-path attribution, "
             "recomputed from span events in JSONL traces alone")
    lat_p.add_argument("paths", nargs="+", metavar="PATH",
                       help="trace files (*.jsonl) or directories of "
                            "traces (e.g. a sweep --trace-dir)")
    lat_p.add_argument("--json", metavar="PATH", default=None,
                       help="also dump the latency report as JSON")
    _cache_flags(lat_p)

    exp_p = sub.add_parser(
        "export-trace",
        help="convert a JSONL trace into Chrome Trace Event JSON for "
             "Perfetto (ui.perfetto.dev) or chrome://tracing — one "
             "track per node, nested slices per span segment")
    exp_p.add_argument("trace", metavar="TRACE",
                       help="JSONL trace file (rotated segments are "
                            "followed)")
    exp_p.add_argument("--out", metavar="PATH", default=None,
                       help="output path (default: TRACE with a "
                            ".chrome.json suffix)")
    exp_p.add_argument("--spans-only", action="store_true",
                       help="export span slices only (skip the 'i' "
                            "instant markers for point events)")

    dif_p = sub.add_parser(
        "diff",
        help="compare two runs' digest chains (from 'repro run "
             "--digest'): name the first divergent checkpoint window "
             "and component, and with --bisect replay the divergent "
             "window from the last-agreeing state to pin the first "
             "divergent event; exit 1 when the runs diverge")
    dif_p.add_argument("run_a", metavar="A.json",
                       help="first run's digest file")
    dif_p.add_argument("run_b", metavar="B.json",
                       help="second run's digest file")
    dif_p.add_argument("--bisect", action="store_true",
                       help="re-simulate to the last-agreeing commit, "
                            "fork both specs from that image, and "
                            "replay with per-event digesting down to "
                            "the first divergent event")
    dif_p.add_argument("--image", metavar="PATH", default=None,
                       help="with --bisect: pickle run A's machine "
                            "image at the divergence frontier (the "
                            "last agreeing state) there for offline "
                            "inspection")
    return parser


def _common(parser: argparse.ArgumentParser, default_scale: float = 1.0,
            default_interval_us: float = DEFAULT_INTERVAL_NS / 1000,
            default_nodes: Optional[int] = None) -> None:
    parser.add_argument("app", choices=APP_NAMES)
    parser.add_argument("--scale", type=float, default=default_scale,
                        help=f"run-length multiplier "
                             f"(default {default_scale})")
    parser.add_argument("--interval-us", type=float,
                        default=default_interval_us,
                        help="checkpoint interval in microseconds")
    parser.add_argument("--nodes", type=int, default=default_nodes,
                        choices=(2, 4, 8, 16),
                        help="use a MachineConfig.tiny(n) machine with one "
                             "processor per node (default: the 16-node "
                             "bench preset)")


def _observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL event trace to PATH "
                             "(schema: docs/OBSERVABILITY.md)")
    parser.add_argument("--trace-categories", metavar="CATS", default=None,
                        help="comma-separated category filter, e.g. "
                             "'ckpt,recovery' (default: all categories)")
    parser.add_argument("--profile", action="store_true",
                        help="print a wall-clock profile of the simulator")
    parser.add_argument("--ledger", metavar="PATH", default=None,
                        help="monitor the run live (log watermarks, "
                             "checkpoint cadence, traffic, recovery) and "
                             "write the ledger manifest to PATH")


def _cache_flags(parser: argparse.ArgumentParser,
                 default_dir: Optional[str] = None) -> None:
    """The shared ``--cache-dir`` / ``--no-cache`` pair."""
    parser.add_argument("--cache-dir", metavar="DIR", default=default_dir,
                        help="content-addressed result store: repeat "
                             "configurations are served from it instead "
                             "of re-simulating (docs/SERVING.md)"
                             + (f" (default {default_dir})"
                                if default_dir else ""))
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir for this invocation")


def _cache_dir(args) -> Optional[str]:
    """The effective result-store root (None when caching is off)."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _machine_setup(args):
    """(machine_config, n_procs) implied by ``--nodes``."""
    if args.nodes is None:
        return None, 16
    return MachineConfig.tiny(args.nodes), args.nodes


def _make_tracer(args) -> Optional[Tracer]:
    """Build the file tracer requested by ``--trace``, if any."""
    path = getattr(args, "trace", None) or getattr(args, "out", None)
    if path is None:
        return None
    categories = None
    if args.trace_categories:
        categories = [c.strip() for c in args.trace_categories.split(",")
                      if c.strip()]
        unknown = sorted(set(categories) - set(CATEGORIES))
        if unknown:
            raise SystemExit(
                f"unknown trace categories {', '.join(unknown)}; "
                f"choose from {', '.join(CATEGORIES)}")
    return Tracer(JsonlFileSink(path), categories=categories)


def _monitoring_setup(args, tracer, interval_ns, variant):
    """Attach the standard monitors when ``--ledger`` was requested.

    Returns ``(tracer, suite)``; without ``--ledger`` the tracer passes
    through and the suite is None.  Monitors are a sink, so requesting
    a ledger without ``--trace`` still works — the run is observed
    in-process without writing a trace file.
    """
    if not getattr(args, "ledger", None):
        return tracer, None
    capacity = None
    if variant != "baseline":
        capacity = _tiny_revive_overrides(args).get(
            "log_bytes_per_node", BENCH_LOG_BYTES)
    monitors = default_monitors(interval_ns=interval_ns,
                                log_capacity_bytes=capacity)
    if tracer is None:
        suite = MonitorSuite(monitors)
        return Tracer(suite), suite
    return tracer, attach_monitors(tracer, monitors)


def _write_ledger(args, app, variant, run_args, suite, tracer,
                  result=None) -> None:
    """Finalize and write the ``--ledger`` manifest for one command."""
    from repro.workloads.splash2 import SPLASH2_SPECS

    spec = SPLASH2_SPECS.get(app)
    ledger = RunLedger(app, variant, run_args=run_args,
                       seed=spec.seed if spec is not None else None)
    manifest = ledger.finalize(result=result, monitors=suite,
                               tracer=tracer)
    ledger.write(args.ledger)
    state = "healthy" if manifest["healthy"] else "UNHEALTHY"
    print(f"ledger: {args.ledger} ({state})")


def cmd_list() -> int:
    """``repro list``: print the twelve workload analogs."""
    rows = []
    for app in APP_NAMES:
        ref = paper_reference(app)
        rows.append([app, ref["problem"], ref["instructions_M"],
                     ref["l2_miss_pct"]])
    print(format_table(
        ["App", "Paper problem size", "Paper instr (M)", "Paper L2 miss %"],
        rows, title="Splash-2 application analogs (Table 4)"))
    return 0


def cmd_table3() -> int:
    """``repro table3``: print the machine parameters."""
    from repro.harness.experiments import table3_architecture

    row = table3_architecture()
    print(format_table(["Parameter", "Value"],
                       [[k, v] for k, v in row.items()],
                       title="Modelled machine (Table 3)"))
    return 0


def cmd_run(args) -> int:
    """``repro run``: one workload on one variant."""
    interval = int(args.interval_us * 1000)
    machine_config, n_procs = _machine_setup(args)
    tracer = _make_tracer(args)
    tracer, suite = _monitoring_setup(args, tracer, interval, args.variant)
    profiler = Profiler() if args.profile else None
    overrides = (_tiny_revive_overrides(args)
                 if args.variant != "baseline" else {})
    result = run_app(args.app, args.variant, scale=args.scale,
                     interval_ns=interval, machine_config=machine_config,
                     n_procs=n_procs, tracer=tracer, profiler=profiler,
                     digest=bool(args.digest), **overrides)
    rows = [
        ["execution time (us)", f"{result.execution_time_ns / 1e3:.1f}"],
        ["references", result.total_refs],
        ["L2 miss rate", f"{100 * result.l2_miss_rate:.3f}%"],
        ["checkpoints", result.checkpoints],
        ["max log (KB)", f"{result.max_log_bytes / 1024:.0f}"],
    ]
    for category in TRAFFIC_CATEGORIES:
        rows.append([f"memory traffic {category} (MB)",
                     f"{result.memory_traffic[category] / 1e6:.2f}"])
    print(format_table(["Metric", "Value"], rows,
                       title=f"{args.app} on "
                             f"{VARIANT_LABELS[args.variant]}"))
    if result.profile is not None:
        print()
        print(profile_table(result.profile))
    if args.digest:
        import os

        from repro.obs.diff import write_run_digest

        # The spec mirrors this command's arguments so 'repro diff
        # --bisect' can rebuild the exact run later.  The test-only
        # perturbation rides along: a replay must reproduce it.
        spec = {"app": args.app, "variant": args.variant,
                "scale": args.scale, "nodes": args.nodes,
                "interval_us": args.interval_us,
                "perturb_store": (int(os.environ.get(
                    "REPRO_PERTURB_STORE", "0")) or None)}
        write_run_digest(args.digest, spec, result.digest)
        print(f"\ndigest: {len(result.digest['windows'])} windows -> "
              f"{args.digest}")
    if tracer is not None:
        tracer.close()
        if args.trace:
            print(f"\ntrace: {tracer.events_emitted} events -> "
                  f"{args.trace}")
    if suite is not None:
        _write_ledger(args, args.app, args.variant,
                      dict(scale=args.scale, n_procs=n_procs,
                           interval_ns=interval,
                           machine_config=machine_config, **overrides),
                      suite, tracer, result=result)
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: all five variants, with overheads."""
    interval = int(args.interval_us * 1000)
    machine_config, n_procs = _machine_setup(args)
    base = run_app(args.app, "baseline", scale=args.scale,
                   machine_config=machine_config, n_procs=n_procs)
    rows = [["Base", f"{base.execution_time_ns / 1e3:.1f}", "—"]]
    for variant in VARIANTS[1:]:
        result = run_app(args.app, variant, scale=args.scale,
                         interval_ns=interval,
                         machine_config=machine_config, n_procs=n_procs,
                         **_tiny_revive_overrides(args))
        rows.append([VARIANT_LABELS[variant],
                     f"{result.execution_time_ns / 1e3:.1f}",
                     f"{100 * result.overhead_vs(base):+.1f}%"])
    print(format_table(["Variant", "Time (us)", "Overhead"], rows,
                       title=f"{args.app}: error-free execution "
                             f"(Figure 8 row)"))
    return 0


def cmd_sweep(args) -> int:
    """``repro sweep``: app × variant fan-out with parallel workers."""
    from repro.harness.parallel import run_sweep

    for app in args.apps:
        if app not in APP_NAMES:
            raise SystemExit(f"unknown workload {app!r}; "
                             f"choose from {', '.join(APP_NAMES)}")
    variants = None
    if args.variants:
        variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    machine_config, n_procs = _machine_setup(args)
    trace_categories = None
    if args.trace_categories:
        trace_categories = [c.strip()
                            for c in args.trace_categories.split(",")
                            if c.strip()]
        unknown = sorted(set(trace_categories) - set(CATEGORIES))
        if unknown:
            raise SystemExit(
                f"unknown trace categories {', '.join(unknown)}; "
                f"choose from {', '.join(CATEGORIES)}")
    cache_dir = _cache_dir(args)
    sweep = run_sweep(
        args.apps or None, variants,
        workers=args.workers, chunksize=args.chunksize, serial=args.serial,
        scale=args.scale, n_procs=n_procs,
        interval_ns=int(args.interval_us * 1000),
        machine_config=machine_config, trace_dir=args.trace_dir,
        trace_categories=trace_categories, cache_dir=cache_dir,
        digest=args.digest, **_tiny_revive_overrides(args))
    if args.digest and sweep.digest is not None:
        digested = sum(1 for job in sweep.digest["jobs"]
                       if job["digest"] is not None)
        print(f"digest: {digested}/{len(sweep.digest['jobs'])} job "
              f"chains recorded"
              + (f" -> {args.trace_dir}/sweep.digest.json"
                 if args.trace_dir else ""))
    if cache_dir is not None:
        print(f"cache: {sweep.cache_hits} hits, {sweep.cache_misses} "
              f"misses ({cache_dir})")

    swept_variants = []
    for _app, variant in sweep.job_order:
        if variant not in swept_variants:
            swept_variants.append(variant)
    rows = []
    for app in sweep.apps():
        row = [app]
        base = sweep.results.get((app, "baseline"))
        for variant in swept_variants:
            result = sweep.results[(app, variant)]
            cell = f"{result.execution_time_ns / 1e3:.1f}us"
            if base is not None and variant != "baseline":
                cell += f" ({100 * result.overhead_vs(base):+.1f}%)"
            row.append(cell)
        rows.append(row)
    mode = (f"{sweep.workers} workers" if sweep.parallel
            else "serial")
    print(format_table(
        ["App"] + [VARIANT_LABELS[v] for v in swept_variants], rows,
        title=f"sweep: {len(sweep.job_order)} runs in "
              f"{sweep.wall_seconds:.1f}s ({mode})"))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(sweep.to_jsonable(), fh, indent=2)
        print(f"\nresults: {args.json}")
    if sweep.trace_dir is not None:
        healthy = sum(1 for ledger in sweep.ledgers or []
                      if ledger.get("healthy"))
        print(f"\ntraces + ledgers: {sweep.trace_dir} "
              f"({healthy}/{len(sweep.ledgers or [])} runs healthy; "
              f"render with: repro report {sweep.trace_dir})")
    return 0


def _fraction_list(raw: str, flag: str) -> List[float]:
    """Parse a comma-separated fraction list CLI argument."""
    try:
        return [float(f) for f in raw.split(",") if f.strip()]
    except ValueError:
        raise SystemExit(f"{flag} wants comma-separated numbers, "
                         f"got {raw!r}")


def cmd_campaign(args) -> int:
    """``repro campaign``: warm once, fork the fault grid."""
    from repro.harness.campaign import run_campaign

    lost_nodes = []
    for token in args.lost_nodes.split(","):
        token = token.strip().lower()
        if not token:
            continue
        lost_nodes.append(None if token == "none" else int(token))
    detect_fractions = _fraction_list(args.detect_fractions,
                                      "--detect-fractions")
    hybrid_fractions = (_fraction_list(args.hybrid_fractions,
                                       "--hybrid-fractions")
                        if args.hybrid_fractions else None)
    machine_config, n_procs = _machine_setup(args)
    tracer = None
    if args.trace:
        tracer = Tracer(JsonlFileSink(args.trace))
    campaign = run_campaign(
        args.app, args.variant, warm_checkpoints=args.warm,
        lost_nodes=tuple(lost_nodes),
        detect_fractions=tuple(detect_fractions),
        hybrid_fractions=hybrid_fractions,
        scale=args.scale, n_procs=n_procs,
        interval_ns=int(args.interval_us * 1000),
        machine_config=machine_config, cache_dir=_cache_dir(args),
        workers=args.workers, serial=args.serial, cold=args.cold,
        tracer=tracer, **_tiny_revive_overrides(args))
    rows = []
    for outcome in campaign.outcomes:
        lost = ("—" if outcome["lost_node"] is None
                else str(outcome["lost_node"]))
        row = [lost, f"{outcome['detect_fraction']:.2f}",
               f"{outcome['lost_work_ns'] / 1e3:.0f}",
               f"{outcome['breakdown']['log_rebuild'] / 1e3:.0f}",
               f"{outcome['breakdown']['rollback'] / 1e3:.0f}",
               f"{outcome['unavailable_ns'] / 1e6:.1f}"]
        if outcome["hybrid_fraction"] is not None:
            row.insert(0, f"{outcome['hybrid_fraction']:.2f}")
        rows.append(row)
    headers = ["Lost node", "Detect", "Lost work (us)",
               "Log rebuild (us)", "Rollback (us)", "Unavailable (ms)"]
    if any(o["hybrid_fraction"] is not None for o in campaign.outcomes):
        headers.insert(0, "Hybrid")
    mode = ("cold" if campaign.cold
            else f"{campaign.workers} workers" if campaign.parallel
            else "forked, serial")
    print(format_table(
        headers, rows,
        title=f"{args.app} on {VARIANT_LABELS[args.variant]}: "
              f"{len(campaign.outcomes)} scenarios in "
              f"{campaign.wall_seconds:.1f}s ({mode})"))
    if not campaign.cold:
        for image in campaign.images:
            state = "cached" if image["cached"] else "captured"
            print(f"warm image {image['key'][:12]}: "
                  f"{image['bytes'] / 1024:.0f}KB ({state})")
    if tracer is not None:
        tracer.close()
        print(f"trace: {tracer.events_emitted} events -> {args.trace}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(campaign.to_jsonable(), fh, indent=2)
        print(f"campaign: {args.json}")
    return 0


def cmd_recover(args) -> int:
    """``repro recover``: fault injection + verified recovery."""
    interval = int(args.interval_us * 1000)
    machine_config, n_procs = _machine_setup(args)
    tracer = _make_tracer(args)
    tracer, suite = _monitoring_setup(args, tracer, interval, "cp_parity")
    profiler = Profiler() if args.profile else None
    machine = build_machine("cp_parity", machine_config=machine_config,
                            interval_ns=interval, tracer=tracer,
                            profiler=profiler, debug_snapshots=True,
                            **_tiny_revive_overrides(args))
    from repro.workloads.registry import get_workload

    machine.attach_workload(get_workload(args.app, scale=args.scale,
                                         n_procs=n_procs))
    horizon = 3 * interval
    while machine.checkpointing.checkpoints_committed < 2:
        if machine.all_finished:
            print("run too short for two checkpoints; raise --scale or "
                  "lower --interval-us", file=sys.stderr)
            return 2
        machine.run(until=horizon)
        horizon += interval
    detect = machine.checkpointing.commit_times[2] + int(0.8 * interval)
    machine.run(until=detect)

    if args.lost_node is not None:
        NodeLossFault(args.lost_node).apply(machine)
    else:
        TransientSystemFault().apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=args.lost_node,
                                              target_epoch=1)
    mismatches = machine.verify_against_snapshot(result.target_epoch)
    broken = machine.revive.parity.check_all_parity()
    print(format_table(
        ["Phase", "us"],
        [["lost work", f"{result.lost_work_ns / 1e3:.0f}"],
         ["1: hardware recovery", f"{result.phase1_ns / 1e3:.0f}"],
         ["2: log rebuild", f"{result.phase2_ns / 1e3:.0f}"],
         ["3: rollback", f"{result.phase3_ns / 1e3:.0f}"],
         ["4: background repair",
          f"{result.phase4_background_ns / 1e3:.0f}"]],
        title=f"{args.app}: recovery "
              f"({result.entries_undone} entries undone)"))
    if profiler is not None:
        print()
        print(profile_table(profile_summary(profiler)))
    if tracer is not None:
        tracer.close()
        if args.trace:
            print(f"trace: {tracer.events_emitted} events -> {args.trace}")
    if suite is not None:
        _write_ledger(args, args.app, "cp_parity",
                      dict(scale=args.scale, n_procs=n_procs,
                           interval_ns=interval,
                           machine_config=machine_config,
                           lost_node=args.lost_node,
                           **_tiny_revive_overrides(args)),
                      suite, tracer)
    if mismatches or broken:
        print(f"VERIFICATION FAILED: {len(mismatches)} mismatching lines, "
              f"{len(broken)} broken stripes", file=sys.stderr)
        return 1
    print("verification: memory bit-exact, parity consistent")
    return 0


def _tiny_revive_overrides(args) -> dict:
    """ReVive overrides sized for a ``--nodes`` tiny machine.

    Delegates to the shared
    :func:`repro.harness.runner.tiny_revive_overrides` so the CLI and
    the simulation service derive identical run kwargs — and therefore
    identical config digests and cache keys — for the same request.
    """
    from repro.harness.runner import tiny_revive_overrides

    return tiny_revive_overrides(args.nodes)


def cmd_trace(args) -> int:
    """``repro trace``: the documented trace-a-recovery worked example.

    Runs the workload on a tiny ``--nodes`` machine with tracing on,
    lets two checkpoints commit, loses ``--lost-node``, recovers to
    epoch 1, then *recomputes* the recovery phase breakdown from the
    JSONL trace alone and cross-checks it against the live
    ``RecoveryResult`` — the same procedure docs/OBSERVABILITY.md
    walks through.  Exit status 1 on any mismatch.
    """
    interval = int(args.interval_us * 1000)
    machine_config, n_procs = _machine_setup(args)
    tracer = _make_tracer(args)
    tracer, suite = _monitoring_setup(args, tracer, interval, "cp_parity")
    trace_path = args.trace or args.out
    profiler = Profiler() if args.profile else None
    machine = build_machine("cp_parity", machine_config=machine_config,
                            interval_ns=interval, tracer=tracer,
                            profiler=profiler, debug_snapshots=True,
                            **_tiny_revive_overrides(args))
    from repro.workloads.registry import get_workload

    machine.attach_workload(get_workload(args.app, scale=args.scale,
                                         n_procs=n_procs))
    horizon = 3 * interval
    while machine.checkpointing.checkpoints_committed < 2:
        if machine.all_finished:
            print("run too short for two checkpoints; raise --scale or "
                  "lower --interval-us", file=sys.stderr)
            return 2
        machine.run(until=horizon)
        horizon += interval
    detect = machine.checkpointing.commit_times[2] + int(0.8 * interval)
    machine.run(until=detect)

    NodeLossFault(args.lost_node).apply(machine)
    result = RecoveryManager(machine).recover(detect_time=detect,
                                              lost_node=args.lost_node,
                                              target_epoch=1)
    mismatches = machine.verify_against_snapshot(result.target_epoch)
    tracer.close()

    events = read_trace(trace_path)
    print(trace_summary_table(events))
    print()

    # The cross-check: Figure 12's components, once from the live
    # RecoveryResult and once recomputed from the JSONL alone.
    from_trace = recovery_breakdown(events)
    live = dict(result.breakdown(),
                background_repair=result.phase4_background_ns)
    rows = []
    all_match = True
    for phase, live_ns in live.items():
        traced_ns = from_trace.get(phase)
        match = traced_ns == live_ns
        all_match &= match
        rows.append([phase, f"{live_ns / 1e3:.1f}",
                     f"{traced_ns / 1e3:.1f}" if traced_ns is not None
                     else "—", "ok" if match else "MISMATCH"])
    print(format_table(
        ["Phase", "RecoveryResult (us)", "From trace (us)", ""],
        rows, title=f"{args.app}: recovery breakdown, live vs "
                    f"recomputed from {trace_path}"))
    if profiler is not None:
        print()
        print(profile_table(profile_summary(profiler)))
    print(f"\ntrace: {tracer.events_emitted} events -> {trace_path}")
    if suite is not None:
        _write_ledger(args, args.app, "cp_parity",
                      dict(scale=args.scale, n_procs=n_procs,
                           interval_ns=interval,
                           machine_config=machine_config,
                           lost_node=args.lost_node,
                           **_tiny_revive_overrides(args)),
                      suite, tracer)
    if mismatches:
        print(f"VERIFICATION FAILED: {len(mismatches)} mismatching lines",
              file=sys.stderr)
        return 1
    if not all_match:
        print("TRACE MISMATCH: breakdown recomputed from the trace "
              "disagrees with RecoveryResult", file=sys.stderr)
        return 1
    print("verification: memory bit-exact, trace breakdown matches "
          "RecoveryResult")
    return 0


def cmd_report(args) -> int:
    """``repro report``: the dashboard, from traces + ledgers alone.

    Never touches a live machine — every number is recomputed from the
    JSONL events and ledger manifests (Figure 8 from ledgers, Figure 11
    log occupancy and Figure 12 recovery breakdown from events), the
    same computations ``tests/test_obs_report.py`` cross-checks
    bit-for-bit against simulator state.
    """
    from repro.obs.report import build_report, gather_runs, render_report

    try:
        runs = gather_runs(args.paths)
    except FileNotFoundError as exc:
        raise SystemExit(f"no trace at {exc}")
    if not runs:
        raise SystemExit("no traces found under "
                         + ", ".join(args.paths))
    report = build_report(runs)
    print(render_report(report))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"\nreport: {args.json}")
    return 0


def cmd_trace_lint(args) -> int:
    """``repro trace-lint``: schema-validate traces; exit 1 on problems."""
    from repro.obs import lint_file

    failures = 0
    for path in args.paths:
        problems = lint_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            events = read_trace(path)
            print(f"{path}: {len(events)} events, schema-clean")
    return 1 if failures else 0


def cmd_latency(args) -> int:
    """``repro latency``: percentile + attribution tables from spans.

    Traces come from any command run with ``--trace`` (or a sweep's
    ``--trace-dir``) under schema v2 with the ``span`` category
    enabled.  The report is recomputed from the events alone, and for
    a deterministic sweep it is byte-identical whether the traces were
    produced serially or in parallel.

    ``--cache-dir`` memoizes the computed report per trace, keyed by
    the trace content — re-running over unchanged traces is a lookup.
    """
    import json as json_mod

    from repro.obs.analysis import latency_report
    from repro.obs.report import gather_runs, render_latency

    try:
        runs = gather_runs(args.paths)
    except FileNotFoundError as exc:
        raise SystemExit(f"no trace at {exc}")
    if not runs:
        raise SystemExit("no traces found under " + ", ".join(args.paths))
    cache = None
    cache_dir = _cache_dir(args)
    if cache_dir is not None:
        from repro.harness.store import KIND_LATENCY, ResultStore, \
            content_key

        cache = ResultStore(cache_dir)
    reports = {}
    hits = misses = 0
    for run in runs:
        latency = None
        key = None
        if cache is not None:
            blob = json_mod.dumps(run["events"], sort_keys=True,
                                  separators=(",", ":")).encode("utf-8")
            key = content_key(blob)
            entry = cache.get(key)
            if entry is not None and entry.kind == KIND_LATENCY:
                latency = entry.payload["report"]
                hits += 1
        if latency is None:
            latency = latency_report(run["events"])
            if cache is not None:
                cache.put(key, KIND_LATENCY, {"report": latency})
                misses += 1
        reports[run["name"]] = latency
        if len(runs) > 1:
            print(f"== {run['name']} ==")
        print(render_latency(latency))
        if len(runs) > 1:
            print()
    if cache is not None:
        print(f"cache: {hits} hits, {misses} misses ({cache_dir})")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(reports, fh, indent=2, sort_keys=True)
        print(f"latency report: {args.json}")
    return 0


def cmd_export_trace(args) -> int:
    """``repro export-trace``: JSONL -> Chrome Trace Event JSON."""
    from repro.obs.export import write_chrome_trace

    try:
        events = read_trace(args.trace)
    except FileNotFoundError:
        raise SystemExit(f"no trace at {args.trace}")
    out = args.out
    if out is None:
        stem = args.trace[:-len(".jsonl")] \
            if args.trace.endswith(".jsonl") else args.trace
        out = stem + ".chrome.json"
    slices = write_chrome_trace(events, out,
                                include_instants=not args.spans_only)
    print(f"{args.trace}: {len(events)} events -> {slices} trace "
          f"entries in {out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: host-time attribution of one run.

    Runs the workload with the attributing dispatch loop enabled and
    prints the component table (self vs cumulative), the per-actor
    attribution with the per-node batch/protocol-fallout tier split,
    and the reconciliation line: the fraction of ``machine.run`` wall
    time the per-actor timings account for.  ``--min-coverage`` turns
    that line into a gate (exit 1 below the threshold) so CI can pin
    the attribution honest.
    """
    import json as json_mod

    from repro.harness.reporting import actor_table
    from repro.obs import write_profile_counter_trace
    from repro.obs.telemetry import (
        actor_coverage,
        emit_profile_events,
        fallout_share,
        flamegraph_lines,
    )

    interval = int(args.interval_us * 1000)
    machine_config, n_procs = _machine_setup(args)
    profiler = Profiler()
    overrides = (_tiny_revive_overrides(args)
                 if args.variant != "baseline" else {})
    result = run_app(args.app, args.variant, scale=args.scale,
                     interval_ns=interval, machine_config=machine_config,
                     n_procs=n_procs, profiler=profiler, **overrides)
    profile = result.profile
    display = profile
    if args.top is not None:
        hottest = sorted(profile["actors"].items(),
                         key=lambda kv: kv[1]["seconds"],
                         reverse=True)[:args.top]
        display = dict(profile, actors=dict(hottest))
    print(profile_table(profile))
    print()
    print(actor_table(display))
    coverage = actor_coverage(profile)
    share = fallout_share(profile)
    print(f"\nattribution: {100 * coverage:.1f}% of machine.run wall "
          f"time attributed to {len(profile['actors'])} actors")
    print(f"tier split: {100 * share:.1f}% of actor time in scalar "
          f"protocol fallout (docs/PERFORMANCE.md §1b)")
    if args.flame:
        lines = flamegraph_lines(profile)
        with open(args.flame, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        print(f"flamegraph: {len(lines)} stacks -> {args.flame}")
    if args.perfetto:
        entries = write_profile_counter_trace(profile, args.perfetto)
        print(f"perfetto: {entries} counter entries -> {args.perfetto}")
    if args.trace:
        tracer = Tracer(JsonlFileSink(args.trace))
        emit_profile_events(tracer, profile)
        tracer.close()
        print(f"trace: {tracer.events_emitted} prof events -> "
              f"{args.trace}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json_mod.dump(profile, fh, indent=2, sort_keys=True)
        print(f"profile: {args.json}")
    if args.min_coverage is not None and coverage < args.min_coverage:
        print(f"ATTRIBUTION BELOW THRESHOLD: {coverage:.3f} < "
              f"{args.min_coverage}", file=sys.stderr)
        return 1
    return 0


def cmd_diff(args) -> int:
    """``repro diff``: where did two runs stop being the same run?

    Compares the digest chains of two ``repro run --digest`` files.
    Identical chains exit 0; otherwise the first divergent checkpoint
    window and component are named and the exit status is 1.
    ``--bisect`` then re-simulates run A to the last-agreeing commit,
    forks both specs from that shared image, and replays the divergent
    window with per-event digesting until the first event whose
    machine digest differs — the determinism-observatory workflow
    documented in docs/OBSERVABILITY.md.
    """
    from repro.obs.diff import (
        bisect_divergence,
        diff_run_digests,
        read_run_digest,
    )

    try:
        doc_a = read_run_digest(args.run_a)
        doc_b = read_run_digest(args.run_b)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot read digest file: {exc}")
    divergence = diff_run_digests(doc_a, doc_b)
    windows_a = doc_a["chain"]["windows"]
    if divergence is None:
        tip = windows_a[-1]["machine"] if windows_a else "genesis"
        print(f"identical: {len(windows_a)} windows, tip {tip[:12]}")
        return 0
    component = divergence["component"] or "(chain length)"
    print(f"divergent: first at window {divergence['window']} "
          f"(epoch {divergence['epoch']}), component {component}")
    print(f"  A: {(divergence['a'] or '—')[:16]}  "
          f"B: {(divergence['b'] or '—')[:16]}")
    if args.bisect:
        report = bisect_divergence(doc_a, doc_b, divergence,
                                   image_path=args.image)
        event = report["event"]
        if event is None:
            print(f"bisect: {report.get('note', 'event not localised')}")
        else:
            lo, hi = event["store_range"]
            print(f"bisect: first divergent event {event['index']} at "
                  f"t={event['now']}ns, component "
                  f"{event['component'] or '(event count)'}, "
                  f"stores ({lo}, {hi}]")
            if report["image"]:
                print(f"frontier image: {report['image']}")
    return 1


def cmd_stats(args) -> int:
    """``repro stats``: live telemetry from a running service."""
    import json as json_mod

    from repro.serve import DEFAULT_HOST, DEFAULT_PORT, fetch_metrics, \
        submit

    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        if args.prometheus:
            sys.stdout.write(fetch_metrics(host=host, port=port))
            return 0
        status = 0
        for event in submit({"op": "stats"}, host=host, port=port):
            if args.json:
                print(json_mod.dumps(event, sort_keys=True))
                if event["name"] == "svc.error":
                    status = 1
                continue
            name = event.get("name")
            if name == "stats.heartbeat":
                print(f"beat {event['beat']}: "
                      f"{event['workers_busy']}/{event['workers']} "
                      f"workers busy, queue {event['queue_depth']}, "
                      f"{event['inflight']} in flight")
            elif name == "stats.snapshot":
                _print_stats_snapshot(event)
            elif name == "svc.error":
                print(f"error: {event['error']}", file=sys.stderr)
                status = 1
        return status
    except OSError as exc:
        raise SystemExit(f"cannot reach repro serve at {host}:{port} "
                         f"({exc}); start one with: repro serve")


def _print_stats_snapshot(event: dict) -> None:
    """Render one ``stats.snapshot`` metrics payload for humans."""
    metrics = event["metrics"]
    if metrics["counters"]:
        print(format_table(["Counter", "Value"],
                           sorted(metrics["counters"].items()),
                           title=f"Counters (beat {event['beat']})"))
    if metrics["gauges"]:
        print(format_table(
            ["Gauge", "Value", "Max"],
            [[name, info["value"], info["max"]]
             for name, info in sorted(metrics["gauges"].items())],
            title="Gauges"))
    if metrics["histograms"]:
        print(format_table(
            ["Histogram", "Count", "Mean", "p50", "p99", "Max"],
            [[name, s["count"], f"{s['mean']:.0f}", f"{s['p50']:.0f}",
              f"{s['p99']:.0f}", s["max"]]
             for name, s in sorted(metrics["histograms"].items())],
            title="Histograms (us)"))


def cmd_serve(args) -> int:
    """``repro serve``: the async simulation service (docs/SERVING.md).

    Binds a JSONL TCP server on ``--host:--port`` (``--port 0`` picks
    a free port; the banner line reports the bound address) and serves
    run/latency/sweep/report requests, deduped against the result
    store at ``--cache-dir``.  Runs until interrupted.
    """
    import asyncio

    from repro.serve import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        SimulationService,
        bound_port,
        start_server,
    )

    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    max_bytes = (int(args.max_cache_mb * 1024 * 1024)
                 if args.max_cache_mb is not None else None)
    service = SimulationService(cache_dir=_cache_dir(args),
                                workers=args.workers,
                                max_cache_bytes=max_bytes)

    async def _serve() -> None:
        server = await start_server(service, host=host, port=port)
        cache = _cache_dir(args) or "off"
        print(f"serving on {host}:{bound_port(server)} "
              f"(cache: {cache}, workers: {service.workers})", flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def cmd_submit(args) -> int:
    """``repro submit``: stream one request through a running service."""
    import json as json_mod

    from repro.serve import DEFAULT_HOST, DEFAULT_PORT, submit

    variants = None
    if args.variants:
        variants = [v.strip() for v in args.variants.split(",")
                    if v.strip()]
    request = {"op": args.op, "nodes": args.nodes, "scale": args.scale,
               "interval_us": args.interval_us,
               "no_cache": args.no_cache}
    if args.op in ("run", "latency", "campaign"):
        if len(args.apps) != 1:
            raise SystemExit(f"op {args.op!r} takes exactly one app")
        request["app"] = args.apps[0]
        if variants:
            request["variant"] = variants[0]
    else:
        request["apps"] = args.apps
        if variants:
            request["variants"] = variants

    host = args.host if args.host is not None else DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        events = submit(request, host=host, port=port)
        status = 0
        for event in events:
            if args.json:
                print(json_mod.dumps(event, sort_keys=True))
                if event["name"] == "svc.error":
                    status = 1
                continue
            status = max(status, _print_submit_event(event))
        return status
    except OSError as exc:
        raise SystemExit(f"cannot reach repro serve at {host}:{port} "
                         f"({exc}); start one with: repro serve")


def _print_submit_event(event: dict) -> int:
    """Render one ``svc.*`` event for humans; returns the exit status."""
    name = event.get("name")
    short = (event.get("key") or "")[:12]
    if name == "svc.accepted":
        print(f"accepted {event['op']} request {short}")
    elif name == "svc.cache_hit":
        print(f"cache hit {short}")
    elif name == "svc.cache_miss":
        print(f"cache miss {short}")
    elif name == "svc.scheduled":
        print(f"  scheduled {short}")
    elif name == "svc.coalesced":
        print(f"  coalesced onto in-flight run {short}")
    elif name == "svc.verdicts":
        healthy = all(v.get("healthy", True)
                      for v in event["verdicts"].values())
        print(f"  {event['app']} {event['variant']}: monitors "
              f"{'healthy' if healthy else 'UNHEALTHY'}")
    elif name == "svc.latency":
        classes = event["classes"]
        if classes:
            parts = [f"{cls} p99={summary.get('p99', 0) / 1e3:.1f}us"
                     for cls, summary in sorted(classes.items())]
            print(f"  latency: {', '.join(parts)}")
    elif name == "svc.result":
        result = event["result"]
        suffix = " (cached)" if event["cached"] else ""
        print(f"  {event['app']} {event['variant']}: "
              f"{result['execution_time_ns'] / 1e3:.1f}us, "
              f"{result['checkpoints']} checkpoints, "
              f"max log {result['max_log_bytes'] / 1024:.0f}KB{suffix}")
    elif name == "svc.report":
        for row in event["rows"]:
            overheads = ", ".join(
                f"{variant} {100 * value:+.1f}%"
                for variant, value in sorted(row.items())
                if variant not in ("app", "baseline_ns"))
            print(f"  {row['app']}: baseline "
                  f"{row['baseline_ns'] / 1e3:.1f}us; {overheads}")
    elif name == "snap.capture":
        print(f"  warm image {short}: {event['bytes'] / 1024:.0f}KB "
              f"captured at epoch {event['epoch']} "
              f"in {event['dur_ms']}ms")
    elif name == "snap.restore":
        print(f"  warm image {short}: {event['bytes'] / 1024:.0f}KB "
              f"from cache")
    elif name == "snap.fork":
        print(f"  forking {event['scenarios']} scenarios from {short}")
    elif name == "svc.campaign":
        for outcome in event["outcomes"]:
            lost = ("transient" if outcome["lost_node"] is None
                    else f"node {outcome['lost_node']} lost")
            print(f"  {lost}, detect {outcome['detect_fraction']:.2f}: "
                  f"lost work {outcome['lost_work_ns'] / 1e3:.0f}us, "
                  f"unavailable {outcome['unavailable_ns'] / 1e6:.1f}ms")
    elif name == "svc.timing":
        phases = event["phases"]
        print(f"  host time: {phases['total_ms']:.0f}ms total "
              f"(lookup {phases['cache_lookup_ms']:.1f}ms, queue "
              f"{phases['queue_wait_ms']:.1f}ms, execute "
              f"{phases['execute_ms']:.0f}ms)")
    elif name == "svc.done":
        print(f"done: {event['jobs']} jobs, {event['cached']} from cache")
    elif name == "svc.error":
        print(f"error: {event['error']}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = make_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "table3":
        return cmd_table3()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "trace-lint":
        return cmd_trace_lint(args)
    if args.command == "latency":
        return cmd_latency(args)
    if args.command == "export-trace":
        return cmd_export_trace(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "submit":
        return cmd_submit(args)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "stats":
        return cmd_stats(args)
    if args.command == "diff":
        return cmd_diff(args)
    assert args.command == "recover"
    return cmd_recover(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
