"""Columnar batch engine: the vectorized third execution tier.

The scalar fast path (``Processor._bind_fastpath``) already strips the
per-reference pipeline to bound locals, but it still walks one address
at a time.  This engine keeps each chunk's ``gaps``/``addrs``/
``writes`` columns as numpy arrays end-to-end and retires whole runs
of references with O(distinct-lines) work:

1. **Bulk translation** — unique virtual pages looked up against the
   page table in one pass; unmapped pages (first-touch fallout) mark
   their references impure.  Cached per chunk, keyed on the page-table
   generation and allocation count.
2. **L1 stack-distance precompute** — the tag filter is true LRU, so
   a reference hits iff fewer than ``assoc`` distinct same-set lines
   were touched since its previous touch (the classic stack
   property).  That depends only on the address stream, never on
   timing or coherence, so hit/miss flags and latency prefix sums are
   precomputed per chunk with numpy.  The filter's set dicts are
   *virtualized*: they are only materialized — via the LRU stack
   property, newest-``assoc`` distinct touches per set merged over the
   prior content — when a full-miss fallout runs, an external
   invalidation lands, or a snapshot looks (``TagFilter.sync_hook``).
   Any perturbation outside the modeled stream bumps
   ``TagFilter.epoch`` and the precompute is rebuilt.
3. **Purity classification** — unique line addresses of the whole
   chunk remainder peeked against the raw L2 sets once; a reference is
   *pure* iff its page is mapped, its line is L2-resident, and it is a
   read or a write to a MODIFIED/EXCLUSIVE line.  Pure references
   complete locally: they cannot send a directory transaction, evict
   an L2 line, or otherwise perturb a later lookup.  Everything else
   is a *fallout* reference.  The classification is cached across
   activations and revalidated with ``SetAssocCache.epoch``; the
   engine's own fills re-arm it (they repair the affected entries in
   place), so only external coherence traffic forces a rebuild.
4. **Deferred L2 order** — every pure reference (and every resident
   fallout) is an L2 hit whose only cache effect is an LRU refresh.
   Those refreshes are *deferred*: segment address runs append to a
   pending list, and ``SetAssocCache.sync_hook`` replays them — one
   pop/reinsert per distinct line, in global ascending-last-touch
   order — before anything reads or rewrites LRU order (a victim
   choice, a checkpoint's dirty-line walk, a snapshot).  A deferred
   touch of a line that was invalidated in the meantime is skipped,
   which preserves the relative order of every surviving line.

The chunk remainder is segmented at the fallout positions (the batch-
segmentation invariant, docs/PERFORMANCE.md): each maximal pure run is
applied in bulk, then the single fallout reference between runs
executes in stream order on live state.  Fallouts themselves split in
two: a *resident* fallout (upgrade write, or a ref whose cached
classification went conservatively stale) reads its L1 flag from the
precompute and defers its LRU touch like a pure reference — only the
directory transaction (if any) runs scalar; a *full-miss* fallout
materializes the tag filter and flushes the pending L2 order first,
because the fill's victim choice and double L1 touch must see real
state.  Applying a pure segment costs no per-reference work at all:

* **Timing** — the segment advances time by its gap prefix plus the
  precomputed L1 latency prefix; the quantum deadline is located with
  one ``searchsorted`` over the combined prefix.  The deadline is only
  ever applied *after* a reference executes (exactly like the scalar
  loop — a barrier release can jump time past the deadline, and the
  next reference must still execute in that activation).
* **Stores** — the k-th write in the segment carries store value
  ``counter + k``; only the last write per line survives, so values
  are reconstructed from the write-count column (small segments just
  replay writes in stream order).  A first write to an EXCLUSIVE line
  is a silent upgrade, read off the live line state.

Counter flushes and ``mem.batch`` events replicate the scalar fast
path, so all three tiers are bit-identical — pinned by
``tests/test_fastpath.py`` and ``tests/test_columnar.py`` across every
workload analog and ReVive variant.  A fallout that fills the L2 can
evict a victim line; the victim's classification entry is withdrawn
(its later references fall out to the scalar pipeline), which
preserves exactness because the scalar pipeline handles every case.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

import numpy as np

from repro.cache.cache import EXCLUSIVE, MODIFIED, SHARED, bulk_set_index

__all__ = ["bind_columnar", "timed_protocol"]


def timed_protocol(read, write, cell):
    """Wrap the protocol entry points with host-time fallout timers.

    ``cell`` is a mutable ``[seconds, calls]`` list (one per node,
    handed out by ``Profiler.fallout_cell``) mutated in place, so the
    instrumented hot loop performs no dict lookups.  Used by both
    batch tiers at closure-bind time when a machine profiler is
    installed; unprofiled binds keep the raw bound methods.
    """

    def timed_read(node, line, t):
        begin = perf_counter()
        done = read(node, line, t)
        cell[0] += perf_counter() - begin
        cell[1] += 1
        return done

    def timed_write(node, line, t, upgrade):
        begin = perf_counter()
        done = write(node, line, t, upgrade)
        cell[0] += perf_counter() - begin
        cell[1] += 1
        return done

    return timed_read, timed_write

#: Below this many writes a segment replays stores in stream order
#: instead of reconstructing last-writes with numpy.
_STORE_VECTOR_MIN = 16

#: Below this many references a precompute span simulates the tag
#: filter on dict copies instead of running the vectorized pass.
_SMALL_SPAN = 48


def bind_columnar(proc):
    """Compile the columnar batch closure for ``proc``.

    Captures the same machine invariants as the scalar fast path and
    returns ``None`` for geometries the inline indexing cannot handle
    (non-power-of-two line size), in which case the processor falls
    back a tier.  Binding installs both cache ``sync_hook``s;
    ``Processor.invalidate_fastpath`` flushes and removes them when
    the closure is dropped, and ``Processor.restore`` drops them
    without flushing (restored state is authoritative).
    """
    machine = proc.machine
    config = machine.config
    hierarchy = machine.nodes[proc.node_id].hierarchy
    l1, l2 = hierarchy.l1, hierarchy.l2
    l1_shift, l1_nsets, l1_groups = l1.index_params()
    l2_shift, l2_nsets, l2_groups = l2.index_params()
    if l1_shift is None or l2_shift is None:
        return None
    line_shift = l2_shift
    l1_sets = l1.raw_sets()
    l2_sets = l2.raw_sets()
    l1_assoc = l1.assoc
    l2_assoc = l2.assoc
    space = machine.addr_space
    page_get = space._page_table.get
    allocate = space._allocate
    in_page_mask = space._line_in_page_mask
    offset_bits = space._offset_bits
    proto_read = machine.protocol.read
    proto_write = machine.protocol.write
    # Host-time tier split: time the scalar protocol fallout calls into
    # the profiler's per-node cell (see Processor._bind_fastpath — same
    # bind-time resolution, zero cost when unprofiled).
    if machine.profiler is not None:
        proto_read, proto_write = timed_protocol(
            proto_read, proto_write,
            machine.profiler.fallout_cell(proc.node_id))
    write_value = hierarchy.write_value
    next_store = machine.next_store_value
    # Inlined store bumps must honor the test-only perturbation too
    # (see Processor._bind_fastpath) — tier invariance holds under
    # REPRO_PERTURB_STORE exactly because every tier flips the same
    # counter.
    perturb_store = machine.perturb_store
    l1_hit_ns = config.l1_hit_ns
    l2_hit_ns = config.l2_hit_ns
    quantum = config.batch_quantum_ns
    overlap = config.miss_overlap
    node_id = proc.node_id
    MOD, EXC, SHA = MODIFIED, EXCLUSIVE, SHARED
    tracer = machine.tracer
    trace_mem = tracer.enabled and (tracer.categories is None
                                    or "mem" in tracer.categories)
    emit = tracer.emit
    node_bytes = space._node_bytes
    home_lo = node_id * node_bytes
    home_hi = home_lo + node_bytes

    def chunk_columns():
        """Translation-dependent chunk vectors, cached per (chunk, table).

        A chunk is consumed over many activations; its line addresses
        only change when the page table does, so they are keyed on
        ``(chunk serial, table generation, allocations)``.  References
        on pages unmapped at cache time stay classified impure even
        after a fallout allocates the page (the fallout path
        re-translates them, so this is conservative, not stale); a
        later classification rebuild picks up the new mapping through
        the allocation count in the key.
        """
        key = (proc._chunk_serial, space.generation,
               space.first_touch_allocations)
        cached = proc._chunk_cols
        if cached is not None and cached[0] == key:
            return cached[1]
        vaddrs = proc._vaddrs
        n = len(vaddrs)
        vpages = vaddrs >> offset_bits
        upages, pinv = np.unique(vpages, return_inverse=True)
        bases = np.fromiter((page_get(p, -1) for p in upages.tolist()),
                            np.int64, len(upages))
        mapped = bases[pinv] >= 0
        # -1 marks unmapped lines: never a real line address, so the
        # distinct-line table cannot alias them with resident lines.
        line_addrs = np.where(mapped,
                              bases[pinv] + (vaddrs & in_page_mask), -1)
        g0 = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(proc._gaps, out=g0[1:])
        w0 = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(proc._writes, out=w0[1:])
        l1sid = bulk_set_index(line_addrs >> line_shift, l1_nsets,
                               l1_groups)
        # Distinct lines of the whole chunk, shared by every purity
        # classification over it.  Unmapped (-1) entries collapse to
        # one id that can never be resident.
        u_full, winv_full = np.unique(line_addrs, return_inverse=True)
        # Slots 5/6 are list mirrors for the L1 materialization scan
        # (plain-int list indexing beats numpy scalar reads
        # severalfold), built lazily on the first sync that needs
        # them — steady-state activations never do.
        cols = [line_addrs, mapped, g0, w0, l1sid, None, None,
                u_full, winv_full]
        proc._chunk_cols = (key, cols)
        return cols

    def chunk_lists(cols):
        """The chunk's line-address/L1-set-id list mirrors, lazily."""
        lal = cols[5]
        if lal is None:
            lal = cols[5] = cols[0].tolist()
            cols[6] = cols[4].tolist()
        return lal, cols[6]

    # ---- virtualized L1 state (persists across activations) -------------
    # ``synced``: chunk position up to which the L1 set dicts reflect
    # the stream.  ``pre_*``: the current precompute span — ``pre_lc``/
    # ``pre_mc`` are zero-prefixed latency/miss prefix sums and
    # ``pre_miss`` the per-reference miss flags over chunk range
    # [pre_s, pre_e), valid while ``l1.epoch == pre_ep``.
    synced = 0
    syn_chunk = -1
    pre_s = pre_e = -1
    pre_lc = pre_mc = pre_miss = None
    pre_ep = -1

    # ---- deferred L2 order (persists across activations/chunks) ---------
    # Pending LRU refreshes as address-run views, replayed by
    # ``flush_pend`` before anything reads or rewrites LRU order.
    pend_runs = []

    # ---- cached purity classification (persists across activations) -----
    # One window per chunk remainder [win_lo, win_hi); valid while the
    # chunk serial matches and ``l2.epoch == win_ep``.  The engine's
    # own fills repair entries in place and re-arm ``win_ep``.
    win_serial = -1
    win_lo = win_hi = 0
    win_ep = -1
    w_uaddr = w_winv = w_okr = w_pure = w_imp = w_wwr = None
    w_wpos = w_wiv = None
    w_ulines = None
    w_nuid = 0

    def sync_to(pos, cols):
        """Materialize the L1 set dicts through chunk position ``pos``.

        By the LRU stack property each set's content after the pending
        touches is the newest ``assoc`` distinct lines touched (by last
        touch), padded with the most-recent prior content.  One
        backward scan collects exactly that, stopping early once every
        set is full.
        """
        nonlocal synced
        lo = synced
        if pos <= lo:
            return
        lal, sidl = chunk_lists(cols)
        filled = {}
        full_sets = 0
        for p in range(pos - 1, lo - 1, -1):
            a = lal[p]
            s = sidl[p]
            lst = filled.get(s)
            if lst is None:
                filled[s] = [a]
                if l1_assoc == 1:
                    full_sets += 1
                    if full_sets == l1_nsets:
                        break
            elif a not in lst and len(lst) < l1_assoc:
                lst.append(a)
                if len(lst) == l1_assoc:
                    full_sets += 1
                    if full_sets == l1_nsets:
                        break
        for s, lst in filled.items():
            d = l1_sets[s]
            if len(lst) < l1_assoc:
                for a in reversed(d):
                    if a not in lst:
                        lst.append(a)
                        if len(lst) >= l1_assoc:
                            break
            d.clear()
            for a in reversed(lst):
                d[a] = None
        synced = pos

    def _l1_hook():
        # External observer (snapshot, remote invalidation, a fill's
        # touch): fast-forward to the last published position.  During
        # an activation ``proc._index`` is stale — at most the synced
        # position, since full-miss fallouts sync eagerly — so this is
        # exact in both contexts.
        if proc._chunk_serial == syn_chunk:
            sync_to(proc._index, chunk_columns())

    l1.sync_hook = _l1_hook

    def flush_pend():
        # Replay the deferred LRU refreshes.  Every deferred touch was
        # an L2 hit, so each set's final order is untouched lines
        # first, then touched lines by last touch: dedup the reversed
        # concatenated stream (first occurrence there = last touch),
        # then pop/reinsert in ascending last-touch order.  Lines
        # invalidated since their touch are skipped, which keeps the
        # surviving lines' relative order exact.
        nonlocal pend_runs
        if not pend_runs:
            return
        runs = pend_runs
        pend_runs = []
        # Python dedup beats unique+argsort well into the hundreds of
        # pending touches (fixed numpy overhead ~15us per flush).
        if sum(len(r) for r in runs) <= 160:
            seen = {}
            for r in reversed(runs):
                for a in reversed(r.tolist()):
                    if a not in seen:
                        seen[a] = None
            for a in reversed(seen):
                line_no = a >> line_shift
                if l2_groups:
                    d2 = l2_sets[(line_no & 63)
                                 + (((((line_no >> 6) * 2654435761)
                                      >> 12) % l2_groups) << 6)]
                else:
                    d2 = l2_sets[line_no % l2_nsets]
                ln = d2.pop(a, None)
                if ln is not None:
                    d2[a] = ln
            return
        cat = runs[0] if len(runs) == 1 else np.concatenate(runs)
        u, idx = np.unique(cat[::-1], return_index=True)
        order = u[np.argsort(-idx)]
        sids = bulk_set_index(order >> line_shift, l2_nsets, l2_groups)
        for a, s in zip(order.tolist(), sids.tolist()):
            d2 = l2_sets[s]
            ln = d2.pop(a, None)
            if ln is not None:
                d2[a] = ln

    l2.sync_hook = flush_pend

    def build_pre(start, cols):
        """Precompute L1 latency/miss prefixes from ``start`` onwards.

        Covers through the next unmapped reference (its address — and
        thus the stream beyond it — is unknown until its first-touch
        fallout allocates the page).  Establishes ``synced == start``;
        the current dict content seeds the stack as a synthetic
        most-recent-first prefix, so initial residency falls out of
        the same stack-distance rule as re-references.
        """
        nonlocal pre_s, pre_e, pre_lc, pre_mc, pre_miss, pre_ep
        line_addrs, mapped, l1sid = cols[0], cols[1], cols[4]
        n = len(line_addrs)
        sync_to(start, cols)
        unm = np.flatnonzero(~mapped[start:])
        end = start + int(unm[0]) if len(unm) else n
        span = end - start
        if span <= _SMALL_SPAN:
            lal, sidl = chunk_lists(cols)
            miss_span = np.zeros(span, dtype=bool)
            copies = [dict(d) for d in l1_sets]
            for k in range(span):
                sd = copies[sidl[start + k]]
                a = lal[start + k]
                if a in sd:
                    del sd[a]
                else:
                    miss_span[k] = True
                    if len(sd) >= l1_assoc:
                        del sd[next(iter(sd))]
                sd[a] = None
        else:
            syn_la = []
            syn_sid = []
            for s, d in enumerate(l1_sets):
                if d:
                    syn_la.extend(d)
                    syn_sid.extend([s] * len(d))
            nsyn = len(syn_la)
            la_cat = np.concatenate(
                [np.asarray(syn_la, dtype=np.int64),
                 line_addrs[start:end]])
            # uint16 keys radix-sort ~5x faster than int64.
            sid_cat = np.concatenate(
                [np.asarray(syn_sid, dtype=np.int64),
                 l1sid[start:end]]).astype(np.uint16)
            order = np.argsort(sid_cat, kind="stable")
            xg = la_cat[order]
            sid_g = sid_cat[order]
            total = len(xg)
            # Consecutive duplicates within a set are guaranteed hits.
            dup = np.zeros(total, dtype=bool)
            if total > 1:
                dup[1:] = (xg[1:] == xg[:-1]) & (sid_g[1:] == sid_g[:-1])
            kd = ~dup
            yd = xg[kd]
            rows_orig = order[kd]
            sid_d = sid_g[kd]
            nd = len(yd)
            # Within-set position of each deduped element (set runs are
            # contiguous after the stable grouping sort).
            starts = np.zeros(nd, dtype=np.int64)
            if nd > 1:
                brk = np.flatnonzero(sid_d[1:] != sid_d[:-1]) + 1
                starts[brk] = brk
                np.maximum.accumulate(starts, out=starts)
            idx_in = np.arange(nd, dtype=np.int64) - starts
            # Previous occurrence of the same line (same line => same
            # set, so one global stable value sort suffices).
            s2o = np.argsort(yd, kind="stable")
            ys = yd[s2o]
            q_within = np.full(nd, -1, dtype=np.int64)
            if nd > 1:
                same = ys[1:] == ys[:-1]
                q_within[s2o[1:][same]] = idx_in[s2o[:-1][same]]
            gap = idx_in - q_within - 1
            # Stack property: hit iff a previous touch exists and fewer
            # than assoc distinct same-set lines were touched since.
            # gap < assoc bounds the distinct count from above; first
            # occurrences (initial residency included, thanks to the
            # synthetic prefix) are misses outright.
            miss_d = q_within < 0
            check = np.flatnonzero((q_within >= 0) & (gap >= l1_assoc))
            nchk = len(check)
            if nchk:
                # Scan the K deduped touches right before each check
                # row (all within the window while the offset is
                # <= gap, hence same set run).  Counting distinct
                # values among them resolves almost every row
                # vectorized: >= assoc distinct seen -> certain miss
                # (a longer window only adds distinct lines); window
                # fully covered (gap <= K) -> the count is exact, so
                # < assoc is a certain hit.  Only long windows whose
                # near tail repeats need the exact backward count.
                K = min(l1_assoc + 4, 12)
                gapc = gap[check]
                idxm = check[None, :] - np.arange(1, K + 1,
                                                  dtype=np.int64)[:, None]
                np.maximum(idxm, 0, out=idxm)
                win = yd[idxm]                       # (K, nchk)
                valid = (np.arange(1, K + 1)[:, None]
                         <= gapc[None, :])
                dup = np.zeros((K, nchk), dtype=bool)
                for o in range(1, K):
                    dup[o] = (win[o] == win[:o]).any(axis=0)
                distinct = (valid & ~dup).sum(axis=0)
                certain_miss = distinct >= l1_assoc
                miss_d[check[certain_miss]] = True
                residue = check[~certain_miss & (gapc > K)]
                if len(residue):
                    ydl = yd.tolist()
                    gapl = gap.tolist()
                    for r in residue.tolist():
                        bottom = r - gapl[r] - 1
                        cnt = 0
                        seen = []
                        j = r - 1
                        while j > bottom:
                            v = ydl[j]
                            if v not in seen:
                                cnt += 1
                                if cnt >= l1_assoc:
                                    miss_d[r] = True
                                    break
                                seen.append(v)
                            j -= 1
            miss_span = np.zeros(span, dtype=bool)
            real = rows_orig >= nsyn
            miss_span[rows_orig[real] - nsyn] = miss_d[real]
        lat = np.where(miss_span, l2_hit_ns, l1_hit_ns).astype(np.int64)
        pre_lc = np.zeros(span + 1, dtype=np.int64)
        np.cumsum(lat, out=pre_lc[1:])
        pre_mc = np.zeros(span + 1, dtype=np.int64)
        np.cumsum(miss_span, out=pre_mc[1:])
        pre_miss = miss_span
        pre_s, pre_e, pre_ep = start, end, l1.epoch

    def classify(i0, cols):
        """(Re)build the purity window over chunk remainder [i0, n).

        One L2 peek per distinct line; Line objects are cached in
        ``w_ulines`` and stay valid exactly as long as the epoch guard
        holds (no insert/invalidate/downgrade has run).
        """
        nonlocal win_serial, win_lo, win_hi, win_ep
        nonlocal w_uaddr, w_winv, w_okr, w_pure, w_imp, w_wwr
        nonlocal w_wpos, w_wiv, w_ulines, w_nuid
        mapped = cols[1]
        n = len(cols[0])
        w_wwr = proc._writes[i0:n]
        # Reuse the chunk-wide distinct-line table; ids referenced only
        # before i0 just cost an extra peek.
        w_uaddr = cols[7]
        w_winv = cols[8][i0:n]
        w_nuid = len(w_uaddr)
        ual = w_uaddr.tolist()
        sids = bulk_set_index(w_uaddr >> line_shift, l2_nsets,
                              l2_groups).tolist()
        w_ulines = [l2_sets[s].get(a) for s, a in zip(sids, ual)]
        # okr: pure as a read (L2-resident).  okw: pure as a write
        # (resident and M/E — writes to SHARED upgrade through the
        # directory).  Line -1 (unmapped) is never resident.
        w_okr = np.fromiter((ln is not None for ln in w_ulines),
                            bool, w_nuid)
        okw = np.fromiter(
            (ln is not None and ln.state != SHA for ln in w_ulines),
            bool, w_nuid)
        w_pure = mapped[i0:n] & np.where(w_wwr, okw[w_winv],
                                         w_okr[w_winv])
        w_imp = np.flatnonzero(~w_pure)
        # Write stream of the window, pre-gathered for seg_stores:
        # window positions of the writes and their distinct-line ids.
        w_wpos = np.flatnonzero(w_wwr)
        w_wiv = w_winv[w_wpos]
        win_serial = proc._chunk_serial
        win_lo, win_hi, win_ep = i0, n, l2.epoch

    def run_batch() -> Optional[int]:
        nonlocal synced, syn_chunk, pre_s, pre_e
        nonlocal win_serial, win_ep, w_pure, w_imp
        t = proc.time
        deadline = t + quantum
        refs = l1h = l1m = l2h = l2m = silent = remote = fills = 0

        def flush() -> None:
            nonlocal refs, l1h, l1m, l2h, l2m, silent, remote, fills
            if trace_mem and refs:
                emit(t, "mem", "mem.batch", node=node_id,
                     refs=refs, l1_hits=l1h + fills, l1_misses=l1m,
                     l2_hits=l2h, l2_misses=l2m, remote=remote)
            proc.mem_refs += refs
            l1.hits += l1h
            l1.misses += l1m
            l2.hits += l2h
            l2.misses += l2m
            hierarchy.silent_upgrades += silent
            refs = l1h = l1m = l2h = l2m = silent = remote = fills = 0

        while True:
            i0 = proc._index
            n = len(proc._vaddrs)
            if proc._chunk_serial != syn_chunk:
                # First sight of this chunk (or a restore rebuilt it):
                # the dicts are authoritative, the virtual stream
                # restarts here.
                syn_chunk = proc._chunk_serial
                synced = i0
                pre_s = pre_e = -1
                win_serial = -1
            if i0 >= n:
                if n:
                    sync_to(n, chunk_columns())
                flush()
                proc.time = t
                proc._index = i0
                outcome = proc._next_chunk()
                syn_chunk = proc._chunk_serial
                synced = 0
                pre_s = pre_e = -1
                win_serial = -1
                if outcome is not None:
                    return outcome if outcome >= 0 else None
                t = proc.time
                continue

            cols = chunk_columns()
            line_addrs, mapped, g0, w0 = cols[0], cols[1], cols[2], cols[3]
            if (win_serial != proc._chunk_serial or i0 < win_lo
                    or i0 >= win_hi or l2.epoch != win_ep):
                classify(i0, cols)

            def seg_stores(a, b):
                """Apply the stores of applied chunk range [a, b).

                The classify pass pre-gathered the window's write
                stream (``w_wpos``/``w_wiv``), so the segment's writes
                are one searchsorted slice of it.
                """
                nonlocal silent
                nw = int(w0[b]) - int(w0[a])
                if not nw:
                    return
                sc = machine._store_counter
                i = int(np.searchsorted(w_wpos, a - win_lo))
                j = i + nw
                if nw < _STORE_VECTOR_MIN:
                    # Stream order, every write applied; last wins.
                    for u in w_wiv[i:j].tolist():
                        ln = w_ulines[u]
                        if ln.state == EXC:
                            silent += 1
                        ln.state = MOD
                        sc += 1
                        ln.value = (sc if sc != perturb_store
                                    else sc + (1 << 32))
                else:
                    # Last write per line: k-th write in the segment
                    # carries value counter+k.  The first occurrence
                    # in the reversed stream is the last write; its
                    # 1-based ordinal is nw - reversed_index.  A
                    # perturbed non-last write is overwritten in the
                    # scalar tiers too, so flipping only the surviving
                    # value keeps the tiers identical.
                    duw, didxw = np.unique(w_wiv[i:j][::-1],
                                           return_index=True)
                    kth = nw - didxw
                    for u, k in zip(duw.tolist(), kth.tolist()):
                        ln = w_ulines[u]
                        if ln.state == EXC:
                            silent += 1
                        ln.state = MOD
                        value = sc + k
                        ln.value = (value if value != perturb_store
                                    else value + (1 << 32))
                    sc += nw
                machine._store_counter = sc

            def seg_exec(a, b, t):
                """Apply pure chunk range [a, b) on live state.

                Returns ``(t, applied_end, crossed)``; ``applied_end``
                trails ``b`` only when the deadline fell inside the
                segment.  No per-reference work: timing comes from the
                precomputed latency prefix, the deadline position from
                one ``searchsorted``, counters from the miss prefix,
                and the L2 LRU refreshes defer as one address-run view.
                """
                nonlocal refs, l1h, l1m, l2h
                if a < pre_s or b > pre_e or l1.epoch != pre_ep:
                    build_pre(a, cols)
                lc = pre_lc
                ps = pre_s
                full = int(g0[b] - g0[a]) + int(lc[b - ps] - lc[a - ps])
                if t + full < deadline:
                    e = b
                    t += full
                    crossed = False
                else:
                    # The first reference whose execution reaches the
                    # deadline still executes, then the batch ends.
                    cum = ((g0[a + 1:b + 1] - g0[a])
                           + (lc[a - ps + 1:b - ps + 1] - lc[a - ps]))
                    k = int(np.searchsorted(cum, deadline - t))
                    e = a + k + 1
                    t += int(cum[k])
                    crossed = True
                m = e - a
                mc = int(pre_mc[e - ps] - pre_mc[a - ps])
                refs += m
                l2h += m
                l1h += m - mc
                l1m += mc
                pend_runs.append(line_addrs[a:e])
                seg_stores(a, e)
                return t, e, crossed

            # ---- segment / fallout interleave -----------------------
            # The deadline is only ever applied right AFTER a
            # reference executes (exactly like the scalar loop): a
            # barrier release can jump ``t`` past the deadline, and
            # the next reference must still execute this activation.
            cur = i0
            ip = int(np.searchsorted(w_imp, cur - win_lo))
            while True:
                e_abs = ((win_lo + int(w_imp[ip]))
                         if ip < len(w_imp) else win_hi)
                if e_abs > cur:
                    t, cur, crossed = seg_exec(cur, e_abs, t)
                    if crossed or t >= deadline:
                        flush()
                        proc.time = t
                        proc._index = cur
                        return t
                if cur >= win_hi:
                    proc._index = cur
                    break        # chunk exhausted: advance via outer loop

                # ---- fallout: one impure reference ------------------
                t += int(g0[cur + 1] - g0[cur])
                vaddr = int(proc._vaddrs[cur])
                is_write = bool(w_wwr[cur - win_lo])
                refs += 1
                base = page_get(vaddr >> offset_bits)
                if base is None:
                    base = allocate(vaddr >> offset_bits, node_id)
                line_addr = base + (vaddr & in_page_mask)
                line_no = line_addr >> line_shift
                if l2_groups:
                    s2 = l2_sets[(line_no & 63)
                                 + (((((line_no >> 6) * 2654435761) >> 12)
                                     % l2_groups) << 6)]
                else:
                    s2 = l2_sets[line_no % l2_nsets]
                line = s2.get(line_addr)
                p = cur
                cur += 1
                if line is not None:
                    # Resident fallout (upgrade write, or a ref whose
                    # cached classification went conservatively
                    # stale): an L2 hit whose LRU touch defers like a
                    # pure reference's.  The L1 flag comes from the
                    # stream precompute — no dict materialization.
                    l2h += 1
                    if pre_s <= p < pre_e and l1.epoch == pre_ep:
                        l1_hit = not pre_miss[p - pre_s]
                    elif mapped[p]:
                        build_pre(p, cols)
                        l1_hit = not pre_miss[p - pre_s]
                    else:
                        # Translation newer than the cached columns:
                        # the stream model cannot see this reference,
                        # so probe the materialized dicts directly.
                        sync_to(p, cols)
                        if l1_groups:
                            s1 = l1_sets[
                                (line_no & 63)
                                + (((((line_no >> 6) * 2654435761) >> 12)
                                    % l1_groups) << 6)]
                        else:
                            s1 = l1_sets[line_no % l1_nsets]
                        if line_addr in s1:
                            del s1[line_addr]
                            s1[line_addr] = None
                            l1_hit = True
                        else:
                            if len(s1) >= l1_assoc:
                                del s1[next(iter(s1))]
                            s1[line_addr] = None
                            l1_hit = False
                        synced = cur
                    if l1_hit:
                        l1h += 1
                    else:
                        l1m += 1
                    if int(line_addrs[p]) == line_addr:
                        pend_runs.append(line_addrs[p:p + 1])
                    else:
                        pend_runs.append(
                            np.asarray([line_addr], dtype=np.int64))
                    if is_write:
                        state = line.state
                        if state == SHA:
                            if trace_mem and not home_lo <= line_addr \
                                    < home_hi:
                                remote += 1
                            proc.time = t
                            done = proto_write(node_id, line_addr, t,
                                               True)
                            t += int((done - t) / overlap)
                            write_value(line_addr, next_store())
                        else:
                            if state == EXC:
                                silent += 1
                            line.state = MOD
                            sc = machine._store_counter + 1
                            machine._store_counter = sc
                            line.value = (sc if sc != perturb_store
                                          else sc + (1 << 32))
                            t += l1_hit_ns if l1_hit else l2_hit_ns
                    else:
                        t += l1_hit_ns if l1_hit else l2_hit_ns
                    ip += 1
                else:
                    # Full miss: the exact scalar pipeline.  The fill's
                    # victim choice and double L1 touch must see real
                    # state, so materialize the tag filter and flush
                    # the deferred L2 order first.
                    sync_to(p, cols)
                    if l1_groups:
                        s1 = l1_sets[(line_no & 63)
                                     + (((((line_no >> 6) * 2654435761)
                                          >> 12) % l1_groups) << 6)]
                    else:
                        s1 = l1_sets[line_no % l1_nsets]
                    if line_addr in s1:
                        del s1[line_addr]
                        s1[line_addr] = None
                        l1h += 1
                    else:
                        l1m += 1
                        if len(s1) >= l1_assoc:
                            del s1[next(iter(s1))]
                        s1[line_addr] = None
                    synced = cur
                    flush_pend()
                    l2m += 1
                    # The fill below evicts the current LRU way when
                    # the set is full; note the victim now so its pure
                    # classification can be withdrawn after the call.
                    victim = (next(iter(s2))
                              if len(s2) >= l2_assoc else None)
                    if trace_mem:
                        fills += 1
                        if not home_lo <= line_addr < home_hi:
                            remote += 1
                    proc.time = t
                    if is_write:
                        done = proto_write(node_id, line_addr, t, False)
                    else:
                        done = proto_read(node_id, line_addr, t)
                    t += int((done - t) / overlap)
                    if is_write:
                        write_value(line_addr, next_store())
                    if victim is not None:
                        u = int(np.searchsorted(w_uaddr, victim))
                        if u < w_nuid and w_uaddr[u] == victim \
                                and w_okr[u]:
                            w_okr[u] = False
                            w_pure = w_pure & (w_winv != u)
                            w_imp = np.flatnonzero(~w_pure)
                    # The fill bumped the epoch; the withdrawal above
                    # is the matching in-place repair, so re-arm the
                    # window instead of rebuilding it.
                    win_ep = l2.epoch
                    ip = int(np.searchsorted(w_imp, cur - win_lo))
                if t >= deadline:
                    flush()
                    proc.time = t
                    proc._index = cur
                    return t

    return run_batch
