"""Processor model: a workload-driven memory-reference engine.

The paper's 6-issue dynamic superscalar core is abstracted into a
reference stream with inter-reference gaps (already scaled by IPC in
the workload generator).  Hits add the L1/L2 latency; misses block the
processor until the directory transaction completes — an in-order
approximation whose error is second-order for ReVive, because every
ReVive action is off the critical path by design (Table 1).

A processor is a simulator *actor*: each activation runs references
until the batch quantum expires (bounding the time skew between
processors, which is what keeps the busy-until contention model
honest) or until a miss/barrier yields a natural scheduling point.

Fast path (docs/PERFORMANCE.md): the reference loop is the
simulator's hottest code — every simulated memory reference passes
through it — so :meth:`Processor._run_batch` inlines the translation
and the L1/L2 probe into one bound-local loop over the raw cache-set
dicts, with hit/miss counters accumulated locally and flushed at
batch boundaries.  The original layered loop is retained verbatim as
:meth:`Processor._run_batch_reference`; the two are pinned
behaviourally identical (times, counters, LRU order) by
``tests/test_fastpath.py``, and ``REPRO_FASTPATH=0`` falls back to
the reference loop globally.

When a tracer with the ``mem`` category is installed, the fast path
additionally emits one ``mem.batch`` event per counter flush (per-batch
L1/L2 hit/miss and remote-home directory-transaction counts — see
docs/OBSERVABILITY.md).  The hook is resolved at closure-bind time, so
an untraced run pays nothing; the reference loop does not emit
``mem`` events (it exists to pin timing/counter behaviour, which the
batch events do not affect).

The same bind-time pattern powers the host-time tier split
(docs/OBSERVABILITY.md): with a machine profiler installed, the scalar
directory-protocol fallout calls are wrapped with ``perf_counter``
timers into per-node fallout cells, quantifying the
docs/PERFORMANCE.md §1b ceiling.  The reference loop stays
uninstrumented, exactly like it does for ``mem`` events.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.cache.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.cache.hierarchy import HIT, NEED_GETS, NEED_GETX, NEED_UPGRADE
from repro.cpu.columnar import bind_columnar, timed_protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine

#: Re-check period for a processor parked at a workload barrier.
BARRIER_POLL_NS = 500

#: Execution-tier switch (docs/PERFORMANCE.md).  ``REPRO_FASTPATH=0``
#: selects the layered reference loop everywhere; ``scalar`` (or the
#: older alias ``compiled``) stops at the inlined scalar fast path; any
#: other value — including the default ``1`` — enables the columnar
#: batch engine on top of it.
_TIER_ENV = os.environ.get("REPRO_FASTPATH", "1")
FASTPATH_DEFAULT = _TIER_ENV != "0"
COLUMNAR_DEFAULT = FASTPATH_DEFAULT and _TIER_ENV not in ("scalar",
                                                          "compiled")

_NO_GAPS = np.empty(0, dtype=np.int64)
_NO_ADDRS = np.empty(0, dtype=np.int64)
_NO_WRITES = np.empty(0, dtype=bool)


class Processor:
    """One node's processor, consuming a workload reference stream."""

    __slots__ = ("machine", "node_id", "time", "finished", "killed",
                 "finish_time", "mem_refs", "_stream", "_gaps", "_vaddrs",
                 "_writes", "_index", "_barrier_index", "_waiting_barrier",
                 "_chunks", "fastpath", "columnar", "_batch_fn",
                 "_columnar_fn", "_chunk_serial", "_lists_cache",
                 "_chunk_cols")

    def __init__(self, machine: "Machine", node_id: int,
                 stream: Iterator) -> None:
        self.machine = machine
        self.node_id = node_id
        self.time = 0
        self.finished = False
        self.killed = False
        self.finish_time: Optional[int] = None
        self.mem_refs = 0
        self._stream = stream
        #: The in-flight chunk's columns, kept as numpy arrays
        #: end-to-end (the columnar chunk contract, docs/PERFORMANCE.md).
        self._gaps = _NO_GAPS
        self._vaddrs = _NO_ADDRS
        self._writes = _NO_WRITES
        self._index = 0
        self._barrier_index = 0          # how many barriers passed
        self._waiting_barrier = False
        self._chunks = 0                 # stream chunks consumed so far
        #: Per-processor tier switches (tests flip them to compare):
        #: ``fastpath`` False selects the reference loop; ``columnar``
        #: picks between the batch engine and the scalar fast path.
        self.fastpath = FASTPATH_DEFAULT
        self.columnar = COLUMNAR_DEFAULT
        self._batch_fn = None
        self._columnar_fn = None
        self._chunk_serial = 0           # bumped whenever _gaps et al. change
        self._lists_cache = None         # scalar tiers' per-chunk list memo
        self._chunk_cols = None          # columnar engine's per-chunk cache

    # -- simulator actor protocol ------------------------------------------

    def __call__(self, now: int) -> Optional[int]:
        if self.finished:
            return None
        if now > self.time:
            self.time = now
        if self._waiting_barrier:
            release = self.machine.barrier_release_time(self._barrier_index)
            if release is None:
                return self.time + BARRIER_POLL_NS
            self._waiting_barrier = False
            self._barrier_index += 1
            if release > self.time:
                self.time = release
        return self._run_batch()

    def kill(self) -> None:
        """Node loss: the processor stops issuing references."""
        self.finished = True
        self.killed = True

    def invalidate_fastpath(self) -> None:
        """Drop the compiled batch closures so machine state is re-read.

        The closures capture machine invariants — including the tracer
        — at bind time; anything that changes them after a batch has
        run (``Machine.install_tracer``) must invalidate so the next
        batch re-binds against the new state.  The columnar engine may
        hold the L1 tag filter virtualized (a pending stream not yet
        applied to the set dicts); its sync hook materializes that
        state before the closure is dropped.
        """
        hier = self.machine.nodes[self.node_id].hierarchy
        for cache in (hier.l1, hier.l2):
            if cache.sync_hook is not None:
                cache.sync_hook()
                cache.sync_hook = None
        self._batch_fn = None
        self._columnar_fn = None
        self._chunk_cols = None

    # -- snapshot / restore (docs/SNAPSHOTS.md) ------------------------------

    def snapshot(self) -> dict:
        """Plain-data state: cursors and counters, not the stream itself.

        The workload stream is a pure deterministic generator, so its
        position is fully described by the number of chunks consumed —
        :meth:`restore` rebuilds the stream and fast-forwards it.  The
        compiled fast-path closure and its batch-local counters need no
        capture: counters are flushed to the shared statistics at every
        batch boundary, and snapshots are only taken between batches.
        """
        return {
            "time": self.time,
            "finished": self.finished,
            "killed": self.killed,
            "finish_time": self.finish_time,
            "mem_refs": self.mem_refs,
            "index": self._index,
            "barrier_index": self._barrier_index,
            "waiting_barrier": self._waiting_barrier,
            "chunks": self._chunks,
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`, replaying the workload stream.

        The machine's workload must already be attached.  The current
        reference chunk (if the snapshot rests mid-chunk) is re-derived
        from the replayed stream's final yield and resumes as columnar
        arrays plus the saved index — no Python-list materialization;
        barrier and marker chunks leave the reference arrays empty,
        exactly as :meth:`_next_chunk` does.
        """
        self.time = state["time"]
        self.finished = state["finished"]
        self.killed = state["killed"]
        self.finish_time = state["finish_time"]
        self.mem_refs = state["mem_refs"]
        self._index = state["index"]
        self._barrier_index = state["barrier_index"]
        self._waiting_barrier = state["waiting_barrier"]
        self._chunks = state["chunks"]
        self._batch_fn = None
        self._columnar_fn = None
        self._chunk_cols = None
        self._lists_cache = None
        self._chunk_serial += 1
        # Drop any columnar sync hooks WITHOUT firing them: the restored
        # cache state is authoritative and the closures' pending virtual
        # streams/reorders are stale by definition.
        hier = self.machine.nodes[self.node_id].hierarchy
        hier.l1.sync_hook = None
        hier.l2.sync_hook = None
        self._gaps, self._vaddrs, self._writes = (_NO_GAPS, _NO_ADDRS,
                                                  _NO_WRITES)
        if self.finished:
            return
        stream, last = self.machine.workload.replay_stream(self.node_id,
                                                           self._chunks)
        self._stream = stream
        if last is not None and last[0] not in ("warmup_done", "barrier"):
            _tag, gaps, vaddrs, writes = last
            self._gaps = np.asarray(gaps, dtype=np.int64)
            self._vaddrs = np.asarray(vaddrs, dtype=np.int64)
            self._writes = np.asarray(writes, dtype=bool)

    # -- execution ---------------------------------------------------------------

    def _run_batch(self) -> Optional[int]:
        if not self.fastpath:
            return self._run_batch_reference()
        if self.columnar:
            col_fn = self._columnar_fn
            if col_fn is None:
                col_fn = bind_columnar(self)
                if col_fn is None:       # unsupported geometry
                    self.columnar = False
                else:
                    self._columnar_fn = col_fn
            if col_fn is not None:
                return col_fn()
        batch_fn = self._batch_fn
        if batch_fn is None:
            batch_fn = self._bind_fastpath()
            if batch_fn is None:         # unsupported geometry
                self.fastpath = False
                return self._run_batch_reference()
            self._batch_fn = batch_fn
        return batch_fn()

    def _chunk_lists(self) -> tuple:
        """The in-flight chunk as plain Python lists, memoized per chunk.

        The scalar tiers iterate references one at a time, where list
        indexing is several times faster than numpy scalar indexing —
        and plain ints keep ``self.time`` JSON-serializable.  The chunk
        columns themselves stay numpy (the columnar contract); this
        memo is derived state, invalidated by ``_chunk_serial``.
        """
        cached = self._lists_cache
        serial = self._chunk_serial
        if cached is not None and cached[0] == serial:
            return cached[1]
        gaps, vaddrs, writes = self._gaps, self._vaddrs, self._writes
        lists = (gaps.tolist() if hasattr(gaps, "tolist") else list(gaps),
                 vaddrs.tolist() if hasattr(vaddrs, "tolist")
                 else list(vaddrs),
                 writes.tolist() if hasattr(writes, "tolist")
                 else list(writes))
        self._lists_cache = (serial, lists)
        return lists

    def _bind_fastpath(self):
        """Compile the inlined reference pipeline for this processor.

        Every invariant of the machine (cache-set dicts, page table,
        index parameters, latencies) is captured once in closure cells,
        so the per-reference loop runs on locals only.  Returns ``None``
        when the geometry rules out inline indexing (non-power-of-two
        line size), in which case the reference loop is used.
        """
        machine = self.machine
        config = machine.config
        hierarchy = machine.nodes[self.node_id].hierarchy
        l1, l2 = hierarchy.l1, hierarchy.l2
        l1_shift, l1_nsets, l1_groups = l1.index_params()
        l2_shift, l2_nsets, l2_groups = l2.index_params()
        if l1_shift is None or l2_shift is None:
            return None
        # l1 and l2 share the line size, hence one line-number shift.
        line_shift = l2_shift
        l1_sets = l1.raw_sets()
        l2_sets = l2.raw_sets()
        l1_assoc = l1.assoc
        space = machine.addr_space
        page_get = space._page_table.get
        allocate = space._allocate
        in_page_mask = space._line_in_page_mask
        offset_bits = space._offset_bits
        proto_read = machine.protocol.read
        proto_write = machine.protocol.write
        # Host-time tier split (docs/OBSERVABILITY.md): with a profiler
        # installed, the directory-protocol fallout calls are bracketed
        # by perf_counter reads into the profiler's per-node fallout
        # cell.  Resolved at bind time like the tracer hook, so an
        # unprofiled run keeps the raw bound methods and pays nothing;
        # Machine.install_profiler invalidates the closure to re-bind.
        if machine.profiler is not None:
            proto_read, proto_write = timed_protocol(
                proto_read, proto_write,
                machine.profiler.fallout_cell(self.node_id))
        write_value = hierarchy.write_value
        next_store = machine.next_store_value
        # The inlined store-counter bumps below must honor the
        # test-only perturbation exactly like next_store_value does,
        # or the three tiers would disagree under REPRO_PERTURB_STORE.
        perturb_store = machine.perturb_store
        l1_hit_ns = config.l1_hit_ns
        l2_hit_ns = config.l2_hit_ns
        quantum = config.batch_quantum_ns
        overlap = config.miss_overlap
        node_id = self.node_id
        MOD, EXC, SHA = MODIFIED, EXCLUSIVE, SHARED
        # The mem-category hook is resolved once at bind time: when the
        # tracer is off (or filters out "mem"), trace_mem is a plain
        # False and the loop below never touches tracing state at all —
        # the zero-cost-when-off guarantee the throughput benchmark
        # pins.  Machine.install_tracer invalidates the closure so a
        # later-installed tracer re-binds with trace_mem recomputed.
        tracer = machine.tracer
        trace_mem = tracer.enabled and (tracer.categories is None
                                        or "mem" in tracer.categories)
        emit = tracer.emit
        node_bytes = space._node_bytes
        home_lo = node_id * node_bytes
        home_hi = home_lo + node_bytes

        def run_batch() -> Optional[int]:
            t = self.time
            deadline = t + quantum
            gaps, vaddrs, writes = self._chunk_lists()
            i = self._index
            n = len(vaddrs)
            refs = l1h = l1m = l2h = l2m = silent = remote = fills = 0
            while True:
                if i >= n:
                    # Flush local counters and state before the stream
                    # advances: _next_chunk may cross the warmup marker,
                    # which resets every statistic machine-wide.
                    if trace_mem and refs:
                        emit(t, "mem", "mem.batch", node=node_id,
                             refs=refs, l1_hits=l1h + fills, l1_misses=l1m,
                             l2_hits=l2h, l2_misses=l2m, remote=remote)
                    self.mem_refs += refs
                    l1.hits += l1h
                    l1.misses += l1m
                    l2.hits += l2h
                    l2.misses += l2m
                    hierarchy.silent_upgrades += silent
                    refs = l1h = l1m = l2h = l2m = silent = remote = \
                        fills = 0
                    self.time = t
                    self._index = i
                    outcome = self._next_chunk()
                    if outcome is not None:
                        return outcome if outcome >= 0 else None
                    t = self.time
                    gaps, vaddrs, writes = self._chunk_lists()
                    i = self._index
                    n = len(vaddrs)
                    continue
                t += gaps[i]
                vaddr = vaddrs[i]
                is_write = writes[i]
                i += 1
                refs += 1

                # Translate (first-touch allocation on the rare path).
                base = page_get(vaddr >> offset_bits)
                if base is None:
                    base = allocate(vaddr >> offset_bits, node_id)
                line_addr = base + (vaddr & in_page_mask)

                # L2 lookup with LRU refresh (== SetAssocCache.lookup).
                line_no = line_addr >> line_shift
                if l2_groups:
                    s2 = l2_sets[(line_no & 63)
                                 + (((((line_no >> 6) * 2654435761) >> 12)
                                     % l2_groups) << 6)]
                else:
                    s2 = l2_sets[line_no % l2_nsets]
                line = s2.pop(line_addr, None)
                if line is not None:
                    s2[line_addr] = line
                    l2h += 1
                else:
                    l2m += 1

                # L1 tag-filter touch (== TagFilter.touch).
                if l1_groups:
                    s1 = l1_sets[(line_no & 63)
                                 + (((((line_no >> 6) * 2654435761) >> 12)
                                     % l1_groups) << 6)]
                else:
                    s1 = l1_sets[line_no % l1_nsets]
                if line_addr in s1:
                    del s1[line_addr]
                    s1[line_addr] = None
                    l1h += 1
                    l1_hit = True
                else:
                    l1m += 1
                    if len(s1) >= l1_assoc:
                        del s1[next(iter(s1))]
                    s1[line_addr] = None
                    l1_hit = False

                if line is not None:
                    if is_write:
                        state = line.state
                        if state == SHA:
                            # Upgrade through the directory.
                            if trace_mem and not home_lo <= line_addr \
                                    < home_hi:
                                remote += 1
                            self.time = t
                            done = proto_write(node_id, line_addr, t, True)
                            t += int((done - t) / overlap)
                            write_value(line_addr, next_store())
                        else:
                            if state == EXC:
                                silent += 1
                            line.state = MOD
                            sc = machine._store_counter + 1
                            machine._store_counter = sc
                            line.value = (sc if sc != perturb_store
                                          else sc + (1 << 32))
                            t += l1_hit_ns if l1_hit else l2_hit_ns
                    else:
                        t += l1_hit_ns if l1_hit else l2_hit_ns
                else:
                    # Full miss: directory transaction, overlap-scaled.
                    if trace_mem:
                        # The fill below touches the L1 filter directly
                        # (always a hit: the tag was just inserted), so
                        # the batch's L1 numbers mirror TagFilter.hits
                        # exactly — the flush arithmetic must not count
                        # it twice.
                        fills += 1
                        if not home_lo <= line_addr < home_hi:
                            remote += 1
                    self.time = t
                    if is_write:
                        done = proto_write(node_id, line_addr, t, False)
                    else:
                        done = proto_read(node_id, line_addr, t)
                    t += int((done - t) / overlap)
                    if is_write:
                        write_value(line_addr, next_store())

                if t >= deadline:
                    if trace_mem and refs:
                        emit(t, "mem", "mem.batch", node=node_id,
                             refs=refs, l1_hits=l1h + fills, l1_misses=l1m,
                             l2_hits=l2h, l2_misses=l2m, remote=remote)
                    self.mem_refs += refs
                    l1.hits += l1h
                    l1.misses += l1m
                    l2.hits += l2h
                    l2.misses += l2m
                    hierarchy.silent_upgrades += silent
                    self.time = t
                    self._index = i
                    return t

        return run_batch

    def _run_batch_reference(self) -> Optional[int]:
        """The original layered loop; the fast path's behavioural oracle."""
        machine = self.machine
        config = machine.config
        hierarchy = machine.nodes[self.node_id].hierarchy
        protocol = machine.protocol
        translate = machine.addr_space.translate_line
        deadline = self.time + config.batch_quantum_ns
        overlap = config.miss_overlap
        gaps, vaddrs, writes = self._chunk_lists()

        while True:
            if self._index >= len(vaddrs):
                outcome = self._next_chunk()
                if outcome is not None:
                    return outcome if outcome >= 0 else None
                gaps, vaddrs, writes = self._chunk_lists()
                continue
            i = self._index
            self.time += gaps[i]
            line_addr = translate(vaddrs[i], self.node_id)
            is_write = writes[i]
            self._index = i + 1
            self.mem_refs += 1

            result = hierarchy.probe(line_addr, is_write)
            if result.need == HIT:
                self.time += (config.l1_hit_ns if result.l1_hit
                              else config.l2_hit_ns)
            else:
                if result.need == NEED_UPGRADE:
                    done = protocol.write(self.node_id, line_addr,
                                          self.time, upgrade=True)
                elif result.need == NEED_GETX:
                    done = protocol.write(self.node_id, line_addr,
                                          self.time, upgrade=False)
                else:
                    assert result.need == NEED_GETS
                    done = protocol.read(self.node_id, line_addr, self.time)
                # The OOO core overlaps misses; charge 1/overlap of the
                # transaction latency as architectural stall.
                self.time += int((done - self.time) / overlap)
            if is_write:
                hierarchy.write_value(line_addr,
                                      machine.next_store_value())
            if self.time >= deadline:
                return self.time

    def _next_chunk(self) -> Optional[int]:
        """Advance the stream.  Returns None to keep executing, a
        non-negative time to resched at, or -1 when the stream ends."""
        try:
            chunk = next(self._stream)
            self._chunks += 1
        except StopIteration:
            self.finished = True
            self.finish_time = self.time
            self.machine.note_processor_finished(self)
            return -1
        if chunk[0] == "warmup_done":
            # First processor past this marker resets runtime statistics,
            # so reported rates reflect steady state, not first-touch
            # compulsory misses (all processors cross it together,
            # straight after a barrier).
            self.machine.note_warmup_done()
            return None
        if chunk[0] == "barrier":
            release = self.machine.barrier_arrive(self._barrier_index,
                                                  self.node_id, self.time)
            self._gaps, self._vaddrs, self._writes = (_NO_GAPS, _NO_ADDRS,
                                                      _NO_WRITES)
            self._index = 0
            self._chunk_serial += 1
            if release is not None:
                self._barrier_index += 1
                self.time = max(self.time, release)
                return None
            self._waiting_barrier = True
            return self.time + BARRIER_POLL_NS
        _tag, gaps, vaddrs, writes = chunk
        # The chunk columns stay numpy arrays end-to-end (the columnar
        # contract): the batch engine consumes them directly, and the
        # scalar tiers materialize plain lists lazily via _chunk_lists.
        self._gaps = np.asarray(gaps, dtype=np.int64)
        self._vaddrs = np.asarray(vaddrs, dtype=np.int64)
        self._writes = np.asarray(writes, dtype=bool)
        self._index = 0
        self._chunk_serial += 1
        return None
