"""Processor model: a workload-driven memory-reference engine.

The paper's 6-issue dynamic superscalar core is abstracted into a
reference stream with inter-reference gaps (already scaled by IPC in
the workload generator).  Hits add the L1/L2 latency; misses block the
processor until the directory transaction completes — an in-order
approximation whose error is second-order for ReVive, because every
ReVive action is off the critical path by design (Table 1).

A processor is a simulator *actor*: each activation runs references
until the batch quantum expires (bounding the time skew between
processors, which is what keeps the busy-until contention model
honest) or until a miss/barrier yields a natural scheduling point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.cache.hierarchy import HIT, NEED_GETS, NEED_GETX, NEED_UPGRADE

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine

#: Re-check period for a processor parked at a workload barrier.
BARRIER_POLL_NS = 500


class Processor:
    """One node's processor, consuming a workload reference stream."""

    def __init__(self, machine: "Machine", node_id: int,
                 stream: Iterator) -> None:
        self.machine = machine
        self.node_id = node_id
        self.time = 0
        self.finished = False
        self.killed = False
        self.finish_time: Optional[int] = None
        self.mem_refs = 0
        self._stream = stream
        self._gaps: List[int] = []
        self._vaddrs: List[int] = []
        self._writes: List[bool] = []
        self._index = 0
        self._barrier_index = 0          # how many barriers passed
        self._waiting_barrier = False

    # -- simulator actor protocol ------------------------------------------

    def __call__(self, now: int) -> Optional[int]:
        if self.finished:
            return None
        if now > self.time:
            self.time = now
        if self._waiting_barrier:
            release = self.machine.barrier_release_time(self._barrier_index)
            if release is None:
                return self.time + BARRIER_POLL_NS
            self._waiting_barrier = False
            self._barrier_index += 1
            if release > self.time:
                self.time = release
        return self._run_batch()

    def kill(self) -> None:
        """Node loss: the processor stops issuing references."""
        self.finished = True
        self.killed = True

    # -- execution ---------------------------------------------------------------

    def _run_batch(self) -> Optional[int]:
        machine = self.machine
        config = machine.config
        hierarchy = machine.nodes[self.node_id].hierarchy
        protocol = machine.protocol
        translate = machine.addr_space.translate_line
        deadline = self.time + config.batch_quantum_ns
        overlap = config.miss_overlap

        while True:
            if self._index >= len(self._vaddrs):
                outcome = self._next_chunk()
                if outcome is not None:
                    return outcome if outcome >= 0 else None
                continue
            i = self._index
            self.time += self._gaps[i]
            line_addr = translate(self._vaddrs[i], self.node_id)
            is_write = self._writes[i]
            self._index = i + 1
            self.mem_refs += 1

            result = hierarchy.probe(line_addr, is_write)
            if result.need == HIT:
                self.time += (config.l1_hit_ns if result.l1_hit
                              else config.l2_hit_ns)
            else:
                if result.need == NEED_UPGRADE:
                    done = protocol.write(self.node_id, line_addr,
                                          self.time, upgrade=True)
                elif result.need == NEED_GETX:
                    done = protocol.write(self.node_id, line_addr,
                                          self.time, upgrade=False)
                else:
                    assert result.need == NEED_GETS
                    done = protocol.read(self.node_id, line_addr, self.time)
                # The OOO core overlaps misses; charge 1/overlap of the
                # transaction latency as architectural stall.
                self.time += int((done - self.time) / overlap)
            if is_write:
                hierarchy.write_value(line_addr,
                                      machine.next_store_value())
            if self.time >= deadline:
                return self.time

    def _next_chunk(self) -> Optional[int]:
        """Advance the stream.  Returns None to keep executing, a
        non-negative time to resched at, or -1 when the stream ends."""
        try:
            chunk = next(self._stream)
        except StopIteration:
            self.finished = True
            self.finish_time = self.time
            self.machine.note_processor_finished(self)
            return -1
        if chunk[0] == "warmup_done":
            # First processor past this marker resets runtime statistics,
            # so reported rates reflect steady state, not first-touch
            # compulsory misses (all processors cross it together,
            # straight after a barrier).
            self.machine.note_warmup_done()
            return None
        if chunk[0] == "barrier":
            release = self.machine.barrier_arrive(self._barrier_index,
                                                  self.node_id, self.time)
            self._gaps, self._vaddrs, self._writes = [], [], []
            self._index = 0
            if release is not None:
                self._barrier_index += 1
                self.time = max(self.time, release)
                return None
            self._waiting_barrier = True
            return self.time + BARRIER_POLL_NS
        _tag, gaps, vaddrs, writes = chunk
        # tolist() turns numpy arrays into plain ints/bools, which the
        # inner loop iterates several times faster.
        self._gaps = gaps.tolist() if hasattr(gaps, "tolist") else list(gaps)
        self._vaddrs = (vaddrs.tolist() if hasattr(vaddrs, "tolist")
                        else list(vaddrs))
        self._writes = (writes.tolist() if hasattr(writes, "tolist")
                        else list(writes))
        self._index = 0
        return None
