"""Processor timing model and per-processor workload execution."""

from repro.cpu.processor import Processor, BARRIER_POLL_NS

__all__ = ["Processor", "BARRIER_POLL_NS"]
