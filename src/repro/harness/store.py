"""Content-addressed result store: memoized simulation results on disk.

Every run's :class:`~repro.obs.monitor.RunLedger` stamps its
configuration with a sha256 digest over the *canonicalised* run
arguments, and a deterministic simulator makes that digest a complete
description of the output — two runs with the same digest produce
byte-identical results, manifests, and traces.  This module turns that
property into a cache: a :class:`ResultStore` keyed by
:func:`store_key` (the config digest folded with the trace-category
filter and the ledger/trace schema versions) holding each run's
:class:`~repro.harness.runner.RunResult`, its ledger manifest, and
optionally its full JSONL trace as an artifact.

Consumers (all documented in ``docs/SERVING.md``):

* :func:`repro.harness.parallel.run_sweep` — ``cache_dir=`` skips
  digest-identical sweep cells;
* :class:`repro.serve.SimulationService` — the async simulation
  service dedupes every request against the store;
* ``repro latency --cache-dir`` — memoizes span-latency reports keyed
  by trace content;
* ``repro.harness.perf`` — the hit-path latency benchmark gated in CI.

Storage contract:

* **Atomic writes.** An entry is staged in a private temp directory
  and published with one ``os.rename`` — readers never observe a
  partial entry, and concurrent writers racing on the same key resolve
  to one winner (the loser's staging directory is discarded; the
  content was identical anyway).
* **Self-verifying entries.** ``meta.json`` carries a sha256 checksum
  over the entry payload and every artifact; any mismatch, missing
  file, or JSON decode error makes :meth:`ResultStore.get` delete the
  entry and report a miss, so corruption degrades to recompute — never
  to a wrong answer.
* **Size-bounded LRU eviction.** With ``max_bytes`` set, each
  :meth:`~ResultStore.put` evicts least-recently-used entries until
  the store fits (the entry just written is always kept, even if it
  alone exceeds the cap).
* **Byte-identity.** :func:`manifest_bytes` serialises a cached
  manifest exactly as :meth:`RunLedger.write` does, so a cache hit's
  ledger file is byte-identical to the fresh run's —
  ``tests/test_result_store.py`` and ``tests/test_cached_sweep.py``
  pin this, and it is the acceptance oracle of ``docs/SERVING.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: Version of the on-disk entry layout.  Folded into every
#: :func:`store_key`, so bumping it orphans (rather than misreads)
#: entries written under an older layout.
STORE_VERSION = 1

#: Entry kind of a cached simulation run (result + manifest + trace).
KIND_RUN = "run"

#: Entry kind of a cached ``repro latency`` report.
KIND_LATENCY = "latency_report"

#: Entry kind of a warm machine image captured for a fault campaign.
KIND_SNAPSHOT = "snapshot"

#: Artifact name under which a run's JSONL trace is stored.
TRACE_ARTIFACT = "trace.jsonl"

#: Artifact name under which a pickled machine image is stored.
SNAPSHOT_ARTIFACT = "image.pkl"


def snapshot_key(app: str, variant: str, run_kwargs: Dict,
                 warm_checkpoints: int) -> str:
    """Store key of a warm campaign image.

    Folds the job's config digest with the warm-up depth and the
    machine-snapshot layout version
    (:data:`~repro.machine.snapshot.SNAPSHOT_VERSION`), so layout bumps
    orphan stale images exactly like :func:`store_key` orphans stale
    runs.
    """
    from repro.machine.snapshot import SNAPSHOT_VERSION

    inner = json.dumps(
        {"config_digest": job_digest(app, variant, run_kwargs),
         "warm_checkpoints": warm_checkpoints,
         "snapshot_version": SNAPSHOT_VERSION},
        sort_keys=True, separators=(",", ":"))
    return store_key(hashlib.sha256(inner.encode("utf-8")).hexdigest())


def job_digest(app: str, variant: str, run_kwargs: Dict,
               seed: Optional[int] = None) -> str:
    """The sha256 config digest of one (app, variant, kwargs) job.

    Exactly the digest a :class:`~repro.obs.monitor.RunLedger` for the
    same job would stamp into its manifest — the ledger is the oracle
    that makes cache hits provably equivalent to fresh runs.  ``seed``
    defaults to the workload's registered seed, mirroring the ledger
    construction in ``repro.harness.parallel._execute``.
    """
    from repro.obs.monitor import RunLedger
    from repro.workloads.splash2 import SPLASH2_SPECS

    if seed is None:
        spec = SPLASH2_SPECS.get(app)
        seed = spec.seed if spec is not None else None
    return RunLedger(app, variant, run_args=run_kwargs,
                     seed=seed).config_digest()


def store_key(config_digest: str,
              trace_categories: Optional[Sequence[str]] = None) -> str:
    """The store key of one cached run.

    Folds the config digest with the trace-category filter (a filtered
    trace is a different artifact than an unfiltered one) and with the
    ledger/trace-schema/store versions — so bumping any of those
    versions automatically invalidates every older entry instead of
    serving a stale layout.  The full contract is documented in
    ``docs/OBSERVABILITY.md`` ("The cache-key contract").
    """
    from repro.obs.monitor import LEDGER_VERSION
    from repro.obs.tracer import SCHEMA_VERSION

    blob = json.dumps(
        {"config_digest": config_digest,
         "trace_categories": (None if trace_categories is None
                              else sorted(trace_categories)),
         "ledger_version": LEDGER_VERSION,
         "schema_version": SCHEMA_VERSION,
         "store_version": STORE_VERSION},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def content_key(data: bytes) -> str:
    """Store key for content-addressed inputs (e.g. a trace file)."""
    inner = hashlib.sha256(data).hexdigest()
    return store_key(inner)


def manifest_bytes(manifest: Dict) -> bytes:
    """Serialise a ledger manifest exactly as ``RunLedger.write`` does.

    Sorted keys, two-space indent, trailing newline — a cached
    manifest written through this function is byte-identical to the
    file the fresh run wrote.
    """
    return (json.dumps(manifest, sort_keys=True, indent=2)
            + "\n").encode("utf-8")


def run_payload(result, manifest: Optional[Dict] = None) -> Dict:
    """The entry payload of a cached run.

    ``result`` is a :class:`~repro.harness.runner.RunResult`; its
    wall-clock ``profile`` is deliberately dropped — a cached result
    must be wall-clock-free, like the ledger manifest.
    """
    fields = dataclasses.asdict(result)
    fields["profile"] = None
    return {"result": fields, "manifest": manifest}


def result_from_payload(payload: Dict):
    """Rebuild the :class:`RunResult` stored in a run entry."""
    from repro.harness.runner import RunResult

    return RunResult(**payload["result"])


class StoreEntry:
    """One retrieved cache entry: payload dict plus named artifacts."""

    def __init__(self, key: str, kind: str, payload: Dict,
                 path: str, artifacts: Sequence[str]) -> None:
        self.key = key
        self.kind = kind
        self.payload = payload
        self.path = path
        self.artifacts = tuple(artifacts)

    def has_artifact(self, name: str) -> bool:
        """True when the entry carries the named artifact file."""
        return name in self.artifacts

    def read_artifact(self, name: str) -> bytes:
        """The raw bytes of one artifact (checksum already verified)."""
        with open(os.path.join(self.path, name), "rb") as handle:
            return handle.read()


class ResultStore:
    """Digest-keyed result store with atomic writes and LRU eviction.

    ``root`` is created on demand.  ``max_bytes=None`` disables
    eviction.  ``tracer`` (any :class:`~repro.obs.tracer.Tracer`)
    receives ``svc.cache_*`` events for every hit, miss, store,
    eviction, and corruption — wire a
    :class:`~repro.obs.monitor.CacheHealthMonitor` behind it for live
    cache health.  ``clock`` is the recency source for LRU (tests
    inject a fake).
    """

    _ENTRY_FILE = "entry.json"
    _META_FILE = "meta.json"

    def __init__(self, root: str, max_bytes: Optional[int] = None,
                 tracer=None, clock: Callable[[], float] = time.time) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.root = root
        self.max_bytes = max_bytes
        self.tracer = tracer
        self.clock = clock
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corruptions = 0
        self.races_lost = 0
        self._stage_seq = 0
        os.makedirs(os.path.join(root, "objects"), exist_ok=True)

    # -- layout ---------------------------------------------------------

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], key)

    def _stage_dir(self) -> str:
        self._stage_seq += 1
        return os.path.join(self.root, "tmp",
                            f"{os.getpid()}-{self._stage_seq}-"
                            f"{self.clock():.6f}")

    def _emit(self, name: str, **fields) -> None:
        if self.tracer is not None and self.tracer.enabled:
            # Service/cache events happen outside simulated time; the
            # schema fixes their ``ts`` at 0 (docs/OBSERVABILITY.md).
            self.tracer.emit(0, "svc", name, **fields)

    @staticmethod
    def _checksum(entry_bytes: bytes,
                  artifacts: Dict[str, bytes]) -> str:
        digest = hashlib.sha256(entry_bytes)
        for name in sorted(artifacts):
            digest.update(name.encode("utf-8"))
            digest.update(artifacts[name])
        return digest.hexdigest()

    # -- read path ------------------------------------------------------

    def get(self, key: str) -> Optional[StoreEntry]:
        """The entry under ``key``, or None on miss/corruption.

        A corrupted entry (missing file, bad JSON, checksum mismatch)
        is deleted and reported as a miss, so callers always fall back
        to recompute.
        """
        path = self._entry_dir(key)
        if not os.path.isdir(path):
            self.misses += 1
            self._emit("svc.cache_miss", key=key)
            return None
        try:
            entry = self._load(key, path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.corruptions += 1
            self.misses += 1
            self._emit("svc.cache_corrupt", key=key, reason=str(exc))
            shutil.rmtree(path, ignore_errors=True)
            return None
        self._touch(path)
        self.hits += 1
        self._emit("svc.cache_hit", key=key)
        return entry

    def _load(self, key: str, path: str) -> StoreEntry:
        with open(os.path.join(path, self._ENTRY_FILE), "rb") as handle:
            entry_bytes = handle.read()
        with open(os.path.join(path, self._META_FILE),
                  "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        artifact_names = [name for name in os.listdir(path)
                          if name not in (self._ENTRY_FILE, self._META_FILE)]
        artifacts = {}
        for name in artifact_names:
            with open(os.path.join(path, name), "rb") as handle:
                artifacts[name] = handle.read()
        if self._checksum(entry_bytes, artifacts) != meta["checksum"]:
            raise ValueError("checksum mismatch")
        entry = json.loads(entry_bytes)
        if entry["store_version"] != STORE_VERSION:
            raise ValueError(f"store version {entry['store_version']!r}")
        return StoreEntry(key, entry["kind"], entry["payload"], path,
                          sorted(artifact_names))

    def _touch(self, path: str) -> None:
        """Refresh the entry's LRU stamp (best-effort, atomic)."""
        meta_path = os.path.join(path, self._META_FILE)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            meta["last_access"] = self.clock()
            tmp = meta_path + f".touch-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(meta, handle)
            os.replace(tmp, meta_path)
        except OSError:
            pass

    # -- write path -----------------------------------------------------

    def put(self, key: str, kind: str, payload: Dict,
            artifacts: Optional[Dict[str, bytes]] = None) -> None:
        """Publish one entry atomically; evict if over the size cap.

        An existing entry under ``key`` is replaced (used to *upgrade*
        a result-only entry with a manifest and trace).  Losing a
        publish race to a concurrent writer is silently tolerated —
        same key means same content.
        """
        artifacts = dict(artifacts or {})
        for name in artifacts:
            if name in (self._ENTRY_FILE, self._META_FILE) or os.sep in name:
                raise ValueError(f"invalid artifact name {name!r}")
        entry_bytes = json.dumps(
            {"store_version": STORE_VERSION, "key": key, "kind": kind,
             "payload": payload},
            sort_keys=True, indent=2).encode("utf-8")
        stage = self._stage_dir()
        os.makedirs(stage, exist_ok=True)
        try:
            with open(os.path.join(stage, self._ENTRY_FILE), "wb") as handle:
                handle.write(entry_bytes)
            size = len(entry_bytes)
            for name, data in artifacts.items():
                with open(os.path.join(stage, name), "wb") as handle:
                    handle.write(data)
                size += len(data)
            meta = {"checksum": self._checksum(entry_bytes, artifacts),
                    "size_bytes": size, "last_access": self.clock()}
            with open(os.path.join(stage, self._META_FILE), "w",
                      encoding="utf-8") as handle:
                json.dump(meta, handle)

            final = self._entry_dir(key)
            os.makedirs(os.path.dirname(final), exist_ok=True)
            if os.path.isdir(final):
                trash = final + f".old-{os.getpid()}-{self._stage_seq}"
                try:
                    os.rename(final, trash)
                except OSError:
                    pass  # a racer already moved it
                else:
                    shutil.rmtree(trash, ignore_errors=True)
            try:
                os.rename(stage, final)
            except OSError:
                # A concurrent writer published the same key first;
                # its content is equivalent by construction.
                self.races_lost += 1
                shutil.rmtree(stage, ignore_errors=True)
                return
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        self.stores += 1
        self._emit("svc.cache_store", key=key, bytes=size)
        if self.max_bytes is not None:
            self._evict(keep=key)

    # -- eviction & introspection --------------------------------------

    def _scan(self) -> List[Tuple[float, str, int, str]]:
        """(last_access, key, size, path) for every readable entry."""
        rows = []
        objects = os.path.join(self.root, "objects")
        for shard in sorted(os.listdir(objects)):
            shard_path = os.path.join(objects, shard)
            if not os.path.isdir(shard_path):
                continue
            for key in sorted(os.listdir(shard_path)):
                path = os.path.join(shard_path, key)
                try:
                    with open(os.path.join(path, self._META_FILE),
                              "r", encoding="utf-8") as handle:
                        meta = json.load(handle)
                    rows.append((float(meta["last_access"]), key,
                                 int(meta["size_bytes"]), path))
                except (OSError, ValueError, KeyError):
                    # Unreadable metadata: treat as oldest (evict first).
                    rows.append((float("-inf"), key, 0, path))
        return rows

    def _evict(self, keep: str) -> None:
        rows = self._scan()
        total = sum(size for _, _, size, _ in rows)
        # Oldest first; ties break on key for determinism.
        for last_access, key, size, path in sorted(rows):
            if total <= self.max_bytes:
                break
            if key == keep:
                continue  # never evict the entry just published
            shutil.rmtree(path, ignore_errors=True)
            total -= size
            self.evictions += 1
            self._emit("svc.cache_evict", key=key, bytes=size)

    def keys(self) -> Iterator[str]:
        """Every key currently in the store (unordered scan)."""
        for _, key, _, _ in self._scan():
            yield key

    def total_bytes(self) -> int:
        """Sum of entry sizes currently on disk."""
        return sum(size for _, _, size, _ in self._scan())

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (hits + misses)."""
        return self.hits + self.misses

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for logs, ledgers, and the CLI."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "races_lost": self.races_lost,
        }
