"""Per-figure / per-table experiment drivers (Section 6 of the paper).

Each ``figN_*`` / ``tableN_*`` function runs the simulations behind one
exhibit of the paper's evaluation and returns structured rows; the
benchmark modules print them in the paper's format and EXPERIMENTS.md
records paper-vs-measured.  All drivers accept a ``scale`` factor so
quick smoke runs and full reproductions share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.availability import availability, scale_to_real_interval
from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager, RecoveryResult
from repro.harness.runner import (
    DEFAULT_INTERVAL_NS,
    VARIANTS,
    build_machine,
    run_app,
)
from repro.machine.config import MachineConfig
from repro.workloads.registry import APP_NAMES, get_workload, paper_reference


# ---------------------------------------------------------------------------
# Result-store memoization for the drivers
# ---------------------------------------------------------------------------

def _open_store(cache_dir: Optional[str]):
    """A :class:`ResultStore` rooted at ``cache_dir`` (None = no cache)."""
    if cache_dir is None:
        return None
    from repro.harness.store import ResultStore

    return ResultStore(cache_dir)


def _cached_run_app(cache, app: str, variant: str, **kwargs):
    """``run_app`` memoized through a result store.

    Keys come from the same ledger config digest the sweep executor
    uses, so a driver's baseline run and a later driver (or sweep) with
    identical arguments share one simulation.  With ``cache`` None this
    is exactly ``run_app``.
    """
    if cache is None:
        return run_app(app, variant, **kwargs)
    from repro.harness import store as result_store

    key = result_store.store_key(
        result_store.job_digest(app, variant, kwargs))
    entry = cache.get(key)
    if entry is not None and entry.kind == result_store.KIND_RUN:
        return result_store.result_from_payload(entry.payload)
    result = run_app(app, variant, **kwargs)
    cache.put(key, result_store.KIND_RUN, result_store.run_payload(result))
    return result


# ---------------------------------------------------------------------------
# Figure 8: performance overhead of error-free execution
# ---------------------------------------------------------------------------

def fig8_overhead(apps: Sequence[str] = None, scale: float = 1.0,
                  interval_ns: int = DEFAULT_INTERVAL_NS,
                  cache_dir: Optional[str] = None) -> List[Dict]:
    """Error-free overhead of the four ReVive variants vs baseline.

    ``cache_dir`` memoizes every cell through the result store — the
    per-app baseline (shared by all four variant comparisons, and by
    repeated invocations) is then simulated once, not once per call.
    """
    cache = _open_store(cache_dir)
    rows = []
    for app in apps or APP_NAMES:
        base = _cached_run_app(cache, app, "baseline", scale=scale)
        row = {"app": app, "baseline_ns": base.execution_time_ns}
        for variant in VARIANTS[1:]:
            result = _cached_run_app(cache, app, variant, scale=scale,
                                     interval_ns=interval_ns)
            row[variant] = result.overhead_vs(base)
        rows.append(row)
    return rows


def fig8_summary(rows: List[Dict]) -> Dict[str, float]:
    """Mean overhead per variant across applications."""
    out = {}
    for variant in VARIANTS[1:]:
        values = [r[variant] for r in rows if variant in r]
        out[variant] = sum(values) / len(values) if values else 0.0
    return out


# ---------------------------------------------------------------------------
# Figures 9 and 10: traffic breakdowns in the Cp configuration
# ---------------------------------------------------------------------------

def _traffic_rows(kind: str, apps: Sequence[str], scale: float,
                  interval_ns: int,
                  cache_dir: Optional[str] = None) -> List[Dict]:
    cache = _open_store(cache_dir)
    rows = []
    for app in apps or APP_NAMES:
        result = _cached_run_app(cache, app, "cp_parity", scale=scale,
                                 interval_ns=interval_ns)
        traffic = (result.network_traffic if kind == "network"
                   else result.memory_traffic)
        row = {"app": app, "total_bytes": sum(traffic.values())}
        row.update(traffic)
        rows.append(row)
    return rows


def fig9_network_traffic(apps: Sequence[str] = None, scale: float = 1.0,
                         interval_ns: int = DEFAULT_INTERVAL_NS,
                         cache_dir: Optional[str] = None
                         ) -> List[Dict]:
    """Network traffic split into RD/RDX, ExeWB, CkpWB, LOG, PAR.

    With ``cache_dir``, the per-app ``cp_parity`` run is shared with
    :func:`fig10_memory_traffic` and :func:`fig11_log_size`.
    """
    return _traffic_rows("network", apps, scale, interval_ns, cache_dir)


def fig10_memory_traffic(apps: Sequence[str] = None, scale: float = 1.0,
                         interval_ns: int = DEFAULT_INTERVAL_NS,
                         cache_dir: Optional[str] = None
                         ) -> List[Dict]:
    """Memory traffic split into the same five categories."""
    return _traffic_rows("memory", apps, scale, interval_ns, cache_dir)


# ---------------------------------------------------------------------------
# Figure 11: maximum log size
# ---------------------------------------------------------------------------

def fig11_log_size(apps: Sequence[str] = None, scale: float = 1.0,
                   interval_ns: int = DEFAULT_INTERVAL_NS,
                   cache_dir: Optional[str] = None) -> List[Dict]:
    """Per-application maximum log footprint under periodic checkpoints."""
    cache = _open_store(cache_dir)
    rows = []
    for app in apps or APP_NAMES:
        result = _cached_run_app(cache, app, "cp_parity", scale=scale,
                                 interval_ns=interval_ns)
        rows.append({
            "app": app,
            "max_log_bytes": result.max_log_bytes,
            "checkpoints": result.checkpoints,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 12 / Section 6.3: recovery overhead
# ---------------------------------------------------------------------------

@dataclass
class RecoveryExperiment:
    """Outcome of one fault-injection + recovery run."""

    app: str
    lost_node: Optional[int]
    result: RecoveryResult
    interval_ns: int

    @property
    def unavailable_ms_scaled(self) -> float:
        """Unavailability extrapolated to the paper's 100 ms interval.

        Lost work and the ReVive phases scale with the interval; the
        fixed 50 ms hardware-recovery cost does not.
        """
        scaled = scale_to_real_interval(
            self.result.lost_work_ns + self.result.revive_recovery_ns,
            self.interval_ns)
        return (scaled + self.result.phase1_ns) / 1e6


def fig12_recovery(apps: Sequence[str] = None, scale: float = 1.0,
                   interval_ns: int = DEFAULT_INTERVAL_NS,
                   lost_node: Optional[int] = 3,
                   machine_config: Optional[MachineConfig] = None
                   ) -> List[RecoveryExperiment]:
    """Worst-case recovery: error just before checkpoint 2, node lost.

    Mirrors Section 6.3: the recovery is triggered 0.8 of an interval
    after the second commit (so the worst-case work is lost), with the
    permanent loss of one node.  Pass ``lost_node=None`` for the
    memory-intact variant (Phases 2/4 skipped).
    """
    experiments = []
    for app in apps or APP_NAMES:
        machine = build_machine("cp_parity", machine_config,
                                interval_ns,
                                debug_snapshots=False)
        machine.attach_workload(get_workload(app, scale=scale))
        # Run just past the second commit, then to the detection time —
        # rolling back to checkpoint 1 requires its log epoch to still
        # be retained (keep_checkpoints = 2).
        horizon = 3 * interval_ns
        while machine.checkpointing.checkpoints_committed < 2:
            if machine.all_finished:
                raise RuntimeError(
                    f"{app}: fewer than 2 checkpoints in the whole run; "
                    f"shorten the interval or scale up the run")
            machine.run(until=horizon)
            horizon += interval_ns
        detect_time = (machine.checkpointing.commit_times[2]
                       + int(0.8 * interval_ns))
        machine.run(until=detect_time)
        if lost_node is not None:
            NodeLossFault(lost_node).apply(machine)
        else:
            TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(
            detect_time=detect_time, lost_node=lost_node, target_epoch=1)
        experiments.append(RecoveryExperiment(app, lost_node, result,
                                              interval_ns))
    return experiments


# ---------------------------------------------------------------------------
# Availability (Section 3.3.2)
# ---------------------------------------------------------------------------

def availability_analysis(unavailable_ms: float,
                          errors_per_day: float = 1.0) -> Dict[str, float]:
    """Availability at the given downtime per error."""
    ns_per_day = 86_400_000_000_000
    mtbe = ns_per_day / errors_per_day
    frac = availability(mtbe, unavailable_ms * 1e6)
    return {"availability": frac,
            "downtime_s_per_day": unavailable_ms / 1000 * errors_per_day}


# ---------------------------------------------------------------------------
# Table 1: event costs
# ---------------------------------------------------------------------------

#: The paper's Table 1 (7+1 parity): per event class, the number of
#: extra memory accesses, extra lines accessed, and extra messages.
TABLE1_PAPER = {
    "wb_logged": {"accesses": 3, "lines": 1, "messages": 2},
    "rdx_unlogged": {"accesses": 4, "lines": 2, "messages": 2},
    "wb_unlogged": {"accesses": 8, "lines": 3, "messages": 4},
}


def table1_event_costs(machine=None) -> Dict[str, Dict[str, float]]:
    """Measured per-event extra costs from a directed micro-workload.

    Returns, for each Table 1 event class, the average extra memory
    accesses / lines / messages per event, which should match the
    paper's numbers exactly by construction.
    """
    from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

    if machine is None:
        machine = build_machine("cp_parity", interval_ns=100_000)
        spec = SyntheticSpec(name="micro", n_procs=machine.config.n_nodes,
                             refs_per_proc=20_000, phases=4,
                             hot_lines=640, write_fraction=0.5,
                             shared_lines=256, shared_fraction=0.05,
                             sharing="uniform", seed=42)
        machine.attach_workload(SyntheticWorkload(spec))
        machine.run()
    counters = machine.stats.snapshot()
    out = {}
    for event in TABLE1_PAPER:
        events = counters.get(f"revive.{event}.events", 0)
        if not events:
            out[event] = {"events": 0, "accesses": 0.0, "lines": 0.0,
                          "messages": 0.0}
            continue
        out[event] = {
            "events": events,
            "accesses": counters[f"revive.{event}.extra_accesses"] / events,
            "lines": counters[f"revive.{event}.extra_lines"] / events,
            "messages": counters[f"revive.{event}.extra_messages"] / events,
        }
    return out


# ---------------------------------------------------------------------------
# Table 2: overhead matrix (working-set fit x checkpoint frequency)
# ---------------------------------------------------------------------------

def table2_overhead_matrix(scale: float = 1.0) -> List[Dict]:
    """Qualitative matrix of Section 3.3.1 / Table 2.

    Three synthetic working-set classes x two checkpoint frequencies;
    values are overheads vs the baseline machine.
    """
    from repro.workloads.synthetic import SyntheticSpec, SyntheticWorkload

    classes = {
        "does_not_fit_l2": SyntheticSpec(
            name="wsbig", refs_per_proc=int(60_000 * scale), phases=4,
            hot_lines=96, stream_lines=8192, stream_fraction=0.05,
            shared_lines=256, shared_fraction=0.02,
            write_fraction=0.5, seed=7),
        "fits_l2_mostly_dirty": SyntheticSpec(
            name="wsdirty", refs_per_proc=int(60_000 * scale), phases=4,
            hot_lines=320, stream_lines=0, stream_fraction=0.0,
            shared_lines=256, shared_fraction=0.02,
            write_fraction=0.8, seed=7),
        "fits_l2_mostly_clean": SyntheticSpec(
            name="wsclean", refs_per_proc=int(60_000 * scale), phases=4,
            hot_lines=320, stream_lines=0, stream_fraction=0.0,
            shared_lines=256, shared_fraction=0.02,
            write_fraction=0.05, seed=7),
    }
    # "High" frequency is the bench default; "low" is 4x sparser.
    frequencies = {"high": DEFAULT_INTERVAL_NS,
                   "low": DEFAULT_INTERVAL_NS * 4}
    rows = []
    for class_name, spec in classes.items():
        base_machine = build_machine("baseline")
        base_machine.attach_workload(SyntheticWorkload(spec))
        base_machine.run()
        base = base_machine.steady_execution_time
        row = {"working_set": class_name}
        for freq_name, interval in frequencies.items():
            machine = build_machine("cp_parity", interval_ns=interval)
            machine.attach_workload(SyntheticWorkload(spec))
            machine.run()
            row[freq_name] = machine.steady_execution_time / base - 1.0
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 3: architecture parameters
# ---------------------------------------------------------------------------

def table3_architecture(config: Optional[MachineConfig] = None) -> Dict:
    """The modelled machine's Table 3 row values."""
    config = config or MachineConfig.paper()
    return {
        "processors": config.n_nodes,
        "core_ghz": config.core_ghz,
        "l1": f"{config.l1_size // 1024}KB, {config.l1_hit_ns}ns hit, "
              f"{config.l1_assoc}-way, {config.line_size}-B line",
        "l2": f"{config.l2_size // 1024}KB, {config.l2_hit_ns}ns hit, "
              f"{config.l2_assoc}-way, {config.line_size}-B line",
        "memory": f"{config.mem_bytes_per_ns:.1f}B/ns bus, "
                  f"{config.mem_row_miss_ns}ns row miss",
        "dir_latency_ns": config.dir_latency_ns,
        "network": f"{config.torus_width}x{config.torus_height} torus, "
                   f"{config.net_base_ns}ns + {config.net_per_hop_ns}ns/hop",
        "local_mem_ns": config.net_latency(0, 0) + config.mem_row_miss_ns
                        + config.dir_latency_ns,
        "neighbor_mem_ns": config.net_latency(0, 1) * 2
                           + config.mem_row_miss_ns + config.dir_latency_ns,
    }


# ---------------------------------------------------------------------------
# Table 4: application characteristics
# ---------------------------------------------------------------------------

def table4_applications(apps: Sequence[str] = None,
                        scale: float = 1.0) -> List[Dict]:
    """Measured instruction counts and L2 miss rates vs the paper's."""
    rows = []
    for app in apps or APP_NAMES:
        result = run_app(app, "baseline", scale=scale)
        ref = paper_reference(app)
        rows.append({
            "app": app,
            "problem": ref["problem"],
            "instructions_M": result.instructions / 1e6,
            "paper_instructions_M": ref["instructions_M"],
            "l2_miss_pct": 100.0 * result.l2_miss_rate,
            "paper_l2_miss_pct": ref["l2_miss_pct"],
        })
    return rows
