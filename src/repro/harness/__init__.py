"""Experiment harness: single-run driver, per-figure/table experiment
drivers, and plain-text reporting."""

from repro.harness.runner import (
    RunResult,
    VARIANTS,
    build_machine,
    run_app,
    tiny_revive_overrides,
)
from repro.harness.reporting import format_table
from repro.harness.store import ResultStore, job_digest, store_key

__all__ = ["RunResult", "VARIANTS", "build_machine", "run_app",
           "tiny_revive_overrides", "format_table",
           "ResultStore", "job_digest", "store_key"]
