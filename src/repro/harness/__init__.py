"""Experiment harness: single-run driver, per-figure/table experiment
drivers, and plain-text reporting."""

from repro.harness.runner import (
    RunResult,
    VARIANTS,
    build_machine,
    run_app,
)
from repro.harness.reporting import format_table

__all__ = ["RunResult", "VARIANTS", "build_machine", "run_app",
           "format_table"]
