"""Single-simulation driver used by every benchmark and example.

The paper evaluates five system configurations (Section 6.1):

====================  =====================================================
``baseline``          no recovery support at all
``cp_parity``         ReVive, 7+1 parity, periodic checkpoints (Cp10ms)
``cpinf_parity``      ReVive, 7+1 parity, no periodic checkpoints (CpInf)
``cp_mirroring``      ReVive, mirroring, periodic checkpoints (Cp10msM)
``cpinf_mirroring``   ReVive, mirroring, no periodic checkpoints (CpInfM)
====================  =====================================================

The bench preset checkpoints every ``DEFAULT_INTERVAL_NS`` (the third
step of the scaling chain documented in DESIGN.md §2: the paper maps
100 ms on real 2 MB caches to 10 ms on its simulated 128 KB caches; we
map a further cache shrink onto a proportionally shorter interval).

Observability hook points (see docs/OBSERVABILITY.md for the schema):

* ``build_machine(..., tracer=, profiler=)`` threads a
  :class:`~repro.obs.tracer.Tracer` and/or
  :class:`~repro.obs.profiling.Profiler` into the assembled machine —
  the tracer reaches every emitting component (``sim.*``, ``coh.*``,
  ``log.*``, ``ckpt.*``, ``recovery.*`` events), the profiler times
  the ``machine.run`` / ``checkpoint`` / ``recovery`` components.
* ``run_app(..., tracer=, profiler=)`` does the same for a complete
  run and, when profiling, fills ``RunResult.profile`` with the
  wall-clock report rendered by
  :func:`repro.harness.reporting.profile_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import ReViveConfig
from repro.machine.config import MachineConfig
from repro.machine.system import Machine
from repro.obs.profiling import Profiler
from repro.obs.tracer import Tracer
from repro.workloads.registry import get_workload

#: Checkpoint interval of the bench preset (simulated ns).
DEFAULT_INTERVAL_NS = 250_000

#: Log region used by the bench harness.  Sized so that even Radix —
#: whose first-touch initialisation logs its entire 1 MB key array —
#: fits with margin, including the CpInf variants that never reclaim.
BENCH_LOG_BYTES = 2 * 1024 * 1024

VARIANTS = ("baseline", "cp_parity", "cpinf_parity", "cp_mirroring",
            "cpinf_mirroring")

#: Paper-facing labels (Figure 8's bar names).
VARIANT_LABELS = {
    "baseline": "Base",
    "cp_parity": "Cp10ms",
    "cpinf_parity": "CpInf",
    "cp_mirroring": "Cp10msM",
    "cpinf_mirroring": "CpInfM",
}


@dataclass
class RunResult:
    """Everything the figures need from one simulation."""

    app: str
    variant: str
    execution_time_ns: int
    total_refs: int
    l2_miss_rate: float
    network_traffic: Dict[str, int]
    memory_traffic: Dict[str, int]
    checkpoints: int
    max_log_bytes: int
    instructions: float
    counters: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock profile when the run was profiled, else None — the
    #: :func:`repro.obs.telemetry.profile_snapshot` shape:
    #: ``{"schema", "components": [[name, self_s, cum_s, calls], ...],
    #:    "actors", "fallout", "events", "events_per_sec",
    #:    "total_wall_seconds"}``.
    profile: Optional[Dict] = None
    #: Determinism-observatory digest chain when the run was digested
    #: (``run_app(digest=True)``), else None — the
    #: :meth:`repro.obs.digest.DigestChain.to_jsonable` shape:
    #: ``{"schema", "windows": [{"window", "epoch", "ts", "prev",
    #:    "components", "machine"}, ...]}``.  Unlike ``profile`` it is
    #: a pure function of deterministic simulation state, never of the
    #: host.
    digest: Optional[Dict] = None

    def overhead_vs(self, baseline: "RunResult") -> float:
        """Fractional slowdown relative to a baseline run."""
        if baseline.execution_time_ns <= 0:
            raise ValueError("baseline has no execution time")
        return (self.execution_time_ns / baseline.execution_time_ns) - 1.0


def tiny_revive_overrides(nodes: Optional[int]) -> Dict:
    """ReVive overrides scaled down for a ``MachineConfig.tiny`` machine.

    A tiny machine has fewer nodes than the paper's 7+1 parity group
    and far less memory pressure than the bench preset assumes, so the
    parity group shrinks to fit and the per-node log shrinks with it.
    Shared by the CLI (``--nodes``) and the simulation service so both
    produce the *same* run kwargs — and therefore the same config
    digests and cache keys — for the same request.  ``nodes=None``
    (full bench machine) means no overrides.
    """
    if nodes is None:
        return {}
    return {"parity_group_size": min(7, nodes - 1),
            "log_bytes_per_node": 64 * 1024}


def revive_config_for(variant: str,
                      interval_ns: int = DEFAULT_INTERVAL_NS,
                      **overrides) -> Optional[ReViveConfig]:
    """The ReVive configuration of a named variant (None for baseline)."""
    if variant == "baseline":
        return None
    group = 1 if variant.endswith("mirroring") else 7
    interval = None if variant.startswith("cpinf") else interval_ns
    kwargs = dict(parity_group_size=group, checkpoint_interval_ns=interval,
                  log_bytes_per_node=BENCH_LOG_BYTES)
    kwargs.update(overrides)
    return ReViveConfig(**kwargs)


def build_machine(variant: str = "cp_parity",
                  machine_config: Optional[MachineConfig] = None,
                  interval_ns: int = DEFAULT_INTERVAL_NS,
                  tracer: Optional[Tracer] = None,
                  profiler: Optional[Profiler] = None,
                  **revive_overrides) -> Machine:
    """Assemble a machine for one of the five evaluated variants.

    ``tracer`` installs a trace sink into every instrumented component
    (the machine emits ``ckpt.*``/``recovery.*``, its simulator
    ``sim.*``, directories ``coh.*``, and logs ``log.*`` events);
    ``profiler`` enables wall-clock profiling of the run loop.
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; "
                         f"choose from {VARIANTS}")
    config = machine_config or MachineConfig.bench()
    return Machine(config,
                   revive_config_for(variant, interval_ns,
                                     **revive_overrides),
                   tracer=tracer, profiler=profiler)


def run_app(app: str, variant: str = "baseline",
            machine_config: Optional[MachineConfig] = None,
            scale: float = 1.0, n_procs: int = 16,
            interval_ns: int = DEFAULT_INTERVAL_NS,
            until: Optional[int] = None,
            tracer: Optional[Tracer] = None,
            profiler: Optional[Profiler] = None,
            digest: bool = False,
            **revive_overrides) -> RunResult:
    """Run one application analog on one machine variant to completion.

    Pass ``tracer`` / ``profiler`` to observe the run; see
    docs/OBSERVABILITY.md for the event schema and the profile shape
    surfaced in ``RunResult.profile``.  ``digest=True`` additionally
    records the determinism-observatory chain — window 0 (the initial
    state) plus one window per checkpoint boundary — into
    ``RunResult.digest``; like profiles, digests are observations and
    never perturb the simulation.
    """
    machine = build_machine(variant, machine_config, interval_ns,
                            tracer=tracer, profiler=profiler,
                            **revive_overrides)
    workload = get_workload(app, scale=scale, n_procs=n_procs)
    machine.attach_workload(workload)
    if digest:
        from repro.obs.digest import DigestRecorder

        machine.install_digests(DigestRecorder(tracer))
        machine.record_digest(ts=0)
    machine.run(until=until)
    return collect_result(machine, app, variant)


def collect_result(machine: Machine, app: str, variant: str) -> RunResult:
    """Extract a :class:`RunResult` from a finished (or paused) machine."""
    hits = misses = 0
    for node in machine.nodes:
        hits += node.hierarchy.l2.hits
        misses += node.hierarchy.l2.misses
    lookups = hits + misses
    refs = machine.total_mem_refs()
    ipr = machine.workload.instructions_per_ref if machine.workload else 0.0
    return RunResult(
        app=app,
        variant=variant,
        execution_time_ns=machine.steady_execution_time,
        total_refs=refs,
        l2_miss_rate=(misses / lookups) if lookups else 0.0,
        network_traffic=machine.stats.network_traffic.as_dict(),
        memory_traffic=machine.stats.memory_traffic.as_dict(),
        checkpoints=(machine.checkpointing.checkpoints_committed
                     if machine.checkpointing else 0),
        max_log_bytes=(machine.revive.max_log_bytes()
                       if machine.revive else 0),
        instructions=refs * ipr,
        counters=machine.stats.snapshot(),
        profile=profile_summary(machine.profiler),
        digest=(machine.digests.chain.to_jsonable()
                if machine.digests is not None else None),
    )


def profile_summary(profiler: Optional[Profiler]) -> Optional[Dict]:
    """The ``RunResult.profile`` dict for a profiler (None when off).

    The shape is :func:`repro.obs.telemetry.profile_snapshot` —
    components with self/cumulative seconds, per-actor host-time
    attribution, and per-node tier fallout (docs/OBSERVABILITY.md).
    """
    if profiler is None:
        return None
    from repro.obs.telemetry import profile_snapshot

    return profile_snapshot(profiler)
