"""Parallel sweep executor: app × variant fan-out over worker processes.

The evaluation sweeps (Figure 8 overhead, traffic, log-size exhibits)
are embarrassingly parallel — every (app, variant) cell is one
independent simulation.  :func:`run_sweep` fans the cells out over a
``multiprocessing`` pool and merges the :class:`RunResult`s back in
job order, so the output is **bit-identical to a serial sweep no
matter the worker count or completion order**: each simulation is
deterministic given its arguments, and the merge ignores arrival
order.  ``tests/test_parallel_sweep.py`` pins serial == 1 == 2 == 4
workers.

Serial fallback: ``workers=1`` (or ``serial=True``) runs in-process
with zero multiprocessing machinery, and any pool-setup failure
(restricted environments without ``fork``/semaphores) degrades to the
same in-process path with a warning rather than an error.

Traced sweeps (``trace_dir=``): every worker runs its job under a
tracer wrapped in the standard monitor suite, writes
``<app>__<variant>.jsonl`` + ``<app>__<variant>.ledger.json`` into
``trace_dir``, and ships the ledger manifest back; the parent merges
the manifests **in canonical job order** into ``sweep.ledger.json``.
Ledgers carry no wall-clock values, so a traced parallel sweep's
files are byte-identical to a serial one's — pinned by
``tests/test_parallel_sweep.py``.  ``repro report trace_dir/`` renders
the dashboard from them.

Cached sweeps (``cache_dir=``): every job is first looked up in a
:class:`~repro.harness.store.ResultStore` keyed by its ledger config
digest (folded with the trace-category filter and schema versions, see
``docs/SERVING.md``).  Hits skip the simulation entirely and — for
traced sweeps — replay the stored trace and manifest bytes into
``trace_dir``, byte-identical to a fresh run; misses run normally and
are stored for next time.  ``tests/test_cached_sweep.py`` pins the
byte-identity.

Profiled sweeps (``profile=True``): every worker runs its job with a
:class:`~repro.obs.profiling.Profiler` attached, ships the per-job
profile snapshot back in ``RunResult.profile``, and the parent merges
them with :func:`~repro.obs.telemetry.merge_profiles` into
``SweepResult.profile`` — one coherent host-time attribution for the
whole multi-process sweep.  Profiles carry wall-clock values, so they
ride *outside* the deterministic artifacts: traced profiled sweeps
write ``sweep.profile.json`` next to (never inside) the byte-identical
``sweep.ledger.json``.

Used by ``repro sweep`` (CLI), the simulation service
(``repro.serve``), and the throughput harness
(``benchmarks/test_simulator_throughput.py``); see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import (
    BENCH_LOG_BYTES,
    DEFAULT_INTERVAL_NS,
    VARIANTS,
    RunResult,
    run_app,
)
from repro.workloads.registry import APP_NAMES


def sweep_jobs(apps: Optional[Sequence[str]] = None,
               variants: Optional[Sequence[str]] = None,
               *, scale: float = 1.0, n_procs: int = 16,
               interval_ns: int = DEFAULT_INTERVAL_NS,
               machine_config=None,
               **revive_overrides) -> List[Tuple[str, str, Dict]]:
    """The deterministic job list of a sweep: app-major, variant order.

    Each job is ``(app, variant, run_app_kwargs)``.  The list order is
    the canonical result order — parallel execution may *complete* jobs
    in any order, but results are always reported in this one.
    """
    apps = list(apps) if apps else list(APP_NAMES)
    variants = list(variants) if variants else list(VARIANTS)
    unknown = sorted(set(variants) - set(VARIANTS))
    if unknown:
        raise ValueError(f"unknown variants: {', '.join(unknown)}; "
                         f"choose from {VARIANTS}")
    jobs = []
    for app in apps:
        for variant in variants:
            kwargs = dict(scale=scale, n_procs=n_procs,
                          interval_ns=interval_ns,
                          machine_config=machine_config)
            if variant != "baseline":
                kwargs.update(revive_overrides)
            jobs.append((app, variant, kwargs))
    return jobs


def _execute(payload: Tuple[int, Tuple[str, str, Dict]]
             ) -> Tuple[int, RunResult, Optional[Dict]]:
    """Worker body: run one job; module-level so it pickles.

    With a ``_trace`` spec in the kwargs (injected by
    :func:`run_sweep` for traced sweeps), the run is observed by the
    standard monitor suite, its trace and ledger land in the sweep's
    trace directory, and the ledger manifest rides back with the
    result for the deterministic merge.
    """
    index, (app, variant, kwargs) = payload
    kwargs = dict(kwargs)
    trace_spec = kwargs.pop("_trace", None)
    digest = kwargs.pop("_digest", False)
    profiler = None
    if kwargs.pop("_profile", False):
        from repro.obs.profiling import Profiler

        profiler = Profiler()
    if trace_spec is None:
        return index, run_app(app, variant, profiler=profiler,
                              digest=digest, **kwargs), None

    from repro.obs.monitor import MonitorSuite, RunLedger, default_monitors
    from repro.obs.tracer import JsonlFileSink, Tracer
    from repro.workloads.splash2 import SPLASH2_SPECS

    capacity = None
    if variant != "baseline":
        capacity = kwargs.get("log_bytes_per_node", BENCH_LOG_BYTES)
    suite = MonitorSuite(
        default_monitors(interval_ns=kwargs.get("interval_ns"),
                         log_capacity_bytes=capacity),
        sink=JsonlFileSink(trace_spec["path"]))
    tracer = Tracer(suite, categories=trace_spec.get("categories"))
    result = run_app(app, variant, tracer=tracer, profiler=profiler,
                     digest=digest, **kwargs)
    tracer.close()

    spec = SPLASH2_SPECS.get(app)
    ledger = RunLedger(app, variant, run_args=kwargs,
                       seed=spec.seed if spec is not None else None)
    manifest = ledger.finalize(result=result, monitors=suite,
                               tracer=tracer)
    ledger.write(trace_spec["ledger_path"])
    return index, result, manifest


@dataclass
class SweepResult:
    """A sweep's merged results plus how they were obtained."""

    #: ``(app, variant) -> RunResult`` in canonical job order.
    results: Dict[Tuple[str, str], RunResult]
    #: Worker processes used (1 for a serial run).
    workers: int
    #: Wall-clock seconds for the whole sweep.
    wall_seconds: float
    #: False when the serial path ran (requested or fallback).
    parallel: bool
    #: Canonical (app, variant) order, for renderers.
    job_order: List[Tuple[str, str]] = field(default_factory=list)
    #: Per-job ledger manifests in job order (traced sweeps only).
    ledgers: Optional[List[Dict]] = None
    #: Where traces/ledgers were written (traced sweeps only).
    trace_dir: Optional[str] = None
    #: Jobs served from the result store (cached sweeps only).
    cache_hits: int = 0
    #: Jobs actually simulated when a result store was in use.
    cache_misses: int = 0
    #: The result store root (cached sweeps only).
    cache_dir: Optional[str] = None
    #: Merged host-time attribution across all simulated jobs
    #: (profiled sweeps only; see repro.obs.telemetry.merge_profiles).
    profile: Optional[Dict] = None
    #: Per-job determinism digest chains in job order (digested sweeps
    #: only; the repro.obs.digest.merge_sweep_digests shape, identical
    #: for serial and parallel executions of the same sweep).
    digest: Optional[Dict] = None

    def get(self, app: str, variant: str) -> RunResult:
        """The result of one sweep cell."""
        return self.results[(app, variant)]

    def apps(self) -> List[str]:
        """Applications present, in job order."""
        seen: List[str] = []
        for app, _variant in self.job_order:
            if app not in seen:
                seen.append(app)
        return seen

    def overhead_rows(self) -> List[Dict]:
        """Figure-8-shaped rows: per-app overhead of each variant.

        Requires the sweep to include ``baseline``; other variants are
        reported as fractional slowdown against it.
        """
        rows = []
        for app in self.apps():
            base = self.results.get((app, "baseline"))
            if base is None:
                raise ValueError(
                    "overhead_rows needs the 'baseline' variant in the "
                    "sweep")
            row = {"app": app, "baseline_ns": base.execution_time_ns}
            for (job_app, variant), result in self.results.items():
                if job_app == app and variant != "baseline":
                    row[variant] = result.overhead_vs(base)
            rows.append(row)
        return rows

    def to_jsonable(self) -> Dict:
        """A JSON-ready dict of the whole sweep (stable ordering)."""
        return {
            "workers": self.workers,
            "parallel": self.parallel,
            "wall_seconds": self.wall_seconds,
            "results": [asdict(self.results[key]) for key in self.job_order],
        }


def default_workers(n_jobs: int) -> int:
    """Auto worker count: one per job, capped at the CPU count."""
    return max(1, min(n_jobs, os.cpu_count() or 1))


def run_sweep(apps: Optional[Sequence[str]] = None,
              variants: Optional[Sequence[str]] = None,
              *, workers: Optional[int] = None, chunksize: int = 1,
              serial: bool = False, scale: float = 1.0, n_procs: int = 16,
              interval_ns: int = DEFAULT_INTERVAL_NS, machine_config=None,
              trace_dir: Optional[str] = None,
              trace_categories: Optional[Sequence[str]] = None,
              cache_dir: Optional[str] = None,
              cache_max_bytes: Optional[int] = None,
              profile: bool = False,
              digest: bool = False,
              **revive_overrides) -> SweepResult:
    """Run an app × variant sweep, fanning out over worker processes.

    ``workers=None`` picks :func:`default_workers`; ``workers=1`` or
    ``serial=True`` forces the in-process path.  ``chunksize`` batches
    jobs per worker dispatch (raise it when jobs are many and short).
    Results are merged in :func:`sweep_jobs` order, making the output
    independent of scheduling — see the module docstring.

    ``trace_dir`` turns on per-job tracing: each worker writes its
    job's JSONL trace and ledger manifest there (created if needed),
    optionally filtered to ``trace_categories``, and the merged
    ``sweep.ledger.json`` is written after the deterministic merge.

    ``cache_dir`` memoizes jobs through a
    :class:`~repro.harness.store.ResultStore` rooted there: cells whose
    config digest (and trace-category filter) match a stored entry are
    served from the store — traced hits replay the stored trace and
    ledger bytes into ``trace_dir`` — and only the misses are
    dispatched to workers.  A traced sweep hitting an entry stored
    without a trace re-runs that cell and upgrades the entry.
    ``cache_max_bytes`` bounds the store (LRU eviction on write).

    ``profile=True`` attaches a host-time profiler to every simulated
    job; per-job snapshots ride back in ``RunResult.profile`` and the
    deterministic merge of them lands in ``SweepResult.profile`` (and
    ``sweep.profile.json`` for traced sweeps).  Cache hits skipped the
    simulation, so they contribute no host time.

    ``digest=True`` records every job's determinism digest chain
    (docs/OBSERVABILITY.md, "Determinism observatory"): per-job chains
    ride back in ``RunResult.digest`` and the job-ordered merge lands
    in ``SweepResult.digest`` (and ``sweep.digest.json`` for traced
    sweeps).  Chains are pure functions of deterministic simulation
    state, so the merged document is identical for serial and parallel
    executions — the property the CI determinism gate compares.  Like
    ``profile``, the flag is injected after cache keys are computed:
    digesting is an observation, never configuration.  A digested
    sweep served from entries stored by an undigested sweep reports
    ``None`` chains for those cells (use a fresh ``cache_dir`` — or
    none — when comparing chains).
    """
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    jobs = sweep_jobs(apps, variants, scale=scale, n_procs=n_procs,
                      interval_ns=interval_ns, machine_config=machine_config,
                      **revive_overrides)
    cache = None
    job_keys: List[Optional[str]] = [None] * len(jobs)
    if cache_dir is not None:
        from repro.harness import store as result_store

        cache = result_store.ResultStore(cache_dir,
                                         max_bytes=cache_max_bytes)
        # Keys come from the kwargs exactly as the worker's RunLedger
        # will canonicalise them — computed before the ``_trace`` spec
        # (a file-path detail, not configuration) is injected.
        key_categories = (sorted(trace_categories)
                          if (trace_dir is not None
                              and trace_categories is not None) else None)
        job_keys = [
            result_store.store_key(
                result_store.job_digest(app, variant, kwargs),
                trace_categories=key_categories)
            for app, variant, kwargs in jobs]
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        categories = (list(trace_categories)
                      if trace_categories is not None else None)
        for app, variant, kwargs in jobs:
            base = os.path.join(trace_dir, f"{app}__{variant}")
            kwargs["_trace"] = {"path": base + ".jsonl",
                                "ledger_path": base + ".ledger.json",
                                "categories": categories}
    if profile:
        # Injected after cache keys are computed: profiling is a
        # host-side observation, not configuration, so it must never
        # change a job's digest.
        for _app, _variant, kwargs in jobs:
            kwargs["_profile"] = True
    if digest:
        # Same contract as _profile: an observation, not configuration
        # — injected after cache keys so a digested sweep hits the same
        # store entries as an undigested one.
        for _app, _variant, kwargs in jobs:
            kwargs["_digest"] = True

    start = time.perf_counter()
    indexed: Dict[int, Tuple[RunResult, Optional[Dict]]] = {}
    todo: List[Tuple[int, Tuple[str, str, Dict]]] = []
    for index, job in enumerate(jobs):
        entry = cache.get(job_keys[index]) if cache is not None else None
        if entry is not None and trace_dir is not None and (
                entry.payload.get("manifest") is None
                or not entry.has_artifact(result_store.TRACE_ARTIFACT)):
            # Stored by an untraced sweep: good enough for results,
            # but a traced sweep needs the trace + manifest too.
            # Re-run and upgrade the entry.
            entry = None
        if entry is None:
            todo.append((index, job))
            continue
        result = result_store.result_from_payload(entry.payload)
        manifest = entry.payload.get("manifest")
        if trace_dir is not None:
            app, variant, _kwargs = job
            base = os.path.join(trace_dir, f"{app}__{variant}")
            with open(base + ".jsonl", "wb") as handle:
                handle.write(
                    entry.read_artifact(result_store.TRACE_ARTIFACT))
            with open(base + ".ledger.json", "wb") as handle:
                handle.write(result_store.manifest_bytes(manifest))
        indexed[index] = (result, manifest)
    hits = len(jobs) - len(todo)

    n_workers = workers if workers is not None else default_workers(len(todo))
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    use_pool = not serial and n_workers > 1 and len(todo) > 1
    ran_parallel = False
    if use_pool:
        try:
            import multiprocessing as mp

            with mp.Pool(processes=n_workers) as pool:
                for index, result, manifest in pool.imap_unordered(
                        _execute, todo, chunksize=chunksize):
                    indexed[index] = (result, manifest)
            ran_parallel = True
        except (OSError, ImportError, PermissionError) as exc:
            warnings.warn(
                f"parallel sweep unavailable ({exc!r}); "
                f"falling back to serial execution", RuntimeWarning,
                stacklevel=2)
            for index in [i for i, _job in todo]:
                indexed.pop(index, None)
    if not ran_parallel:
        for index, result, manifest in map(_execute, todo):
            indexed[index] = (result, manifest)
        n_workers = 1

    if cache is not None:
        for index, (app, variant, _kwargs) in todo:
            result, manifest = indexed[index]
            artifacts = None
            if trace_dir is not None:
                base = os.path.join(trace_dir, f"{app}__{variant}")
                with open(base + ".jsonl", "rb") as handle:
                    artifacts = {result_store.TRACE_ARTIFACT: handle.read()}
            cache.put(job_keys[index], result_store.KIND_RUN,
                      result_store.run_payload(result, manifest),
                      artifacts=artifacts)

    job_order = [(app, variant) for app, variant, _kwargs in jobs]
    results = {job_order[index]: indexed[index][0]
               for index in range(len(jobs))}
    ledgers: Optional[List[Dict]] = None
    if trace_dir is not None:
        # Merge worker-side manifests in canonical job order —
        # completion order never leaks into the merged ledger, and the
        # manifests themselves carry no wall-clock values, so this file
        # is byte-identical however the sweep was scheduled.
        ledgers = [indexed[index][1] for index in range(len(jobs))]
        merged = {
            "ledger_version": ledgers[0]["ledger_version"] if ledgers
            else None,
            "schema_version": ledgers[0]["schema_version"] if ledgers
            else None,
            "jobs": ledgers,
        }
        with open(os.path.join(trace_dir, "sweep.ledger.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(merged, handle, sort_keys=True, indent=2)
            handle.write("\n")
    merged_profile = None
    if profile:
        from repro.obs.telemetry import merge_profiles

        merged_profile = merge_profiles(
            indexed[index][0].profile for index in range(len(jobs)))
        if trace_dir is not None and merged_profile is not None:
            # A side-channel next to sweep.ledger.json, never inside
            # it: profiles carry wall-clock values and would break the
            # ledger's byte-identity guarantee.
            with open(os.path.join(trace_dir, "sweep.profile.json"),
                      "w", encoding="utf-8") as handle:
                json.dump(merged_profile, handle, sort_keys=True,
                          indent=2)
                handle.write("\n")
    merged_digest = None
    if digest:
        from repro.obs.digest import merge_sweep_digests, write_digest_file

        merged_digest = merge_sweep_digests(
            [f"{app}__{variant}" for app, variant in job_order],
            [indexed[index][0].digest for index in range(len(jobs))])
        if trace_dir is not None:
            # A side channel beside sweep.ledger.json, like
            # sweep.profile.json — but deterministic: serial and
            # parallel sweeps of the same jobs write identical bytes.
            write_digest_file(os.path.join(trace_dir, "sweep.digest.json"),
                              merged_digest)
    return SweepResult(results=results, workers=n_workers,
                       wall_seconds=time.perf_counter() - start,
                       parallel=ran_parallel, job_order=job_order,
                       ledgers=ledgers, trace_dir=trace_dir,
                       cache_hits=hits,
                       cache_misses=len(todo) if cache is not None else 0,
                       cache_dir=cache_dir, profile=merged_profile,
                       digest=merged_digest)
