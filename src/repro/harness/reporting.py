"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
copy-paste friendly for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numeric(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def megabytes(nbytes: int, digits: int = 2) -> str:
    """Format a byte count in MB."""
    return f"{nbytes / (1024 * 1024):.{digits}f}MB"


def milliseconds(ns: float, digits: int = 2) -> str:
    """Format nanoseconds in ms."""
    return f"{ns / 1e6:.{digits}f}ms"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, unit: str = "") -> str:
    """Horizontal ASCII bar chart (one bar per label).

    The paper's figures are bar charts; this renders their text
    equivalent for terminals and result files.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    peak = max(values)
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(f"{label.ljust(label_width)}  "
                     f"{'#' * filled}{' ' * (width - filled)} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def stacked_bar_chart(labels: Sequence[str],
                      series: "dict[str, Sequence[float]]",
                      width: int = 50) -> str:
    """Stacked horizontal bars (Figures 9/10's traffic breakdowns).

    Each category gets a distinct fill character; a legend line maps
    characters to category names.
    """
    fills = "#=+:.%@*"
    categories = list(series)
    if len(categories) > len(fills):
        raise ValueError(f"at most {len(fills)} categories supported")
    for values in series.values():
        if len(values) != len(labels):
            raise ValueError("every series must align with labels")
    totals = [sum(series[c][i] for c in categories)
              for i in range(len(labels))]
    peak = max(totals) if totals else 0
    label_width = max((len(l) for l in labels), default=0)
    lines = ["legend: " + "  ".join(f"{f}={c}" for f, c
                                    in zip(fills, categories))]
    for i, label in enumerate(labels):
        bar = ""
        for fill, category in zip(fills, categories):
            share = (series[category][i] / peak * width) if peak else 0
            bar += fill * int(round(share))
        lines.append(f"{label.ljust(label_width)}  {bar[:width].ljust(width)}"
                     f" {totals[i]:.3g}")
    return "\n".join(lines)


def timeline(phases: Sequence, width: int = 60) -> str:
    """Figure-7-style phase timeline: ``phases`` is (name, duration)."""
    total = sum(d for _n, d in phases)
    if total <= 0:
        raise ValueError("timeline needs positive total duration")
    segments = []
    cursor = 0.0
    lines = []
    for name, duration in phases:
        span = duration / total * width
        segments.append("|" + "-" * max(0, int(round(span)) - 1))
        lines.append(f"  {name}: {duration:.3g}")
    bar = "".join(segments) + "|"
    return bar + "\n" + "\n".join(lines)


def profile_table(profile: "dict") -> str:
    """Render a wall-clock profile (``RunResult.profile``) as a table.

    One row per simulator component (hottest by self time first) with
    self vs cumulative seconds, plus the activations-per-second summary
    the throughput guard tracks.
    """
    rows = [[name, f"{self_s:.3f}", f"{cum_s:.3f}", calls]
            for name, self_s, cum_s, calls in profile["components"]]
    rows.append(["engine activations / sec",
                 f"{profile['events_per_sec']:,.0f}", "", ""])
    return format_table(["Component", "Self (s)", "Cumulative (s)",
                         "Calls"], rows,
                        title="Simulator wall-clock profile")


def actor_table(profile: "dict") -> str:
    """Per-actor host-time attribution table (``repro profile``).

    One row per engine actor, hottest first, with the per-node tier
    split: protocol-fallout seconds (the scalar directory-transaction
    calls made by the batch tiers, docs/PERFORMANCE.md §1b) carved out
    of the actor's dispatch seconds.
    """
    fallout = profile.get("fallout", {})
    entries = sorted(profile.get("actors", {}).items(),
                     key=lambda kv: kv[1]["seconds"], reverse=True)
    rows = []
    for actor_id, info in entries:
        drop = fallout.get(str(info["node"]), {})
        rows.append([
            actor_id, info["node"], info["kind"],
            f"{info['seconds']:.3f}",
            f"{info['activations']:,}",
            f"{drop.get('seconds', 0.0):.3f}",
            f"{drop.get('calls', 0):,}",
        ])
    return format_table(
        ["Actor", "Node", "Kind", "Wall (s)", "Activations",
         "Fallout (s)", "Fallout calls"], rows,
        title="Per-actor host-time attribution")


def trace_summary_table(events: "list[dict]") -> str:
    """Per-category event counts of a loaded trace (see ``read_trace``)."""
    from repro.obs.analysis import category_counts

    counts = category_counts(events)
    rows = [[cat, n] for cat, n in counts.items()]
    rows.append(["total", sum(counts.values())])
    return format_table(["Category", "Events"], rows,
                        title="Trace events by category")


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _numeric(cell: str) -> bool:
    stripped = cell.rstrip("%BMsm").replace("MB", "").replace("ms", "")
    try:
        float(stripped)
        return True
    except ValueError:
        return False
