"""Throughput measurement harness (docs/PERFORMANCE.md).

Measures the simulator's end-to-end speed on the standard exhibit —
the ``lu`` analog at scale 0.25 on the bench machine — and the sweep
executor's parallel speedup, and emits a machine-readable report
(``benchmarks/results/BENCH_throughput.json``) with each exhibit's
refs/sec and its speedup against the *recorded* pre-fast-path
baseline.  Consumers:

* ``benchmarks/test_simulator_throughput.py`` (``pytest -m perf``) —
  writes the report and enforces the soft regression threshold;
* ``tools/bench.py`` — the command-line entry point;
* ``tools/smoke.py`` — a one-round perf smoke.

The regression policy is *soft*: falling below the recorded baseline
itself is reported as a warning in ``report["regressions"]`` (hosts
differ), while falling below ``SOFT_THRESHOLD`` of it fails the
harness — that much slowdown is a code regression, not host noise.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.harness.parallel import run_sweep
from repro.harness.runner import build_machine
from repro.machine.config import MachineConfig
from repro.workloads.registry import get_workload

#: refs/sec recorded in ``benchmarks/results/simulator_throughput.txt``
#: before the fast-path work (the PR-1 observability-layer seed).
RECORDED_BASELINE_REFS_PER_SEC = 319_002

#: Fraction of the recorded baseline below which the harness *fails*
#: (above it but below 1.0 is only a warning — hosts differ).
SOFT_THRESHOLD = 0.5

#: The standard exhibits: single-process runs whose refs/sec we track.
EXHIBIT_VARIANTS = ("baseline", "cp_parity")

REPORT_SCHEMA = 1


def _run_exhibit(variant: str, scale: float) -> Dict[str, float]:
    machine = build_machine(variant, machine_config=MachineConfig.bench())
    machine.attach_workload(get_workload("lu", scale=scale))
    start = time.perf_counter()
    machine.run()
    wall = time.perf_counter() - start
    return {"refs": machine.total_mem_refs(), "wall_seconds": wall}


def measure_exhibit(variant: str, scale: float = 0.25,
                    rounds: int = 3) -> Dict[str, float]:
    """Refs/sec of one variant, best-of-``rounds`` fresh machines."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    runs = [_run_exhibit(variant, scale) for _ in range(rounds)]
    best = min(run["wall_seconds"] for run in runs)
    mean = sum(run["wall_seconds"] for run in runs) / rounds
    refs = runs[0]["refs"]
    return {
        "variant": variant,
        "refs": refs,
        "rounds": rounds,
        "wall_seconds_best": best,
        "wall_seconds_mean": mean,
        "refs_per_sec": refs / best,
    }


def measure_sweep_parallelism(workers: int = 4, scale: float = 0.1,
                              apps: Sequence[str] = ("lu", "fft"),
                              variants: Sequence[str] = EXHIBIT_VARIANTS,
                              ) -> Dict[str, float]:
    """Serial vs ``workers``-way wall clock of one small sweep.

    The speedup is bounded by the host's real core count — on a
    single-core container the parallel path measures its overhead, not
    a speedup — so the report carries ``cpu_count`` alongside it.
    """
    serial = run_sweep(apps, variants, serial=True, scale=scale)
    parallel = run_sweep(apps, variants, workers=workers, scale=scale)
    return {
        "jobs": len(serial.job_order),
        "workers_requested": workers,
        "workers_used": parallel.workers,
        "ran_parallel": parallel.parallel,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_seconds": serial.wall_seconds,
        "parallel_wall_seconds": parallel.wall_seconds,
        "speedup": serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds else 0.0,
    }


def throughput_report(rounds: int = 3, scale: float = 0.25,
                      sweep_workers: int = 4,
                      include_sweep: bool = True,
                      sweep_scale: float = 0.1) -> Dict:
    """The full ``BENCH_throughput.json`` payload."""
    exhibits = {variant: measure_exhibit(variant, scale=scale,
                                         rounds=rounds)
                for variant in EXHIBIT_VARIANTS}
    for exhibit in exhibits.values():
        exhibit["speedup_vs_recorded"] = (
            exhibit["refs_per_sec"] / RECORDED_BASELINE_REFS_PER_SEC)
    report = {
        "schema": REPORT_SCHEMA,
        "exhibit": f"lu @ scale {scale}, bench machine",
        "recorded_baseline_refs_per_sec": RECORDED_BASELINE_REFS_PER_SEC,
        "soft_threshold": SOFT_THRESHOLD,
        "exhibits": exhibits,
        "sweep": (measure_sweep_parallelism(workers=sweep_workers,
                                            scale=sweep_scale)
                  if include_sweep else None),
    }
    report["regressions"] = soft_regressions(report)
    return report


def soft_regressions(report: Dict) -> List[str]:
    """Warnings for exhibits slower than the recorded baseline.

    Only the *baseline* exhibit is compared against the recorded
    number (the recorded number was a baseline-variant measurement);
    other exhibits are listed when they fall below the hard floor.
    """
    warnings = []
    recorded = report["recorded_baseline_refs_per_sec"]
    for variant, exhibit in report["exhibits"].items():
        rate = exhibit["refs_per_sec"]
        if variant == "baseline" and rate < recorded:
            warnings.append(
                f"{variant}: {rate:,.0f} refs/s is below the recorded "
                f"baseline {recorded:,} (host noise or regression)")
        if rate < SOFT_THRESHOLD * recorded:
            warnings.append(
                f"{variant}: {rate:,.0f} refs/s is below "
                f"{SOFT_THRESHOLD:.0%} of the recorded baseline — "
                f"treat as a real regression")
    return warnings


def hard_failures(report: Dict) -> List[str]:
    """The subset of regressions that should fail a perf gate."""
    floor = SOFT_THRESHOLD * report["recorded_baseline_refs_per_sec"]
    return [
        f"{variant}: {exhibit['refs_per_sec']:,.0f} refs/s < "
        f"{floor:,.0f} floor"
        for variant, exhibit in report["exhibits"].items()
        if exhibit["refs_per_sec"] < floor
    ]


def write_report(report: Dict, path: str) -> None:
    """Write the JSON report (stable key order for diffing)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: Dict) -> str:
    """Human-readable rendering of the report."""
    lines = [f"throughput: {report['exhibit']}"]
    for variant, ex in report["exhibits"].items():
        lines.append(
            f"  {variant:<12} {ex['refs_per_sec']:>10,.0f} refs/s "
            f"({ex['speedup_vs_recorded']:.2f}x recorded baseline, "
            f"best of {ex['rounds']} x {ex['wall_seconds_best']:.2f}s)")
    sweep = report.get("sweep")
    if sweep:
        lines.append(
            f"  sweep        {sweep['jobs']} jobs: "
            f"{sweep['serial_wall_seconds']:.2f}s serial vs "
            f"{sweep['parallel_wall_seconds']:.2f}s with "
            f"{sweep['workers_used']} workers "
            f"({sweep['speedup']:.2f}x, host has {sweep['cpu_count']} "
            f"CPU(s))")
    for warning in report.get("regressions", []):
        lines.append(f"  WARNING: {warning}")
    return "\n".join(lines)
