"""Throughput measurement harness (docs/PERFORMANCE.md).

Measures the simulator's end-to-end speed on the standard exhibit —
the ``lu`` analog at scale 0.25 on the bench machine — and the sweep
executor's parallel speedup, and emits a machine-readable report
(``benchmarks/results/BENCH_throughput.json``) with each exhibit's
refs/sec and its speedup against the *recorded* scalar-tier baseline,
plus the columnar-vs-scalar tier comparison and its enforced floor.
Consumers:

* ``benchmarks/test_simulator_throughput.py`` (``pytest -m perf``) —
  writes the report and enforces the soft regression threshold;
* ``tools/bench.py`` — the command-line entry point;
* ``tools/smoke.py`` — a one-round perf smoke.

The regression policy is *soft*: falling below the recorded baseline
itself is reported as a warning in ``report["regressions"]`` (hosts
differ), while falling below ``SOFT_THRESHOLD`` of it fails the
harness — that much slowdown is a code regression, not host noise.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.harness.parallel import run_sweep
from repro.harness.runner import build_machine
from repro.machine.config import MachineConfig
from repro.workloads.registry import get_workload

#: refs/sec recorded in ``benchmarks/results/BENCH_throughput.json``
#: by the compiled *scalar* fast path on the bench host, before the
#: columnar batch engine landed.  (The pre-fast-path PR-1 seed recorded
#: 319,002 refs/s in ``results/simulator_throughput.txt``.)
RECORDED_BASELINE_REFS_PER_SEC = 752_941

#: Fraction of the recorded baseline below which the harness *fails*
#: (above it but below 1.0 is only a warning — hosts differ).
SOFT_THRESHOLD = 0.5

#: The standard exhibits: single-process runs whose refs/sec we track.
EXHIBIT_VARIANTS = ("baseline", "cp_parity")

#: Hard ceiling on the result store's warm hit path: replaying a whole
#: cached sweep (lookup + byte replay, zero simulation) must finish in
#: well under a second, or the cache is not the O(1) lookup
#: docs/SERVING.md promises.
CACHE_HIT_MAX_SECONDS = 0.25

#: Hard floor on hit-vs-miss speedup: a warm cache must beat fresh
#: simulation by at least this factor on the standard cache exhibit.
CACHE_HIT_MIN_SPEEDUP = 5.0

#: Hard floor on the fault campaign's fork path: replaying the Fig. 12
#: grid from one stored warm image must beat cold per-scenario
#: re-simulation by at least this factor on the standard campaign
#: exhibit (docs/SNAPSHOTS.md).
CAMPAIGN_MIN_SPEEDUP = 5.0

#: Hard floor on the columnar batch engine's speedup over the scalar
#: fast path on the standard exhibit (same process, same rounds, so
#: host noise largely cancels).  The *enforced* floor says "the
#: default tier is never a pessimization"; the measured advantage on
#: the bench host is ~1.1-1.25x and the ROADMAP's aspirational target
#: is 3x+ (docs/PERFORMANCE.md discusses the gap: the directory
#: protocol's scalar fallout path bounds the achievable speedup on
#: miss-heavy exhibits).
COLUMNAR_MIN_SPEEDUP = 1.02

#: Hard ceiling on the *disabled* observability tax: a machine with
#: the full hook surface installed but turned off (disabled tracer,
#: no profiler) must run within this fraction of a machine that never
#: saw the install path.  Keeps "observability is zero-cost when off"
#: (docs/OBSERVABILITY.md) an enforced property, not a slogan.
OBS_OVERHEAD_MAX = 0.02

#: Hard ceiling on the *enabled* determinism-digest tax: a cp_parity
#: run digesting every checkpoint boundary (docs/OBSERVABILITY.md,
#: "Determinism observatory") must run within this fraction of the
#: same run without digesting.  Checkpoint boundaries are sparse
#: relative to memory references, so the per-window sha256 over every
#: component's snapshot state has to stay in the noise.
DIGEST_OVERHEAD_MAX = 0.05

REPORT_SCHEMA = 1


def _run_exhibit(variant: str, scale: float) -> Dict[str, float]:
    machine = build_machine(variant, machine_config=MachineConfig.bench())
    machine.attach_workload(get_workload("lu", scale=scale))
    start = time.perf_counter()
    machine.run()
    wall = time.perf_counter() - start
    return {"refs": machine.total_mem_refs(), "wall_seconds": wall}


def measure_exhibit(variant: str, scale: float = 0.25,
                    rounds: int = 3) -> Dict[str, float]:
    """Refs/sec of one variant, best-of-``rounds`` fresh machines."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    runs = [_run_exhibit(variant, scale) for _ in range(rounds)]
    best = min(run["wall_seconds"] for run in runs)
    mean = sum(run["wall_seconds"] for run in runs) / rounds
    refs = runs[0]["refs"]
    return {
        "variant": variant,
        "refs": refs,
        "rounds": rounds,
        "wall_seconds_best": best,
        "wall_seconds_mean": mean,
        "refs_per_sec": refs / best,
    }


def measure_sweep_parallelism(workers: int = 4, scale: float = 0.1,
                              apps: Sequence[str] = ("lu", "fft"),
                              variants: Sequence[str] = EXHIBIT_VARIANTS,
                              ) -> Dict[str, float]:
    """Serial vs ``workers``-way wall clock of one small sweep.

    The speedup is bounded by the host's real core count — on a
    single-core container the parallel path measures its overhead, not
    a speedup — so the report carries ``cpu_count`` alongside it.
    """
    serial = run_sweep(apps, variants, serial=True, scale=scale)
    parallel = run_sweep(apps, variants, workers=workers, scale=scale)
    return {
        "jobs": len(serial.job_order),
        "workers_requested": workers,
        "workers_used": parallel.workers,
        "ran_parallel": parallel.parallel,
        "cpu_count": os.cpu_count() or 1,
        "serial_wall_seconds": serial.wall_seconds,
        "parallel_wall_seconds": parallel.wall_seconds,
        "speedup": serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds else 0.0,
    }


def measure_cache_hit_path(rounds: int = 3) -> Dict[str, float]:
    """Warm-cache latency of the result store's hit path.

    Runs the standard cache exhibit — a serial ``lu``
    baseline/cp_parity sweep on a tiny 4-node machine — once cold
    (populating a fresh store; this is the *miss* wall clock) and then
    ``rounds`` more times warm, reporting the best warm wall clock,
    the equivalent lookups/sec, and the hit-vs-miss speedup.  Gated in
    :func:`hard_failures` by :data:`CACHE_HIT_MAX_SECONDS` and
    :data:`CACHE_HIT_MIN_SPEEDUP`.
    """
    import shutil
    import tempfile

    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    apps, variants = ["lu"], ["baseline", "cp_parity"]
    kwargs = dict(serial=True, scale=0.05, n_procs=4,
                  machine_config=MachineConfig.tiny(4),
                  parity_group_size=3, log_bytes_per_node=64 * 1024)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold = run_sweep(apps, variants, cache_dir=cache_dir, **kwargs)
        assert cold.cache_misses == len(cold.job_order)
        warm_walls = []
        for _ in range(rounds):
            warm = run_sweep(apps, variants, cache_dir=cache_dir, **kwargs)
            assert warm.cache_hits == len(warm.job_order)
            warm_walls.append(warm.wall_seconds)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    best = min(warm_walls)
    jobs = len(cold.job_order)
    return {
        "jobs": jobs,
        "rounds": rounds,
        "miss_wall_seconds": cold.wall_seconds,
        "hit_wall_seconds_best": best,
        "hit_wall_seconds_mean": sum(warm_walls) / rounds,
        "hit_lookups_per_sec": jobs / best if best else 0.0,
        "speedup_vs_miss": (cold.wall_seconds / best) if best else 0.0,
        "max_seconds": CACHE_HIT_MAX_SECONDS,
        "min_speedup": CACHE_HIT_MIN_SPEEDUP,
    }


def measure_campaign_fork_speedup(rounds: int = 2) -> Dict[str, float]:
    """Fork-vs-cold wall clock of the fault-campaign path.

    Runs the standard campaign exhibit — a nine-scenario Fig. 12 grid
    (``fft``/cp_parity, three lost-node choices x three detection
    latencies) warmed six checkpoints deep on a tiny 4-node machine —
    once cold (every scenario re-simulates its own warm-up), once to
    populate a fresh store with the warm image, and then ``rounds``
    more times forked from the stored image, reporting the best forked
    wall clock and the fork-vs-cold speedup.  The populate round
    doubles as a correctness cross-check: forked outcomes must equal
    the cold ones exactly.  Gated in :func:`hard_failures` by
    :data:`CAMPAIGN_MIN_SPEEDUP`.
    """
    import shutil
    import tempfile

    from repro.harness.campaign import run_campaign

    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    kwargs = dict(scale=0.05, n_procs=4, interval_ns=50_000,
                  machine_config=MachineConfig.tiny(4),
                  warm_checkpoints=6, lost_nodes=(None, 1, 2),
                  detect_fractions=(0.1, 0.2, 0.3), serial=True,
                  parity_group_size=3, log_bytes_per_node=64 * 1024)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-campaign-")
    try:
        cold = run_campaign("fft", "cp_parity", cold=True, **kwargs)
        populate = run_campaign("fft", "cp_parity", cache_dir=cache_dir,
                                **kwargs)
        assert populate.outcomes == cold.outcomes, \
            "forked campaign outcomes diverged from cold replays"
        forked_walls = []
        for _ in range(rounds):
            forked = run_campaign("fft", "cp_parity",
                                  cache_dir=cache_dir, **kwargs)
            assert all(image["cached"] for image in forked.images)
            forked_walls.append(forked.wall_seconds)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    best = min(forked_walls)
    return {
        "scenarios": len(cold.outcomes),
        "warm_checkpoints": 6,
        "rounds": rounds,
        "image_bytes": populate.image_bytes,
        "cold_wall_seconds": cold.wall_seconds,
        "populate_wall_seconds": populate.wall_seconds,
        "forked_wall_seconds_best": best,
        "forked_wall_seconds_mean": sum(forked_walls) / rounds,
        "speedup_vs_cold": (cold.wall_seconds / best) if best else 0.0,
        "min_speedup": CAMPAIGN_MIN_SPEEDUP,
    }


def measure_columnar_speedup(rounds: int = 3,
                             scale: float = 0.25) -> Dict[str, float]:
    """Columnar-vs-scalar refs/sec on the standard exhibit.

    Runs the baseline exhibit once per execution tier — the compiled
    scalar fast path and the columnar batch engine — by overriding the
    processor tier defaults around machine construction (the in-process
    equivalent of ``REPRO_FASTPATH=scalar``).  Both tiers use the same
    best-of-``rounds`` protocol in the same process, so the reported
    speedup is robust to host noise.  Gated in :func:`hard_failures`
    by :data:`COLUMNAR_MIN_SPEEDUP`.
    """
    from repro.cpu import processor as processor_mod

    saved = (processor_mod.FASTPATH_DEFAULT,
             processor_mod.COLUMNAR_DEFAULT)
    tiers: Dict[str, Dict[str, float]] = {}
    try:
        for tier, columnar in (("scalar", False), ("columnar", True)):
            processor_mod.FASTPATH_DEFAULT = True
            processor_mod.COLUMNAR_DEFAULT = columnar
            tiers[tier] = measure_exhibit("baseline", scale=scale,
                                          rounds=rounds)
    finally:
        (processor_mod.FASTPATH_DEFAULT,
         processor_mod.COLUMNAR_DEFAULT) = saved
    scalar_rate = tiers["scalar"]["refs_per_sec"]
    columnar_rate = tiers["columnar"]["refs_per_sec"]
    return {
        "rounds": rounds,
        "scale": scale,
        "scalar_refs_per_sec": scalar_rate,
        "columnar_refs_per_sec": columnar_rate,
        "speedup": columnar_rate / scalar_rate if scalar_rate else 0.0,
        "min_speedup": COLUMNAR_MIN_SPEEDUP,
    }


def measure_obs_overhead(rounds: int = 3,
                         scale: float = 0.25) -> Dict[str, float]:
    """Wall-clock tax of the observability surface when it is *off*.

    Runs the baseline exhibit two ways: a machine built the ordinary
    way (no tracer, no profiler — the hooks were never installed) and
    a machine pushed through the full install path with everything
    disabled (``install_tracer`` with a sink-less disabled tracer,
    ``install_profiler(None)``).  Rounds alternate between the two
    tiers so host drift hits both equally; both take best-of-rounds.
    The reported ``overhead_fraction`` is how much slower the
    obs-off machine ran, gated in :func:`hard_failures` by
    :data:`OBS_OVERHEAD_MAX`.
    """
    from repro.obs.tracer import Tracer

    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    def run_once(install_hooks: bool) -> Dict[str, float]:
        machine = build_machine("baseline",
                                machine_config=MachineConfig.bench())
        machine.attach_workload(get_workload("lu", scale=scale))
        if install_hooks:
            machine.install_tracer(Tracer(sink=None, enabled=False))
            machine.install_profiler(None)
        start = time.perf_counter()
        machine.run()
        return {"refs": machine.total_mem_refs(),
                "wall_seconds": time.perf_counter() - start}

    no_hooks, obs_off = [], []
    for _ in range(rounds):
        no_hooks.append(run_once(False))
        obs_off.append(run_once(True))
    refs = no_hooks[0]["refs"]
    base = min(run["wall_seconds"] for run in no_hooks)
    off = min(run["wall_seconds"] for run in obs_off)
    return {
        "rounds": rounds,
        "scale": scale,
        "refs": refs,
        "no_hooks_wall_seconds_best": base,
        "obs_off_wall_seconds_best": off,
        "no_hooks_refs_per_sec": refs / base if base else 0.0,
        "obs_off_refs_per_sec": refs / off if off else 0.0,
        "overhead_fraction": (off / base - 1.0) if base else 0.0,
        "max_overhead": OBS_OVERHEAD_MAX,
    }


def measure_digest_overhead(rounds: int = 3,
                            scale: float = 0.25) -> Dict[str, float]:
    """Wall-clock tax of checkpoint-boundary determinism digesting.

    Runs the cp_parity exhibit at a 50 us checkpoint interval — short
    enough that the bench run commits several checkpoints, so every
    commit rolls a digest window — with the digest recorder installed
    (the exact wiring of ``run_app(digest=True)``) and every
    ``record_digest`` call timed.  The gated ``overhead_fraction`` is
    the attributed fraction: seconds spent digesting over the total
    wall clock of the *same* runs.  Numerator and denominator come
    from one run, so the fraction is robust to the host's run-to-run
    wall-clock drift — an A/B comparison would need the true ~4%
    signal to beat >10% scheduler noise.  Plain runs are still
    measured (alternating, best-of-rounds) so the report carries the
    refs/sec context, and the gate in :func:`hard_failures` enforces
    ``overhead_fraction <= DIGEST_OVERHEAD_MAX``.
    """
    from repro.obs.digest import DigestRecorder

    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    def run_plain() -> Dict[str, float]:
        machine = build_machine("cp_parity",
                                machine_config=MachineConfig.bench(),
                                interval_ns=50_000)
        machine.attach_workload(get_workload("lu", scale=scale))
        start = time.perf_counter()
        machine.run()
        return {"refs": machine.total_mem_refs(),
                "wall_seconds": time.perf_counter() - start}

    def run_digested() -> Dict[str, float]:
        machine = build_machine("cp_parity",
                                machine_config=MachineConfig.bench(),
                                interval_ns=50_000)
        machine.attach_workload(get_workload("lu", scale=scale))
        machine.install_digests(DigestRecorder(None))
        cost = [0.0]
        inner = machine.record_digest

        def timed_record(ts=None):
            begin = time.perf_counter()
            try:
                return inner(ts)
            finally:
                cost[0] += time.perf_counter() - begin

        machine.record_digest = timed_record
        start = time.perf_counter()
        machine.record_digest(0)  # window 0, inside the timed region
        machine.run()
        return {"refs": machine.total_mem_refs(),
                "wall_seconds": time.perf_counter() - start,
                "digest_seconds": cost[0],
                "windows": len(machine.digests.chain)}

    plain, digested = [], []
    for _ in range(rounds):
        plain.append(run_plain())
        digested.append(run_digested())
    refs = plain[0]["refs"]
    base = min(run["wall_seconds"] for run in plain)
    on = min(run["wall_seconds"] for run in digested)
    total_wall = sum(run["wall_seconds"] for run in digested)
    total_cost = sum(run["digest_seconds"] for run in digested)
    return {
        "rounds": rounds,
        "scale": scale,
        "refs": refs,
        "windows": digested[0]["windows"],
        "plain_wall_seconds_best": base,
        "digest_wall_seconds_best": on,
        "plain_refs_per_sec": refs / base if base else 0.0,
        "digest_refs_per_sec": refs / on if on else 0.0,
        "digest_seconds_per_window": (
            total_cost / sum(run["windows"] for run in digested)),
        "overhead_fraction": total_cost / total_wall if total_wall
        else 0.0,
        "max_overhead": DIGEST_OVERHEAD_MAX,
    }


def throughput_report(rounds: int = 3, scale: float = 0.25,
                      sweep_workers: int = 4,
                      include_sweep: bool = True,
                      sweep_scale: float = 0.1,
                      include_cache: bool = True,
                      include_campaign: bool = True,
                      include_columnar: bool = True,
                      include_obs: bool = True,
                      include_digest: bool = True) -> Dict:
    """The full ``BENCH_throughput.json`` payload."""
    exhibits = {variant: measure_exhibit(variant, scale=scale,
                                         rounds=rounds)
                for variant in EXHIBIT_VARIANTS}
    for exhibit in exhibits.values():
        exhibit["speedup_vs_recorded"] = (
            exhibit["refs_per_sec"] / RECORDED_BASELINE_REFS_PER_SEC)
    report = {
        "schema": REPORT_SCHEMA,
        "exhibit": f"lu @ scale {scale}, bench machine",
        "recorded_baseline_refs_per_sec": RECORDED_BASELINE_REFS_PER_SEC,
        "soft_threshold": SOFT_THRESHOLD,
        "exhibits": exhibits,
        "sweep": (measure_sweep_parallelism(workers=sweep_workers,
                                            scale=sweep_scale)
                  if include_sweep else None),
        "cache": (measure_cache_hit_path(rounds=rounds)
                  if include_cache else None),
        "campaign": (measure_campaign_fork_speedup()
                     if include_campaign else None),
        "columnar": (measure_columnar_speedup(rounds=rounds, scale=scale)
                     if include_columnar else None),
        "obs": (measure_obs_overhead(rounds=rounds, scale=scale)
                if include_obs else None),
        # The digest gate always measures its representative exhibit:
        # per-window cost hashes machine-sized state and barely moves
        # with scale, while the wall clock shrinks with it, so a
        # quick-mode scale would inflate the fraction being gated.
        "digest": (measure_digest_overhead(rounds=rounds,
                                           scale=max(scale, 0.25))
                   if include_digest else None),
    }
    report["regressions"] = soft_regressions(report)
    return report


def soft_regressions(report: Dict) -> List[str]:
    """Warnings for exhibits slower than the recorded baseline.

    Only the *baseline* exhibit is compared against the recorded
    number (the recorded number was a baseline-variant measurement);
    other exhibits are listed when they fall below the hard floor.
    """
    warnings = []
    recorded = report["recorded_baseline_refs_per_sec"]
    for variant, exhibit in report["exhibits"].items():
        rate = exhibit["refs_per_sec"]
        if variant == "baseline" and rate < recorded:
            warnings.append(
                f"{variant}: {rate:,.0f} refs/s is below the recorded "
                f"baseline {recorded:,} (host noise or regression)")
        if rate < SOFT_THRESHOLD * recorded:
            warnings.append(
                f"{variant}: {rate:,.0f} refs/s is below "
                f"{SOFT_THRESHOLD:.0%} of the recorded baseline — "
                f"treat as a real regression")
    return warnings


def hard_failures(report: Dict) -> List[str]:
    """The subset of regressions that should fail a perf gate."""
    floor = SOFT_THRESHOLD * report["recorded_baseline_refs_per_sec"]
    failures = [
        f"{variant}: {exhibit['refs_per_sec']:,.0f} refs/s < "
        f"{floor:,.0f} floor"
        for variant, exhibit in report["exhibits"].items()
        if exhibit["refs_per_sec"] < floor
    ]
    cache = report.get("cache")
    if cache:
        if cache["hit_wall_seconds_best"] > CACHE_HIT_MAX_SECONDS:
            failures.append(
                f"cache: warm hit path took "
                f"{cache['hit_wall_seconds_best']:.3f}s > "
                f"{CACHE_HIT_MAX_SECONDS}s ceiling")
        if cache["speedup_vs_miss"] < CACHE_HIT_MIN_SPEEDUP:
            failures.append(
                f"cache: hit path only {cache['speedup_vs_miss']:.1f}x "
                f"faster than simulating (< {CACHE_HIT_MIN_SPEEDUP:.0f}x "
                f"floor)")
    campaign = report.get("campaign")
    if campaign and campaign["speedup_vs_cold"] < CAMPAIGN_MIN_SPEEDUP:
        failures.append(
            f"campaign: forked grid only "
            f"{campaign['speedup_vs_cold']:.1f}x faster than cold "
            f"replays (< {CAMPAIGN_MIN_SPEEDUP:.0f}x floor)")
    columnar = report.get("columnar")
    if columnar and columnar["speedup"] < COLUMNAR_MIN_SPEEDUP:
        failures.append(
            f"columnar: batch engine only {columnar['speedup']:.2f}x "
            f"the scalar fast path "
            f"({columnar['columnar_refs_per_sec']:,.0f} vs "
            f"{columnar['scalar_refs_per_sec']:,.0f} refs/s, "
            f"< {COLUMNAR_MIN_SPEEDUP:.2f}x floor)")
    obs = report.get("obs")
    if obs and obs["overhead_fraction"] > OBS_OVERHEAD_MAX:
        failures.append(
            f"obs: disabled observability hooks cost "
            f"{obs['overhead_fraction']:.1%} of the no-hooks wall clock "
            f"(> {OBS_OVERHEAD_MAX:.0%} ceiling) — the off path is no "
            f"longer free")
    digest = report.get("digest")
    if digest and digest["overhead_fraction"] > DIGEST_OVERHEAD_MAX:
        failures.append(
            f"digest: checkpoint-boundary digesting cost "
            f"{digest['overhead_fraction']:.1%} of the undigested wall "
            f"clock (> {DIGEST_OVERHEAD_MAX:.0%} ceiling) over "
            f"{digest['windows']} windows")
    return failures


def write_report(report: Dict, path: str) -> None:
    """Write the JSON report (stable key order for diffing)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: Dict) -> str:
    """Human-readable rendering of the report."""
    lines = [f"throughput: {report['exhibit']}"]
    for variant, ex in report["exhibits"].items():
        lines.append(
            f"  {variant:<12} {ex['refs_per_sec']:>10,.0f} refs/s "
            f"({ex['speedup_vs_recorded']:.2f}x recorded baseline, "
            f"best of {ex['rounds']} x {ex['wall_seconds_best']:.2f}s)")
    sweep = report.get("sweep")
    if sweep:
        lines.append(
            f"  sweep        {sweep['jobs']} jobs: "
            f"{sweep['serial_wall_seconds']:.2f}s serial vs "
            f"{sweep['parallel_wall_seconds']:.2f}s with "
            f"{sweep['workers_used']} workers "
            f"({sweep['speedup']:.2f}x, host has {sweep['cpu_count']} "
            f"CPU(s))")
    cache = report.get("cache")
    if cache:
        lines.append(
            f"  cache hit    {cache['jobs']} jobs replayed in "
            f"{cache['hit_wall_seconds_best']:.3f}s "
            f"({cache['speedup_vs_miss']:.0f}x faster than simulating, "
            f"best of {cache['rounds']})")
    campaign = report.get("campaign")
    if campaign:
        lines.append(
            f"  campaign     {campaign['scenarios']} scenarios forked "
            f"in {campaign['forked_wall_seconds_best']:.2f}s vs "
            f"{campaign['cold_wall_seconds']:.2f}s cold "
            f"({campaign['speedup_vs_cold']:.1f}x, warm image "
            f"{campaign['image_bytes']:,} bytes)")
    columnar = report.get("columnar")
    if columnar:
        lines.append(
            f"  columnar     {columnar['columnar_refs_per_sec']:>10,.0f} "
            f"refs/s vs {columnar['scalar_refs_per_sec']:,.0f} scalar "
            f"({columnar['speedup']:.2f}x, floor "
            f"{columnar['min_speedup']:.2f}x)")
    obs = report.get("obs")
    if obs:
        lines.append(
            f"  obs off      {obs['overhead_fraction']:+.1%} vs no hooks "
            f"({obs['obs_off_refs_per_sec']:,.0f} vs "
            f"{obs['no_hooks_refs_per_sec']:,.0f} refs/s, ceiling "
            f"{obs['max_overhead']:.0%})")
    digest = report.get("digest")
    if digest:
        lines.append(
            f"  digest on    {digest['overhead_fraction']:+.1%} vs "
            f"undigested ({digest['digest_refs_per_sec']:,.0f} vs "
            f"{digest['plain_refs_per_sec']:,.0f} refs/s, "
            f"{digest['windows']} windows, ceiling "
            f"{digest['max_overhead']:.0%})")
    for warning in report.get("regressions", []):
        lines.append(f"  WARNING: {warning}")
    return "\n".join(lines)
