"""Fork-based fault campaigns: warm once, fork the fault grid.

The Figure 12 recovery study re-simulates the same warm-up — boot,
warm-up phase, ``warm_checkpoints`` committed checkpoints — for every
fault scenario, even though the scenarios only diverge *after* the
fault is injected.  :func:`run_campaign` removes the repetition:

1. **Warm once.**  One machine runs to ``warm_checkpoints`` commits
   (the fig12 horizon-stepping loop).
2. **Capture.**  ``machine.snapshot()`` (see docs/SNAPSHOTS.md) is
   pickled into a *warm image* and stored as a content-addressed
   artifact in the :class:`~repro.harness.store.ResultStore` under
   :func:`~repro.harness.store.snapshot_key` — a later campaign over
   the same configuration skips the warm-up entirely.
3. **Fork.**  Every scenario of the fault grid — ``lost_node`` ×
   ``detect_fraction`` (× ``hybrid_fraction``, which changes machine
   geometry and therefore gets its own warm image) — restores the
   image into a fresh machine, runs only the detection window, injects
   its fault, and recovers.  Scenarios fan out over a worker pool with
   the same serial fallback as :func:`~repro.harness.parallel.run_sweep`.

Because snapshot/restore is bit-identical to uninterrupted execution
(``tests/test_snapshot_oracle.py``), the forked outcomes are exactly
the outcomes of cold per-scenario replays — ``cold=True`` runs the
grid that way for cross-checking and for the
``CAMPAIGN_MIN_SPEEDUP`` perf gate (``harness/perf.py``).

Campaign progress is observable: pass ``tracer=`` and the runner emits
``snap.capture`` (image built), ``snap.restore`` (image served from
the store), and ``snap.fork`` (grid dispatched) events — ``svc``-style
envelope with ``ts`` 0, catalogued in ``repro.obs.lint``.
"""

from __future__ import annotations

import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager
from repro.harness.runner import DEFAULT_INTERVAL_NS, build_machine
from repro.obs.tracer import Tracer
from repro.workloads.registry import get_workload

#: Detection latencies of the default grid, as fractions of the
#: checkpoint interval.  0.8 is the paper's worst case (Section 6.3);
#: the smaller fractions reproduce its detection-latency sensitivity
#: discussion.
DEFAULT_DETECT_FRACTIONS = (0.2, 0.5, 0.8)

#: Fault sites of the default grid: one lost node, plus ``None`` for
#: the memory-intact transient fault (Phases 2/4 skipped).
DEFAULT_LOST_NODES: Tuple[Optional[int], ...] = (None, 1)


def campaign_scenarios(
        lost_nodes: Sequence[Optional[int]] = DEFAULT_LOST_NODES,
        detect_fractions: Sequence[float] = DEFAULT_DETECT_FRACTIONS,
        hybrid_fractions: Sequence[Optional[float]] = (None,),
) -> List[Dict]:
    """The deterministic scenario list: hybrid-major, then lost node,
    then detection fraction.  The list order is the canonical outcome
    order, independent of worker scheduling."""
    scenarios = []
    for hybrid in hybrid_fractions:
        for lost in lost_nodes:
            for fraction in detect_fractions:
                scenarios.append({"hybrid_fraction": hybrid,
                                  "lost_node": lost,
                                  "detect_fraction": fraction})
    return scenarios


def warm_machine(app: str, variant: str, run_kwargs: Dict,
                 warm_checkpoints: int, digest: bool = False):
    """Build and run one machine to ``warm_checkpoints`` commits.

    The fig12 warm-up loop: step the horizon one interval at a time so
    the run pauses as soon as the target commit lands.  Raises when
    the workload finishes first — the campaign needs a live machine.
    ``digest=True`` installs a determinism-observatory recorder before
    the first event, so the warm-up's digest chain (window 0 plus one
    window per commit) rides inside the captured image and forked
    scenarios resume it (docs/OBSERVABILITY.md).
    """
    kwargs = dict(run_kwargs)
    interval_ns = kwargs.pop("interval_ns", DEFAULT_INTERVAL_NS)
    scale = kwargs.pop("scale", 1.0)
    n_procs = kwargs.pop("n_procs", 16)
    machine_config = kwargs.pop("machine_config", None)
    machine = build_machine(variant, machine_config, interval_ns, **kwargs)
    if machine.checkpointing is None:
        raise ValueError(f"variant {variant!r} takes no checkpoints; "
                         f"campaigns need a checkpointing variant")
    machine.attach_workload(get_workload(app, scale=scale, n_procs=n_procs))
    if digest:
        from repro.obs.digest import DigestRecorder

        machine.install_digests(DigestRecorder())
        machine.record_digest(ts=0)
    horizon = (warm_checkpoints + 1) * interval_ns
    while machine.checkpointing.checkpoints_committed < warm_checkpoints:
        if machine.all_finished:
            raise RuntimeError(
                f"{app}: fewer than {warm_checkpoints} checkpoints in the "
                f"whole run; shorten the interval or scale up the run")
        machine.run(until=horizon)
        horizon += interval_ns
    return machine


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------

#: Per-worker campaign context, set by :func:`_init_worker` (in the
#: pool initializer, or directly for the serial path).
_CTX: Optional[Dict] = None


def _init_worker(ctx: Dict) -> None:
    """Pool initializer: stash the shared campaign context."""
    global _CTX
    _CTX = ctx


def _run_scenario(payload: Tuple[int, Dict]
                  ) -> Tuple[int, Dict, Optional[Dict], Optional[Dict]]:
    """Worker body: one fault scenario; module-level so it pickles.

    Forked mode restores the warm image into a fresh machine; cold
    mode re-runs the warm-up from scratch.  Either way the machine
    then runs to its detection time, takes the fault, and recovers —
    the outcomes are identical (the snapshot oracle guarantees it),
    only the wall-clock differs.

    Returns ``(index, outcome, profile, digest)``.  The host-time
    profile (or None when profiling is off) rides *next to* the
    outcome, never inside it: outcomes must stay equal between cold
    and forked runs, and wall-clock attribution obviously is not.
    Profiling starts after the warm-up / restore, so cold and forked
    scenarios profile the same work (detection window + recovery).

    The digest chain (or None when digesting is off) also rides next
    to the outcome — but unlike the profile it *is* deterministic:
    forked scenarios resume the chain carried inside the warm image,
    cold scenarios recompute it from scratch, and the two must be
    identical window for window.  ``run_campaign(digest=True)``
    reconciles exactly that.
    """
    index, scenario = payload
    ctx = _CTX
    app, variant = ctx["app"], ctx["variant"]
    run_kwargs = ctx["run_kwargs"]
    warm = ctx["warm_checkpoints"]
    digest = bool(ctx.get("digest"))
    image = ctx["images"][scenario["hybrid_fraction"]]
    if image is None:  # cold mode: pay the warm-up per scenario
        machine = warm_machine(app, variant,
                               _hybrid_kwargs(run_kwargs, scenario),
                               warm, digest=digest)
    else:
        kwargs = dict(_hybrid_kwargs(run_kwargs, scenario))
        interval_ns = kwargs.pop("interval_ns", DEFAULT_INTERVAL_NS)
        scale = kwargs.pop("scale", 1.0)
        n_procs = kwargs.pop("n_procs", 16)
        machine_config = kwargs.pop("machine_config", None)
        machine = build_machine(variant, machine_config, interval_ns,
                                **kwargs)
        machine.attach_workload(
            get_workload(app, scale=scale, n_procs=n_procs))
        if digest:
            from repro.obs.digest import DigestRecorder

            # Installed before restore so the warm-up chain carried
            # inside the image resumes (machine/snapshot.py).
            machine.install_digests(DigestRecorder())
        machine.restore(pickle.loads(image))

    profiler = None
    if ctx.get("profile"):
        from repro.obs.profiling import Profiler

        profiler = Profiler()
        machine.install_profiler(profiler)

    interval_ns = run_kwargs.get("interval_ns", DEFAULT_INTERVAL_NS)
    detect_time = (machine.checkpointing.commit_times[warm]
                   + int(scenario["detect_fraction"] * interval_ns))
    machine.run(until=detect_time)
    lost_node = scenario["lost_node"]
    if lost_node is not None:
        NodeLossFault(lost_node).apply(machine)
    else:
        TransientSystemFault().apply(machine)
    result = RecoveryManager(machine).recover(
        detect_time=detect_time, lost_node=lost_node,
        target_epoch=warm - 1)
    outcome = dict(scenario)
    outcome.update(
        app=app, variant=variant, interval_ns=interval_ns,
        detect_time=detect_time, target_epoch=result.target_epoch,
        lost_work_ns=result.lost_work_ns,
        unavailable_ns=result.unavailable_ns,
        revive_recovery_ns=result.revive_recovery_ns,
        entries_undone=result.entries_undone,
        log_lines_rebuilt=result.log_lines_rebuilt,
        resume_time=result.resume_time,
        breakdown=result.breakdown(),
    )
    snapshot = None
    if profiler is not None:
        from repro.obs.telemetry import profile_snapshot

        snapshot = profile_snapshot(profiler)
    chain = None
    if digest and machine.digests is not None:
        # One closing on-demand window fingerprints the recovered
        # state, so the chain covers the scenario end-to-end: warm-up
        # windows + the post-recovery state.
        machine.record_digest()
        chain = machine.digests.chain.to_jsonable()
    return index, outcome, snapshot, chain


def _hybrid_kwargs(run_kwargs: Dict, scenario: Dict) -> Dict:
    """The job kwargs of a scenario, with its hybrid override folded in."""
    hybrid = scenario["hybrid_fraction"]
    if hybrid is None:
        return run_kwargs
    kwargs = dict(run_kwargs)
    kwargs["mirrored_fraction"] = hybrid
    return kwargs


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

@dataclass
class CampaignResult:
    """One campaign's outcomes plus how they were obtained."""

    app: str
    variant: str
    warm_checkpoints: int
    interval_ns: int
    #: One outcome dict per scenario, in :func:`campaign_scenarios`
    #: order (never completion order).
    outcomes: List[Dict]
    #: Per warm image: ``{"hybrid_fraction", "key", "bytes", "cached"}``
    #: (``cached`` means served from the result store, warm-up skipped).
    images: List[Dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    parallel: bool = False
    #: True when the grid re-ran warm-ups instead of forking.
    cold: bool = False
    #: Merged host-time profile across scenarios (``profile=True``),
    #: or None.  Kept beside the outcomes, never inside them: the
    #: cold-vs-forked equality contract covers outcomes only.
    profile: Optional[Dict] = None
    #: Per-scenario determinism digest chains (``digest=True``), in
    #: scenario order, or None.  Deterministic — forked chains resume
    #: the warm image's windows, cold chains recompute them, and the
    #: two are identical (``tests/test_digest.py`` pins it).
    digests: Optional[List[Dict]] = None

    @property
    def image_bytes(self) -> int:
        """Total size of the warm images backing this campaign."""
        return sum(image["bytes"] for image in self.images)

    def to_jsonable(self) -> Dict:
        """A JSON-ready dict of the whole campaign (stable ordering)."""
        return {
            "app": self.app, "variant": self.variant,
            "warm_checkpoints": self.warm_checkpoints,
            "interval_ns": self.interval_ns,
            "cold": self.cold, "workers": self.workers,
            "parallel": self.parallel,
            "wall_seconds": self.wall_seconds,
            "images": self.images,
            "outcomes": self.outcomes,
            "profile": self.profile,
            "digests": self.digests,
        }


def _emit(tracer: Optional[Tracer], name: str, **fields) -> None:
    """snap.* events ride the svc convention: outside simulated time."""
    if tracer is not None and tracer.enabled:
        tracer.emit(0, "snap", name, **fields)


def _warm_image(app: str, variant: str, run_kwargs: Dict,
                warm_checkpoints: int, cache,
                tracer: Optional[Tracer],
                hybrid: Optional[float],
                digest: bool = False) -> Tuple[bytes, Dict]:
    """The pickled warm image of one configuration, store-backed.

    A store hit skips the warm-up and emits ``snap.restore``; a miss
    warms a machine, captures it, stores the image (when a store is
    in use), and emits ``snap.capture``.  A digesting campaign needs
    the warm-up chain *inside* the image; a hit stored by an
    undigested campaign lacks it, so the image is re-warmed (and the
    entry upgraded) rather than served.
    """
    from repro.harness import store as result_store

    key = result_store.snapshot_key(app, variant, run_kwargs,
                                    warm_checkpoints)
    if cache is not None:
        entry = cache.get(key)
        if (entry is not None and entry.kind == result_store.KIND_SNAPSHOT
                and entry.has_artifact(result_store.SNAPSHOT_ARTIFACT)):
            start = time.perf_counter()
            image = entry.read_artifact(result_store.SNAPSHOT_ARTIFACT)
            if digest and pickle.loads(image).get("digest") is None:
                image = None  # undigested image: re-warm and upgrade
            if image is not None:
                _emit(tracer, "snap.restore", key=key, bytes=len(image),
                      dur_ms=int((time.perf_counter() - start) * 1000))
                return image, {"hybrid_fraction": hybrid, "key": key,
                               "bytes": len(image), "cached": True}
    start = time.perf_counter()
    machine = warm_machine(app, variant, run_kwargs, warm_checkpoints,
                           digest=digest)
    image = pickle.dumps(machine.snapshot(),
                         protocol=pickle.HIGHEST_PROTOCOL)
    _emit(tracer, "snap.capture", key=key, bytes=len(image),
          epoch=warm_checkpoints,
          dur_ms=int((time.perf_counter() - start) * 1000))
    if cache is not None:
        cache.put(key, result_store.KIND_SNAPSHOT,
                  {"app": app, "variant": variant,
                   "warm_checkpoints": warm_checkpoints,
                   "commit_times": list(
                       machine.checkpointing.commit_times),
                   "image_bytes": len(image)},
                  artifacts={result_store.SNAPSHOT_ARTIFACT: image})
    return image, {"hybrid_fraction": hybrid, "key": key,
                   "bytes": len(image), "cached": False}


def run_campaign(app: str = "fft", variant: str = "cp_parity",
                 *, warm_checkpoints: int = 2,
                 lost_nodes: Sequence[Optional[int]] = DEFAULT_LOST_NODES,
                 detect_fractions: Sequence[float] = DEFAULT_DETECT_FRACTIONS,
                 hybrid_fractions: Optional[Sequence[float]] = None,
                 scale: float = 1.0, n_procs: int = 16,
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 machine_config=None,
                 cache_dir: Optional[str] = None,
                 cache_max_bytes: Optional[int] = None,
                 workers: Optional[int] = None, serial: bool = False,
                 cold: bool = False,
                 tracer: Optional[Tracer] = None,
                 profile: bool = False,
                 digest: bool = False,
                 **revive_overrides) -> CampaignResult:
    """Run a fault campaign: one warm-up, many forked recoveries.

    The grid is ``lost_nodes`` × ``detect_fractions``; passing
    ``hybrid_fractions`` adds an outer axis where each fraction is a
    ``mirrored_fraction`` override — different machine geometry, so
    each fraction warms (or fetches) its own image.  ``cache_dir``
    persists warm images in a :class:`~repro.harness.store.ResultStore`
    so repeated campaigns over the same configuration skip straight to
    the fork.  ``cold=True`` re-simulates the warm-up inside every
    scenario instead — same outcomes by the snapshot oracle, used as
    the baseline of the ``CAMPAIGN_MIN_SPEEDUP`` perf gate.

    ``tracer`` observes the campaign itself (``snap.*`` events); it is
    *not* threaded into the simulated machines, so warm images and
    scenario outcomes stay byte-identical traced or not.

    ``profile=True`` installs a host-time profiler in every scenario
    machine (after warm-up / restore, so cold and forked profile the
    same work) and merges the per-scenario snapshots into
    ``result.profile`` in scenario order.  Outcomes are unaffected —
    wall-clock attribution never enters an outcome dict.

    ``digest=True`` records the determinism-observatory chain in every
    scenario: forked scenarios resume the chain carried inside the warm
    image, cold scenarios recompute it from scratch, and both close
    with one on-demand window fingerprinting the recovered state.  The
    per-scenario chains land in ``result.digests`` in scenario order —
    forked and cold campaigns over the same grid must produce
    identical lists (the snapshot oracle, made checkable).
    """
    if warm_checkpoints < 1:
        raise ValueError("warm_checkpoints must be >= 1")
    run_kwargs = dict(scale=scale, n_procs=n_procs,
                      interval_ns=interval_ns,
                      machine_config=machine_config)
    run_kwargs.update(revive_overrides)
    hybrids: List[Optional[float]] = (list(hybrid_fractions)
                                      if hybrid_fractions else [None])
    scenarios = campaign_scenarios(lost_nodes, detect_fractions, hybrids)

    cache = None
    if cache_dir is not None:
        from repro.harness.store import ResultStore

        cache = ResultStore(cache_dir, max_bytes=cache_max_bytes)

    start = time.perf_counter()
    images: Dict[Optional[float], Optional[bytes]] = {}
    image_meta: List[Dict] = []
    if not cold:
        for hybrid in hybrids:
            kwargs = _hybrid_kwargs(run_kwargs,
                                    {"hybrid_fraction": hybrid})
            image, meta = _warm_image(app, variant, kwargs,
                                      warm_checkpoints, cache, tracer,
                                      hybrid, digest=digest)
            images[hybrid] = image
            image_meta.append(meta)
        fork_key = image_meta[0]["key"] if image_meta else ""
        _emit(tracer, "snap.fork", key=fork_key,
              scenarios=len(scenarios))
    else:
        images = {hybrid: None for hybrid in hybrids}

    ctx = {"app": app, "variant": variant, "run_kwargs": run_kwargs,
           "warm_checkpoints": warm_checkpoints, "images": images,
           "profile": profile, "digest": digest}
    todo = list(enumerate(scenarios))
    indexed: Dict[int, Dict] = {}
    profiles: Dict[int, Optional[Dict]] = {}
    digests: Dict[int, Optional[Dict]] = {}

    from repro.harness.parallel import default_workers

    n_workers = (workers if workers is not None
                 else default_workers(len(todo)))
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    use_pool = not serial and n_workers > 1 and len(todo) > 1
    ran_parallel = False
    if use_pool:
        try:
            import multiprocessing as mp

            with mp.Pool(processes=n_workers, initializer=_init_worker,
                         initargs=(ctx,)) as pool:
                for index, outcome, snapshot, chain in pool.imap_unordered(
                        _run_scenario, todo):
                    indexed[index] = outcome
                    profiles[index] = snapshot
                    digests[index] = chain
            ran_parallel = True
        except (OSError, ImportError, PermissionError) as exc:
            warnings.warn(
                f"parallel campaign unavailable ({exc!r}); "
                f"falling back to serial execution", RuntimeWarning,
                stacklevel=2)
            indexed.clear()
            profiles.clear()
            digests.clear()
    if not ran_parallel:
        _init_worker(ctx)
        for index, outcome, snapshot, chain in map(_run_scenario, todo):
            indexed[index] = outcome
            profiles[index] = snapshot
            digests[index] = chain
        n_workers = 1

    outcomes = [indexed[index] for index in range(len(scenarios))]
    merged_profile = None
    if profile:
        from repro.obs.telemetry import merge_profiles

        # Scenario order, never completion order — the merged profile
        # must be deterministic for a given campaign grid.
        merged_profile = merge_profiles(
            profiles[index] for index in range(len(scenarios)))
    # Scenario order for the same reason: forked and cold campaigns
    # over the same grid must produce comparable digest lists.
    merged_digests = ([digests[index] for index in range(len(scenarios))]
                      if digest else None)
    return CampaignResult(app=app, variant=variant,
                          warm_checkpoints=warm_checkpoints,
                          interval_ns=interval_ns, outcomes=outcomes,
                          images=image_meta,
                          wall_seconds=time.perf_counter() - start,
                          workers=n_workers, parallel=ran_parallel,
                          cold=cold, profile=merged_profile,
                          digests=merged_digests)
