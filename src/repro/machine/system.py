"""The machine: node assembly, ReVive wiring, run loop, and snapshots.

``Machine`` is the top-level simulation object.  Build one from a
:class:`~repro.machine.config.MachineConfig` (plus, optionally, a
:class:`~repro.core.config.ReViveConfig` — omit it for the baseline
system with no recovery support), attach a workload, and ``run()``.

Reserved memory: the first data page of every node is the *system
page* (execution contexts are checkpointed into its first lines); with
ReVive enabled, the next ``log_bytes_per_node`` worth of data pages
form the node's log region.  Both are ordinary parity-protected pages.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional

from repro.coherence.protocol import ProtocolEngine
from repro.core.checkpoint import CheckpointCoordinator
from repro.core.config import ReViveConfig
from repro.core.controller import ReViveController
from repro.core.log import MemoryLog
from repro.core.parity import ParityEngine
from repro.cpu.processor import Processor
from repro.machine.config import MachineConfig
from repro.machine.node import Node
from repro.memory.geomcache import GeometryCache
from repro.memory.layout import AddressSpace, HybridGeometry, ParityGeometry
from repro.network.network import Network
from repro.obs.profiling import Profiler
from repro.obs.spans import NULL_SPANS, SpanRecorder
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class _BarrierState:
    """Arrival bookkeeping for one workload barrier instance."""

    __slots__ = ("arrived", "release_time")

    def __init__(self) -> None:
        self.arrived: Dict[int, int] = {}
        self.release_time: Optional[int] = None


class Machine:
    """A CC-NUMA multiprocessor, optionally with ReVive."""

    def __init__(self, config: MachineConfig,
                 revive_config: Optional[ReViveConfig] = None,
                 tracer: Optional[Tracer] = None,
                 profiler: Optional[Profiler] = None) -> None:
        self.config = config
        self.revive_config = revive_config
        self.stats = StatsRegistry()
        #: Trace sink shared by every component (``NULL_TRACER`` when
        #: tracing is off); install one later with :meth:`install_tracer`.
        self.tracer = NULL_TRACER
        #: Transaction span recorder (``NULL_SPANS`` when tracing is
        #: off — every span site guards on ``spans.enabled``).
        self.spans = NULL_SPANS
        #: Wall-clock profiler (None = profiling off, zero overhead).
        #: Set through :meth:`install_profiler` below so the engine's
        #: attributed dispatch loop and the fast-path tier timers see it.
        self.profiler = None
        #: Determinism-observatory recorder (None = digesting off,
        #: zero overhead); install one with :meth:`install_digests`.
        self.digests = None
        #: Test-only divergence injection (the determinism observatory's
        #: smoke/bisection hook): when set to N, the Nth store value is
        #: deliberately flipped — a single, deterministic, localized
        #: divergence for ``repro diff --bisect`` to find.  Read from
        #: ``REPRO_PERTURB_STORE`` so the perturbed run is otherwise
        #: identical to the reference; never set in normal use.
        self.perturb_store = (
            int(os.environ.get("REPRO_PERTURB_STORE", "0")) or None)
        self.network = Network(config, self.stats)
        group_size = revive_config.parity_group_size if revive_config else 0
        if revive_config is not None and revive_config.mirrored_fraction:
            self.geometry = HybridGeometry(
                config, group_size,
                mirrored_stripes=int(revive_config.mirrored_fraction
                                     * config.pages_per_node))
        else:
            self.geometry = ParityGeometry(config, group_size)

        log_pages = 0
        io_pages = 0
        if revive_config is not None:
            log_pages = math.ceil(revive_config.log_bytes_per_node
                                  / config.page_size)
            io_pages = revive_config.io_buffer_pages
        self._log_pages = log_pages
        self._io_pages = io_pages
        # Reserved data pages per node: [system page, log..., io...].
        self.addr_space = AddressSpace(
            config, self.geometry,
            reserved_pages_per_node=1 + log_pages + io_pages)
        # Machine-owned memoized geometry, shared by the parity engine,
        # log path, and protocol home lookup.  A rebuilt machine gets a
        # fresh cache; recovery invalidates it (docs/PERFORMANCE.md).
        self.geom_cache = GeometryCache(self.addr_space, self.geometry)
        self.nodes: List[Node] = [Node(config, n)
                                  for n in range(config.n_nodes)]
        self.protocol = ProtocolEngine(self)
        self.simulator = Simulator()
        self.processors: List[Processor] = []
        self.workload = None
        self._store_counter = 0
        self._barriers: Dict[int, _BarrierState] = {}
        self.snapshots: Dict[int, Dict[int, Dict[int, int]]] = {}

        self.revive: Optional[ReViveController] = None
        self.checkpointing: Optional[CheckpointCoordinator] = None
        if revive_config is not None:
            parity = ParityEngine(self, self.geometry)
            logs = {
                n: MemoryLog(n, self.log_region_lines(n), config.line_size,
                             l_bit_capacity=revive_config.l_bit_capacity)
                for n in range(config.n_nodes)
            }
            self.revive = ReViveController(self, parity, logs)
            if revive_config.checkpoint_interval_ns is not None:
                self.checkpointing = CheckpointCoordinator(
                    self, revive_config.checkpoint_interval_ns)
                self.simulator.set_global_hook(
                    revive_config.checkpoint_interval_ns,
                    self._checkpoint_hook)
            if revive_config.debug_snapshots:
                self.take_snapshot(0)
        self.io_manager = None
        if revive_config is not None and io_pages:
            from repro.core.io import IOManager

            self.io_manager = IOManager(self)
        if tracer is not None:
            self.install_tracer(tracer)
        if profiler is not None:
            self.install_profiler(profiler)

    def install_profiler(self, profiler: Optional[Profiler]) -> None:
        """Point the host-time attribution machinery at ``profiler``.

        Mirrors :meth:`install_tracer`: sets the machine's own
        ``profiler`` (the component timers around ``machine.run`` /
        ``checkpoint`` / ``recovery``), hands it to the simulator as
        ``host_prof`` (per-actor dispatch attribution, see
        ``sim/engine.py``), and drops any compiled fast-path closures
        so the next batch re-binds with (or without) the protocol
        fallout timers.  Pass ``None`` to detach and return to the
        zero-overhead dispatch loop.
        """
        self.profiler = profiler
        self.simulator.host_prof = profiler
        for proc in self.processors:
            proc.invalidate_fastpath()

    def install_tracer(self, tracer: Tracer) -> None:
        """Point every instrumented component at ``tracer``.

        Propagates to the simulator (``sim.*`` events), each node's
        directory (``coh.*``), and each ReVive log (``log.*``); the
        machine's own ``tracer`` attribute serves the checkpoint and
        recovery instrumentation (``ckpt.*`` / ``recovery.*``) and the
        processors' fast-path ``mem.*`` batch events.  Call any time
        before (or between) ``run()`` calls; pass ``NULL_TRACER`` to
        detach.
        """
        self.tracer = tracer
        self.spans = SpanRecorder(tracer, metrics=self.stats)
        self.simulator.tracer = tracer
        for node in self.nodes:
            node.directory.tracer = tracer
        if self.revive is not None:
            for log in self.revive.logs.values():
                log.tracer = tracer
        # Compiled fast-path closures captured the previous tracer at
        # bind time; drop them so the next batch re-binds against the
        # new one (otherwise a tracer installed mid-run would silently
        # miss every mem.batch event from already-bound processors).
        for proc in self.processors:
            proc.invalidate_fastpath()

    def install_digests(self, recorder) -> None:
        """Attach a determinism-observatory recorder (obs/digest.py).

        The machine records one digest window per checkpoint boundary
        (inside :meth:`_checkpoint_hook`, after the queue rebuild — the
        quiescent point) and callers may add on-demand windows with
        :meth:`record_digest`.  No dispatch path changes: digesting
        costs nothing between checkpoints.  Pass ``None`` to detach.
        Install *before* the first window should be recorded; the
        conventional window 0 (initial state, epoch 0) is the caller's
        to record, e.g. ``machine.record_digest()`` right before
        ``run()`` (harness/runner.py does this for ``digest=True``).
        """
        self.digests = recorder

    def record_digest(self, ts: Optional[int] = None):
        """Record one digest window now; returns it (or ``None`` when off).

        ``ts`` defaults to the current simulated time; the window's
        epoch is the currently committed checkpoint epoch (0 for
        machines without checkpointing).
        """
        if self.digests is None:
            return None
        from repro.machine.digest import digest_components

        epoch = (self.checkpointing.current_epoch()
                 if self.checkpointing is not None else 0)
        return self.digests.record(
            digest_components(self), epoch=epoch,
            ts=self.simulator.now if ts is None else ts)

    # -- reserved regions -----------------------------------------------------

    def system_page(self, node: int) -> int:
        """Physical page index of the node's system (context) page."""
        return self.addr_space.reserved_pages[node][0]

    def context_line(self, node: int) -> int:
        """Line in which node ``node`` checkpoints its execution context."""
        return self.addr_space.page_base(node, self.system_page(node))

    def context_lines_of(self, node: int) -> List[int]:
        """Line addresses holding the node's execution context."""
        return [self.context_line(node)]

    def log_region_pages(self, node: int) -> List[int]:
        """Physical page indices of the node's log region."""
        if self.revive_config is None:
            return []
        return self.addr_space.reserved_pages[node][1:1 + self._log_pages]

    def io_region_pages(self, node: int) -> List[int]:
        """Physical page indices of the node's I/O buffer region."""
        if self.revive_config is None or not self._io_pages:
            return []
        start = 1 + self._log_pages
        return self.addr_space.reserved_pages[node][start:start
                                                    + self._io_pages]

    def io_region_lines(self, node: int) -> List[int]:
        """Line addresses of the node's I/O buffer region."""
        lines: List[int] = []
        for ppage in self.io_region_pages(node):
            lines.extend(self.addr_space.lines_of_page(node, ppage))
        return lines

    def reserved_pages_of(self, node: int) -> List[int]:
        """System page + log pages — parity-protected like any data."""
        return list(self.addr_space.reserved_pages[node])

    def log_region_lines(self, node: int) -> List[int]:
        """Line addresses of the node's log region."""
        lines: List[int] = []
        for ppage in self.log_region_pages(node):
            lines.extend(self.addr_space.lines_of_page(node, ppage))
        return lines

    # -- workload attachment ------------------------------------------------------

    def attach_workload(self, workload) -> None:
        """Create one processor per workload thread and schedule them."""
        if self.processors:
            raise RuntimeError("a workload is already attached")
        n_procs = workload.n_procs
        if n_procs > self.config.n_nodes:
            raise ValueError(
                f"workload wants {n_procs} processors; machine has "
                f"{self.config.n_nodes}")
        self.workload = workload
        for proc_id in range(n_procs):
            proc = Processor(self, proc_id, workload.stream_for(proc_id))
            self.processors.append(proc)
            self.simulator.schedule(0, proc)

    # -- run loop -----------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Advance the simulation; returns the final simulated time.

        With a profiler installed, the whole call is timed under the
        ``machine.run`` component and the engine's cumulative
        activation count is recorded for the events/sec figure.
        """
        if self.profiler is None:
            return self.simulator.run(until=until)
        with self.profiler.timer("machine.run"):
            final = self.simulator.run(until=until)
        self.profiler.note_events(self.simulator.activations)
        return final

    def request_early_checkpoint(self) -> None:
        """Pull the next global checkpoint forward to *now*.

        Called by the ReVive controller under log pressure: committing
        a checkpoint reclaims the oldest retained epoch's slots before
        the log overflows.
        """
        if self.checkpointing is not None:
            self.stats.counter("ckpt.emergency_requests").add()
            self.simulator.expedite_hook(self.simulator.now)

    def _checkpoint_hook(self, trigger_time: int) -> int:
        if self.profiler is None:
            commit = self.checkpointing.run_checkpoint(trigger_time)
        else:
            with self.profiler.timer("checkpoint"):
                commit = self.checkpointing.run_checkpoint(trigger_time)

        def reschedule(actor):
            """Hook-internal: new activation time for one actor."""
            if getattr(actor, "finished", False):
                return None
            actor.time = max(actor.time, commit)
            return actor.time

        self.simulator.drain_rebuild(reschedule)
        if self.digests is not None:
            # Record the digest window at the quiescent point right
            # after the commit barrier — every actor is rescheduled,
            # no message is mid-flight, and the epoch just advanced.
            self.record_digest(ts=commit)
        return self.checkpointing.next_trigger_after(commit)

    def note_processor_finished(self, proc: Processor) -> None:
        """Bookkeeping callback when a processor retires."""
        self.stats.counter("proc.finished").add()

    def note_warmup_done(self) -> None:
        """Reset rate statistics at the end of a workload's warmup phase.

        Idempotent per run: only the first caller resets.  Cache
        hit/miss counters and traffic breakdowns restart so steady-state
        rates are reported; functional state (memory, logs, parity) and
        simulated time are untouched.
        """
        if getattr(self, "_warmup_reset_done", False):
            return
        self._warmup_reset_done = True
        self.warmup_end_time = self.simulator.now
        if self.tracer.enabled:
            # Mark the reset in the trace so stream consumers (monitors,
            # repro report) can partition pre/steady-state exactly like
            # the live statistics below do.
            self.tracer.emit(self.simulator.now, "sim", "sim.warmup_done")
        if self.revive is not None:
            # First-touch initialisation logs every page once; restart
            # the log high-water mark so Figure 11 reports steady state.
            for log in self.revive.logs.values():
                log.max_bytes_used = 0
        for node in self.nodes:
            node.hierarchy.l1.hits = node.hierarchy.l1.misses = 0
            node.hierarchy.l2.hits = node.hierarchy.l2.misses = 0
        self.stats.network_traffic.reset()
        self.stats.memory_traffic.reset()
        for counter in self.stats.counters():
            counter.reset()
        for proc in self.processors:
            proc.mem_refs = 0

    @property
    def execution_time(self) -> int:
        """Completion time of the slowest processor."""
        times = [p.finish_time for p in self.processors
                 if p.finish_time is not None]
        return max(times) if times else self.simulator.now

    @property
    def steady_execution_time(self) -> int:
        """Execution time excluding the first-touch warmup phase.

        The paper's applications run long enough that initialisation is
        negligible; our scaled analogs initialise a proportionally
        larger share, so overhead comparisons use post-warmup time.
        """
        return max(0, self.execution_time
                   - getattr(self, "warmup_end_time", 0))

    @property
    def all_finished(self) -> bool:
        """True when every processor has retired."""
        return all(p.finished for p in self.processors)

    def total_mem_refs(self) -> int:
        """Sum of references executed by all processors."""
        return sum(p.mem_refs for p in self.processors)

    # -- store values ------------------------------------------------------------------

    def next_store_value(self) -> int:
        """Globally unique value for each store (verification aid)."""
        self._store_counter += 1
        if self._store_counter == self.perturb_store:
            # Test-only injected divergence (see ``perturb_store``):
            # offset keeps the flipped value outside the counter range
            # so the perturbation never collides with a later store.
            return self._store_counter + (1 << 32)
        return self._store_counter

    # -- workload barriers ----------------------------------------------------------------

    def _alive_procs(self) -> int:
        return sum(1 for p in self.processors if not p.killed)

    def barrier_arrive(self, barrier_index: int, proc_id: int,
                       time: int) -> Optional[int]:
        """Register arrival; returns the release time if this completes it."""
        state = self._barriers.setdefault(barrier_index, _BarrierState())
        state.arrived[proc_id] = time
        if len(state.arrived) >= self._alive_procs():
            state.release_time = (max(state.arrived.values())
                                  + self.config.barrier_ns)
            return state.release_time
        return None

    def barrier_release_time(self, barrier_index: int) -> Optional[int]:
        """Release time of a workload barrier, if formed."""
        state = self._barriers.get(barrier_index)
        if state is None:
            return None
        if state.release_time is None and \
                len(state.arrived) >= self._alive_procs():
            # A participant was killed after this barrier formed.
            state.release_time = (max(state.arrived.values())
                                  + self.config.barrier_ns)
        return state.release_time

    # -- checkpoints and snapshots ------------------------------------------------------------

    def commit_time_of_epoch(self, epoch: int) -> int:
        """Absolute commit time of checkpoint ``epoch``."""
        if self.checkpointing is None:
            return 0
        return self.checkpointing.commit_times[epoch]

    def truncate_checkpoint_history(self, target_epoch: int) -> None:
        """After a rollback, forget commits newer than the target."""
        if self.checkpointing is not None:
            del self.checkpointing.commit_times[target_epoch + 1:]
        for epoch in [e for e in self.snapshots if e > target_epoch]:
            del self.snapshots[epoch]

    def take_snapshot(self, epoch: int) -> None:
        """Photograph all memory (golden reference for recovery tests)."""
        self.snapshots[epoch] = {node.node_id: dict(node.memory.lines())
                                 for node in self.nodes}

    @staticmethod
    def _barrier_state() -> _BarrierState:
        """Fresh barrier bookkeeping record (snapshot restore hook)."""
        return _BarrierState()

    def snapshot(self) -> Dict:
        """Plain-data image of all mutable state (docs/SNAPSHOTS.md).

        The image is picklable and self-describing
        (:data:`~repro.machine.snapshot.SNAPSHOT_VERSION`); apply it
        with :meth:`restore` on a machine built with the same configs
        and workload — e.g. in another worker process of a fault
        campaign (``repro campaign``).
        """
        from repro.machine.snapshot import capture_machine

        return capture_machine(self)

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot`; see machine/snapshot.py."""
        from repro.machine.snapshot import restore_machine

        restore_machine(self, state)

    # -- diagnostics ---------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Machine-wide consistency scan; returns violation descriptions.

        Checks the coherence invariants (single writer per line,
        directory/cache agreement) and — when ReVive is enabled — the
        parity invariant (every parity line equals the XOR of its
        stripe).  Intended for tests and debugging at quiescent points;
        it is O(resident lines + touched pages).
        """
        from repro.cache.cache import MODIFIED
        from repro.coherence.directory import DIR_EXCLUSIVE, DIR_SHARED

        violations: List[str] = []
        holders: Dict[int, List[int]] = {}
        dirty: Dict[int, List[int]] = {}
        for node in self.nodes:
            for line in node.hierarchy.l2.resident_lines():
                holders.setdefault(line.addr, []).append(node.node_id)
                if line.state == MODIFIED:
                    dirty.setdefault(line.addr, []).append(node.node_id)
        for addr, writers in dirty.items():
            if len(writers) > 1:
                violations.append(
                    f"line {addr:#x}: multiple dirty copies {writers}")
        for addr, nodes_holding in holders.items():
            home = self.nodes[self.addr_space.node_of(addr)]
            entry = home.directory.peek(addr)
            if entry is None:
                violations.append(
                    f"line {addr:#x}: cached without a directory entry")
                continue
            if entry.state == DIR_EXCLUSIVE:
                if set(nodes_holding) - {entry.owner}:
                    violations.append(
                        f"line {addr:#x}: exclusive at {entry.owner} but "
                        f"cached by {sorted(nodes_holding)}")
            elif entry.state == DIR_SHARED:
                if addr in dirty:
                    violations.append(
                        f"line {addr:#x}: dirty while directory-shared")
                if set(nodes_holding) - entry.sharers:
                    violations.append(
                        f"line {addr:#x}: cached outside the sharer set")
            else:
                violations.append(
                    f"line {addr:#x}: cached but directory uncached")
        if self.revive is not None:
            for parity_node, ppage in self.revive.parity.check_all_parity():
                violations.append(
                    f"parity page {ppage} of node {parity_node} is "
                    f"inconsistent with its stripe")
        return violations

    def utilization_report(self) -> Dict[str, float]:
        """Mean resource utilisations over the elapsed simulated time."""
        elapsed = max(1, self.simulator.now)
        memory = [node.mem_timing.utilization(elapsed)
                  for node in self.nodes]
        directory = [node.dir_resource.utilization(elapsed)
                     for node in self.nodes]
        return {
            "memory_bus_mean": sum(memory) / len(memory),
            "memory_bus_max": max(memory),
            "directory_mean": sum(directory) / len(directory),
            "network_links_mean": self.network.link_utilization(elapsed),
        }

    def verify_against_snapshot(self, epoch: int) -> List[int]:
        """Compare memory with a snapshot; returns mismatching lines.

        Log regions — and the parity pages covering them — are
        excluded: the log's own contents are bookkeeping and
        legitimately differ after a rollback (commit records, head
        movement).  Everything else — data, contexts, and parity — must
        match bit-for-bit.
        """
        if epoch not in self.snapshots:
            raise KeyError(f"no snapshot for epoch {epoch} "
                           "(enable debug_snapshots)")
        log_lines = set()
        for node in self.nodes:
            log_lines.update(self.log_region_lines(node.node_id))
            log_lines.update(self.io_region_lines(node.node_id))
            bookkeeping_pages = (self.log_region_pages(node.node_id)
                                 + self.io_region_pages(node.node_id))
            for ppage in bookkeeping_pages:
                parity_node, parity_page = self.geometry.parity_location(
                    node.node_id, ppage)
                log_lines.update(self.addr_space.lines_of_page(parity_node,
                                                               parity_page))
        mismatches: List[int] = []
        for node in self.nodes:
            golden = self.snapshots[epoch][node.node_id]
            current = dict(node.memory.lines())
            for line_addr in set(golden) | set(current):
                if line_addr in log_lines:
                    continue
                if golden.get(line_addr, 0) != current.get(line_addr, 0):
                    mismatches.append(line_addr)
        return sorted(mismatches)
