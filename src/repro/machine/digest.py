"""Per-component machine fingerprints (the determinism observatory).

:func:`digest_components` names and fingerprints every stateful
component of a machine, mirroring the decomposition of
``machine/snapshot.py``'s :func:`~repro.machine.snapshot.capture_machine`
so a digest divergence points at the same unit a snapshot diff would.
Component names are stable identifiers — ``repro diff`` reports them
and the chain lint recomputes machine digests over them:

========================  =====================================================
``engine``                event queue, clock, hook trigger, activation count
``network``               in-flight messages and link calendars
``layout``                address-space allocator state
``metrics``               the full statistics registry (``state()``)
``processors``            every processor's stream cursor and counters
``machine``               store counter, barriers, golden images, warmup flags
``node<i>.caches``        node *i*'s L1+L2 hierarchy
``node<i>.directory``     node *i*'s directory entries
``node<i>.memory``        node *i*'s memory lines
``node<i>.timing``        node *i*'s DRAM calendar + directory occupancy
``node<i>.log``           node *i*'s ReVive memory log        (ReVive only)
``controller``            ReVive controller write-combine fill (ReVive only)
``parity``                distributed parity groups            (ReVive only)
``checkpoints``           checkpoint commit history            (cp variants)
``io``                    pending/released I/O records         (when present)
========================  =====================================================

Everything host-side is deliberately absent — tracer sequence numbers,
span transaction ids, profilers, and the digest chain itself — so the
fingerprint is a pure function of deterministic simulation state:
identical across execution tiers (snapshots are tier-independent,
docs/SNAPSHOTS.md), across sweep parallelism, and across
snapshot/restore boundaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.obs.digest import component_digest, digest_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine


def digest_components(machine: "Machine") -> Dict[str, str]:
    """Fingerprint every stateful component of ``machine`` by name."""
    components = {
        "engine": component_digest(machine.simulator),
        "network": component_digest(machine.network),
        "layout": component_digest(machine.addr_space),
        "metrics": component_digest(machine.stats),
        "processors": digest_value(
            [proc.snapshot() for proc in machine.processors]),
        "machine": digest_value({
            "store_counter": machine._store_counter,
            "barriers": [[index, sorted(barrier.arrived.items()),
                          barrier.release_time]
                         for index, barrier
                         in sorted(machine._barriers.items())],
            "golden": machine.snapshots,
            "warmup_reset_done": getattr(machine, "_warmup_reset_done",
                                         False),
            "warmup_end_time": getattr(machine, "warmup_end_time", None),
        }),
    }
    for node in machine.nodes:
        prefix = f"node{node.node_id}"
        components[f"{prefix}.caches"] = component_digest(node.hierarchy)
        components[f"{prefix}.directory"] = component_digest(node.directory)
        components[f"{prefix}.memory"] = component_digest(node.memory)
        components[f"{prefix}.timing"] = digest_value(
            {"mem": {"banks": node.mem_timing.banks.digest_state()},
             "dir": node.dir_resource.digest_state()})
    if machine.revive is not None:
        for node_id, log in sorted(machine.revive.logs.items()):
            components[f"node{node_id}.log"] = component_digest(log)
        components["controller"] = component_digest(machine.revive)
        components["parity"] = component_digest(machine.revive.parity)
    if machine.checkpointing is not None:
        components["checkpoints"] = component_digest(machine.checkpointing)
    if machine.io_manager is not None:
        components["io"] = component_digest(machine.io_manager)
    return components
