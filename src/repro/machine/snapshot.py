"""Whole-machine snapshot capture and restore (docs/SNAPSHOTS.md).

A machine snapshot is a plain-data (picklable, no object references)
image of every mutable simulation variable: the event queue, each
node's caches/directory/memory/timing calendars, the network, the
address space, the ReVive logs and checkpoint history, the processors'
stream cursors, and the statistics registry.  Restoring the image onto
a *freshly built* machine of the same configuration — same
:class:`~repro.machine.config.MachineConfig`, same
:class:`~repro.core.config.ReViveConfig`, same workload — resumes the
simulation bit-identically: traces, ledgers, and counters continue
exactly as if the run had never been interrupted (the roundtrip oracle
in ``tests/test_snapshot_oracle.py`` enforces this).

What is *not* serialized, and why it is safe:

* **Actor closures.**  The event queue stores ``(time, seq, actor_id)``
  descriptors; the actor registry is rebuilt deterministically because
  ``attach_workload`` schedules processors in node order.
* **Workload streams.**  Streams are pure functions of (workload spec,
  proc id); each processor records how many chunks it consumed and
  restore replays that many (:meth:`repro.workloads.base.Workload.replay_stream`).
* **Compiled fast paths.**  Batch closures (both the scalar fast path
  and the columnar batch engine) flush their local counters at chunk
  and deadline boundaries — exactly the points where the machine is
  quiescent enough to snapshot — and are re-compiled lazily after a
  restore.  The columnar engine additionally caches derived columns
  (line addresses, L1 stack distances, L2 purity windows) and defers
  L2 LRU refreshes; cache ``sync_hook``s force those pending refreshes
  into the real dicts before ``snapshot()`` reads them, and ``restore``
  drops the hooks so the restored dict state is authoritative.  Images
  are therefore tier-independent: a snapshot captured under one
  execution tier resumes bit-identically under any other
  (``tests/test_columnar.py::TestSnapshotTierSwitch``).
* **Static geometry.**  Parity layout, reserved regions, and the
  memoized geometry cache are pure functions of the configs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.system import Machine

#: Bump when the snapshot layout changes; stored images carry it and a
#: mismatch on restore fails loudly instead of resuming garbage.
SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot cannot be applied to this machine."""


def capture_machine(machine: "Machine") -> Dict:
    """Build the plain-data image of the machine's mutable state."""
    state: Dict = {
        "version": SNAPSHOT_VERSION,
        "n_nodes": machine.config.n_nodes,
        "sim": machine.simulator.snapshot(),
        "nodes": [node.snapshot() for node in machine.nodes],
        "network": machine.network.snapshot(),
        "addr_space": machine.addr_space.snapshot(),
        "stats": machine.stats.state(),
        "processors": [proc.snapshot() for proc in machine.processors],
        "store_counter": machine._store_counter,
        "barriers": [[index, list(barrier.arrived.items()),
                      barrier.release_time]
                     for index, barrier in machine._barriers.items()],
        "golden": {epoch: {node: dict(lines)
                           for node, lines in by_node.items()}
                   for epoch, by_node in machine.snapshots.items()},
        "warmup_reset_done": getattr(machine, "_warmup_reset_done", False),
        "warmup_end_time": getattr(machine, "warmup_end_time", None),
        "trace_seq": getattr(machine.tracer, "_seq", 0),
        "span_next_txn": getattr(machine.spans, "next_txn", 1),
        "digest": (machine.digests.chain.to_jsonable()
                   if machine.digests is not None else None),
        "revive": None,
        "checkpointing": None,
        "io": None,
    }
    if machine.revive is not None:
        state["revive"] = machine.revive.snapshot()
        state["parity"] = machine.revive.parity.snapshot()
    if machine.checkpointing is not None:
        state["checkpointing"] = machine.checkpointing.snapshot()
    if machine.io_manager is not None:
        state["io"] = machine.io_manager.snapshot()
    return state


def restore_machine(machine: "Machine", state: Dict) -> None:
    """Overlay a captured image onto a compatibly-built machine.

    The machine must have been built with the same configs and have the
    same workload attached (so the actor registry and reserved-region
    geometry match).  Mutates every component in place and invalidates
    the processors' compiled fast paths.
    """
    version = state.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} != supported {SNAPSHOT_VERSION}")
    if state["n_nodes"] != machine.config.n_nodes:
        raise SnapshotError(
            f"snapshot is for {state['n_nodes']} nodes; machine has "
            f"{machine.config.n_nodes}")
    if len(state["processors"]) != len(machine.processors):
        raise SnapshotError(
            f"snapshot has {len(state['processors'])} processors; "
            f"machine has {len(machine.processors)} (attach the same "
            f"workload before restoring)")
    if (state["revive"] is None) != (machine.revive is None):
        raise SnapshotError("snapshot and machine disagree on ReVive")

    machine.simulator.restore(state["sim"])
    for node, node_state in zip(machine.nodes, state["nodes"]):
        node.restore(node_state)
    machine.network.restore(state["network"])
    machine.addr_space.restore(state["addr_space"])
    machine.stats.restore(state["stats"])
    for proc, proc_state in zip(machine.processors, state["processors"]):
        proc.restore(proc_state)
    machine._store_counter = state["store_counter"]
    machine._barriers.clear()
    for index, arrived, release_time in state["barriers"]:
        barrier = machine._barrier_state()
        barrier.arrived.update(arrived)
        barrier.release_time = release_time
        machine._barriers[index] = barrier
    machine.snapshots.clear()
    machine.snapshots.update(
        {epoch: {node: dict(lines) for node, lines in by_node.items()}
         for epoch, by_node in state["golden"].items()})
    machine._warmup_reset_done = state["warmup_reset_done"]
    if state["warmup_end_time"] is not None:
        machine.warmup_end_time = state["warmup_end_time"]
    if machine.revive is not None:
        machine.revive.restore(state["revive"])
        machine.revive.parity.restore(state["parity"])
    if machine.checkpointing is not None \
            and state["checkpointing"] is not None:
        machine.checkpointing.restore(state["checkpointing"])
    if machine.io_manager is not None and state["io"] is not None:
        machine.io_manager.restore(state["io"])
    # The observability stream continues where the image left off:
    # sequence numbers and span transaction ids resume so a restored
    # run's trace is byte-identical to the uninterrupted one.
    if machine.tracer.enabled:
        machine.tracer._seq = state["trace_seq"]
    if machine.spans.enabled:
        machine.spans.next_txn = state["span_next_txn"]
    # The digest chain resumes the same way (docs/OBSERVABILITY.md,
    # "Determinism observatory"): a digesting machine restored from a
    # digesting run's image continues that run's chain, so the stepped
    # run's chain is identical to the uninterrupted reference's.
    if machine.digests is not None and state.get("digest") is not None:
        from repro.obs.digest import DigestChain

        machine.digests.chain = DigestChain.from_jsonable(state["digest"])
    machine.geom_cache.invalidate()
