"""Machine configuration, mirroring Table 3 of the paper.

Two presets are provided:

* :meth:`MachineConfig.paper` — the paper's simulated system: 16 nodes,
  16KB L1 / 128KB L2, 64B lines, 2-D torus, DDR memory.
* :meth:`MachineConfig.bench` — the same machine scaled a further step
  down (L1 4KB / L2 32KB) so that full-application runs complete at
  Python speeds.  Workload analogs are calibrated against this preset;
  see DESIGN.md §2 for the scaling chain.

All times are integer nanoseconds at a 1 GHz core clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class MachineConfig:
    """Parameters of the modelled CC-NUMA multiprocessor."""

    # --- topology -------------------------------------------------------
    n_nodes: int = 16
    torus_width: int = 4               # 2-D torus of torus_width x torus_height
    torus_height: int = 4

    # --- processor ------------------------------------------------------
    core_ghz: float = 1.0              # 1 cycle == 1 ns
    ipc: float = 3.0                   # sustained IPC of the 6-issue core
    pending_stores: int = 16           # store-buffer depth (WB overlap)
    #: Memory-level parallelism of the out-of-order core: the paper's
    #: 6-issue window with 16 pending loads overlaps misses, so each
    #: miss stalls the (in-order-modelled) processor for only
    #: latency / miss_overlap.  See DESIGN.md §2.
    miss_overlap: float = 2.0

    # --- caches ---------------------------------------------------------
    line_size: int = 64
    l1_size: int = 16 * 1024
    l1_assoc: int = 4
    l1_hit_ns: int = 2
    l2_size: int = 128 * 1024
    l2_assoc: int = 4
    l2_hit_ns: int = 12

    # --- memory ---------------------------------------------------------
    page_size: int = 4096
    mem_row_miss_ns: int = 60          # DRAM access latency on a row miss
    mem_row_hit_ns: int = 20           # sequential/repeat access latency
    mem_banks: int = 16                # banks hide row latency, not bandwidth
    mem_bytes_per_ns: float = 3.2      # data-bus bandwidth (2x PC1600 DDR)
    node_memory_bytes: int = 4 * 1024 * 1024   # simulated DRAM per node

    # --- directory ------------------------------------------------------
    dir_latency_ns: int = 21           # pipelined controller latency
    dir_occupancy_ns: int = 3          # 333 MHz pipeline slot

    # --- network --------------------------------------------------------
    net_base_ns: int = 30              # message transfer time
    net_per_hop_ns: int = 8
    link_bytes_per_ns: float = 3.2     # link bandwidth (serialization)
    ni_bytes_per_ns: float = 3.2       # network-interface bandwidth
    header_bytes: int = 8              # control-message / header size

    # --- synchronization ------------------------------------------------
    barrier_ns: int = 10_000           # 16-proc barrier (Origin 2000 figure)
    interrupt_ns: int = 5_000          # cross-processor interrupt delivery
    context_save_ns: int = 1_000       # storing execution context to memory

    # --- simulation control ---------------------------------------------
    batch_quantum_ns: int = 2_000      # max time skew between processors

    def __post_init__(self) -> None:
        self.validate()

    # -- derived quantities ----------------------------------------------
    # Cached: the geometry fields are fixed after validation, and these
    # are read on the per-reference hot path (docs/PERFORMANCE.md).

    @cached_property
    def lines_per_page(self) -> int:
        """Memory lines per page."""
        return self.page_size // self.line_size

    @cached_property
    def pages_per_node(self) -> int:
        """Physical pages per node."""
        return self.node_memory_bytes // self.page_size

    @cached_property
    def line_offset_bits(self) -> int:
        """Bit width of the within-line offset."""
        return int(math.log2(self.line_size))

    @cached_property
    def page_offset_bits(self) -> int:
        """Bit width of the within-page offset."""
        return int(math.log2(self.page_size))

    def hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes on the 2-D torus."""
        if src == dst:
            return 0
        width, height = self.torus_width, self.torus_height
        sx, sy = src % width, src // width
        dx, dy = dst % width, dst // width
        hx = abs(sx - dx)
        hy = abs(sy - dy)
        return min(hx, width - hx) + min(hy, height - hy)

    def net_latency(self, src: int, dst: int) -> int:
        """No-contention message latency between two nodes."""
        if src == dst:
            return 0
        return self.net_base_ns + self.net_per_hop_ns * self.hops(src, dst)

    def line_message_bytes(self) -> int:
        """Size on the wire of a message carrying one memory line."""
        return self.header_bytes + self.line_size

    def validate(self) -> None:
        """Raise ``ValueError`` on an inconsistent configuration."""
        if self.torus_width * self.torus_height != self.n_nodes:
            raise ValueError(
                f"torus {self.torus_width}x{self.torus_height} does not "
                f"cover {self.n_nodes} nodes")
        for name in ("line_size", "page_size", "l1_size", "l2_size"):
            if not _is_power_of_two(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two")
        if self.page_size % self.line_size != 0:
            raise ValueError("page_size must be a multiple of line_size")
        if self.l1_size > self.l2_size:
            raise ValueError("L1 must not be larger than L2 (inclusive hierarchy)")
        if self.node_memory_bytes % self.page_size != 0:
            raise ValueError("node_memory_bytes must be a multiple of page_size")
        for name in ("n_nodes", "l1_assoc", "l2_assoc", "mem_banks", "ipc"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -- presets -----------------------------------------------------------

    @classmethod
    def paper(cls) -> "MachineConfig":
        """The configuration of Table 3 (16 procs, 16KB L1, 128KB L2)."""
        return cls()

    @classmethod
    def bench(cls) -> "MachineConfig":
        """Scaled-down preset used by the benchmark harness.

        Caches shrink 4x relative to the paper's simulated system and the
        workload analogs shrink their working sets with them, preserving
        miss rates (the same methodology the paper uses to scale from
        real 2MB caches to its simulated 128KB ones).  Synchronization
        costs shrink with the checkpoint interval so the checkpoint
        overhead *fraction* stays comparable.
        """
        return cls(l1_size=4 * 1024, l2_size=32 * 1024,
                   node_memory_bytes=8 * 1024 * 1024,
                   barrier_ns=2_000, interrupt_ns=1_000,
                   context_save_ns=200)

    @classmethod
    def tiny(cls, n_nodes: int = 4) -> "MachineConfig":
        """Minimal machine for unit tests (fast to build and run)."""
        shapes = {1: (1, 1), 2: (2, 1), 4: (2, 2), 8: (4, 2), 16: (4, 4)}
        if n_nodes not in shapes:
            raise ValueError(f"tiny preset supports {sorted(shapes)} nodes")
        width, height = shapes[n_nodes]
        return cls(n_nodes=n_nodes, torus_width=width, torus_height=height,
                   l1_size=1024, l2_size=4096,
                   node_memory_bytes=256 * 1024,
                   barrier_ns=1_000, interrupt_ns=500, context_save_ns=100)
