"""CC-NUMA machine model: configuration, node assembly, and system build.

``Machine`` and ``Node`` are imported lazily: ``machine.system`` pulls in
the ReVive core, which pulls in the memory layout, which needs only
``machine.config`` — the lazy hop keeps that chain acyclic.
"""

from repro.machine.config import MachineConfig

__all__ = ["MachineConfig", "Node", "Machine"]


def __getattr__(name):
    if name == "Machine":
        from repro.machine.system import Machine
        return Machine
    if name == "Node":
        from repro.machine.node import Node
        return Node
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
