"""One CC-NUMA node: caches, directory, memory, and their timelines."""

from __future__ import annotations

from repro.cache.hierarchy import CacheHierarchy
from repro.coherence.directory import Directory
from repro.machine.config import MachineConfig
from repro.memory.dram import MemoryTimingModel
from repro.memory.main_memory import NodeMemory
from repro.sim.resources import Resource


class Node:
    """Everything local to one node of the machine (Figure 2)."""

    def __init__(self, config: MachineConfig, node_id: int) -> None:
        self.config = config
        self.node_id = node_id
        self.hierarchy = CacheHierarchy(config, node_id)
        self.directory = Directory(node_id)
        self.memory = NodeMemory(node_id)
        self.mem_timing = MemoryTimingModel(config, node_id)
        self.dir_resource = Resource(f"dir{node_id}",
                                     config.dir_occupancy_ns)

    def snapshot(self) -> dict:
        """Plain-data state of every node-local component."""
        return {"hierarchy": self.hierarchy.snapshot(),
                "directory": self.directory.snapshot(),
                "memory": self.memory.snapshot(),
                "mem_timing": self.mem_timing.snapshot(),
                "dir_resource": self.dir_resource.snapshot()}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` (docs/SNAPSHOTS.md)."""
        self.hierarchy.restore(state["hierarchy"])
        self.directory.restore(state["directory"])
        self.memory.restore(state["memory"])
        self.mem_timing.restore(state["mem_timing"])
        self.dir_resource.restore(state["dir_resource"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id})"
