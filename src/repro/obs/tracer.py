"""Structured event tracing with a versioned, documented schema.

A :class:`Tracer` turns instrumentation points scattered through the
simulator into a single ordered stream of JSON-serialisable event
dicts.  Every event carries the same envelope::

    {"v": 2, "seq": 0, "ts": 125000, "cat": "ckpt", "name": "ckpt.begin",
     ...event-specific fields...}

``v`` is the schema version (:data:`SCHEMA_VERSION`), ``seq`` a
monotonically increasing per-tracer sequence number, ``ts`` the
simulated time in integer nanoseconds, ``cat`` the event category and
``name`` the event name.  The full catalog of categories, names, and
per-event fields is documented in ``docs/OBSERVABILITY.md`` — the
schema is a stable, versioned interface: fields are only ever *added*
within a version, and any rename or removal bumps ``SCHEMA_VERSION``.

Design constraints, in order of importance:

* **Zero cost when off.**  Instrumentation sites guard every emission
  with ``if tracer.enabled:``; components default to the shared
  :data:`NULL_TRACER` whose ``enabled`` is ``False``, so an untraced
  simulation pays one attribute read per site and never builds an
  event dict (``benchmarks/test_simulator_throughput.py`` pins this).
* **Category filtering.**  A tracer built with ``categories={"ckpt",
  "recovery"}`` drops everything else at the emission point, before
  the sink sees it.
* **Pluggable sinks.**  :class:`JsonlFileSink` streams events to a
  JSONL file (optionally rotating segments), :class:`RingBufferSink`
  keeps the last N events in memory for tests and post-mortems.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Set

#: Version of the trace event schema (the ``v`` field of every event).
#: Bumped on any backwards-incompatible change; see docs/OBSERVABILITY.md.
#: v2 added the ``span`` category (transaction-level causal spans with
#: segment attribution) — v1 events are unchanged.
SCHEMA_VERSION = 2

#: The known event categories, in emission-site order.  ``svc`` events
#: come from the serving layer (result cache + simulation service, see
#: docs/SERVING.md), happen outside simulated time, and carry ``ts`` 0
#: by convention.  ``prof`` (host-time attribution snapshots) and
#: ``stats`` (live service heartbeats/metrics) are host-side too and
#: share the ``ts`` 0 convention.  ``digest`` events (determinism
#: observatory, one window per checkpoint boundary) carry the commit
#: time of the window they fingerprint.  Adding a category is additive
#: within a schema version — readers ignore categories they do not
#: know.
CATEGORIES = ("sim", "coh", "mem", "log", "ckpt", "recovery", "span",
              "svc", "snap", "prof", "stats", "digest")


class RingBufferSink:
    """Keeps the newest ``capacity`` events in memory.

    Older events are silently rotated out (``dropped`` counts them), so
    a long run can stay traced at bounded memory cost — handy for
    "flight recorder" style post-mortems and for unit tests.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.dropped = 0

    def write(self, event: Dict) -> None:
        """Append one event, rotating the oldest out when full."""
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def events(self) -> List[Dict]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def close(self) -> None:
        """No-op (memory sink holds no external resources)."""


class JsonlFileSink:
    """Streams events to a JSONL file, one JSON object per line.

    With ``max_events_per_file`` set, the sink *rotates*: the first
    segment is ``path`` itself, subsequent segments are ``path.1``,
    ``path.2``, ...  :meth:`paths` lists the segments written so far in
    chronological order, and :func:`read_trace` re-joins them.
    """

    def __init__(self, path: str,
                 max_events_per_file: Optional[int] = None) -> None:
        if max_events_per_file is not None and max_events_per_file <= 0:
            raise ValueError("max_events_per_file must be positive")
        self.base_path = path
        self.max_events_per_file = max_events_per_file
        self._segment = 0
        self._events_in_segment = 0
        self._file = open(path, "w", encoding="utf-8")

    def _segment_path(self, segment: int) -> str:
        return self.base_path if segment == 0 \
            else f"{self.base_path}.{segment}"

    def paths(self) -> List[str]:
        """Every segment written so far, oldest first."""
        return [self._segment_path(s) for s in range(self._segment + 1)]

    def write(self, event: Dict) -> None:
        """Serialise one event; open the next segment when full."""
        if (self.max_events_per_file is not None
                and self._events_in_segment >= self.max_events_per_file):
            self._file.close()
            self._segment += 1
            self._events_in_segment = 0
            self._file = open(self._segment_path(self._segment), "w",
                              encoding="utf-8")
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._events_in_segment += 1

    def close(self) -> None:
        """Flush and close the current segment."""
        if not self._file.closed:
            self._file.close()


class Tracer:
    """Emits structured events to a sink, with category filtering.

    ``categories=None`` (the default) accepts every category; otherwise
    only events whose ``cat`` is in the set pass the filter.  Setting
    ``enabled`` to ``False`` (or using :data:`NULL_TRACER`) turns every
    :meth:`emit` into an immediate return — instrumentation sites
    additionally guard with ``if tracer.enabled:`` so the disabled path
    never constructs argument tuples or dicts.
    """

    __slots__ = ("enabled", "categories", "sink", "_seq")

    def __init__(self, sink=None,
                 categories: Optional[Iterable[str]] = None,
                 enabled: bool = True) -> None:
        self.sink = sink
        self.categories: Optional[Set[str]] = (
            None if categories is None else set(categories))
        self.enabled = enabled and sink is not None
        self._seq = 0

    def emit(self, ts: int, cat: str, name: str, **fields) -> None:
        """Emit one event at simulated time ``ts`` (integer ns).

        ``fields`` become top-level JSON keys and must not collide with
        the envelope keys (``v``, ``seq``, ``ts``, ``cat``, ``name``).
        """
        if not self.enabled:
            return
        if self.categories is not None and cat not in self.categories:
            return
        event = {"v": SCHEMA_VERSION, "seq": self._seq, "ts": ts,
                 "cat": cat, "name": name}
        event.update(fields)
        self._seq += 1
        self.sink.write(event)

    @property
    def events_emitted(self) -> int:
        """How many events passed the filter so far."""
        return self._seq

    def close(self) -> None:
        """Close the underlying sink and disable further emission."""
        self.enabled = False
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled tracer: the default ``tracer`` attribute of every
#: instrumentable component.  Its ``enabled`` is always ``False``.
NULL_TRACER = Tracer(sink=None, enabled=False)


def trace_enabled(obj) -> bool:
    """True when ``obj`` (a Machine, Simulator, ...) is being traced.

    Any object carrying an enabled :class:`Tracer` in its ``tracer``
    attribute counts; objects without one are never traced.
    """
    tracer = getattr(obj, "tracer", None)
    return tracer is not None and tracer.enabled
