"""The ``repro report`` dashboard: paper exhibits from traces alone.

Everything here consumes only JSONL traces and ledger manifests —
never live simulator state — and reproduces the paper's run-health
exhibits from them:

* **Figure 8** — per-app overhead of each variant, recomputed from the
  ``execution_time_ns`` stamped into each run's ledger
  (:func:`overhead_rows_from_ledgers` matches
  ``SweepResult.overhead_rows`` bit-for-bit).
* **Figure 11** — the log-occupancy curve and per-node high-water
  marks from ``log.append``/``log.reclaim`` events
  (:func:`log_occupancy`, warmup-aware like the simulator's own
  ``max_bytes_used`` statistic).
* **Figure 12** — the recovery-phase breakdown via
  :func:`repro.obs.analysis.recovery_breakdown`.
* **Transaction latency** — per-class p50/p90/p99/p999 percentiles and
  critical-path attribution from schema-v2 span events
  (:func:`repro.obs.analysis.latency_report`), cross-checked against
  live ``lat.*`` histograms in ``tests/test_obs_report.py``.

Stream statistics are computed by *replaying* the trace through the
same monitors a live run uses (:mod:`repro.obs.monitor`), so on-line
and post-mortem numbers can never drift apart.

Entry points: :func:`gather_runs` resolves CLI paths (trace files or
sweep directories) into runs, :func:`build_report` computes the
JSON-able report, :func:`render_report` renders the terminal
dashboard.  ``tests/test_obs_report.py`` pins the cross-checks.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.obs.analysis import category_counts, latency_report, \
    read_trace, recovery_breakdown
from repro.obs.monitor import MonitorSuite, default_monitors, read_ledger
from repro.obs.tracer import SCHEMA_VERSION


def log_occupancy(events: List[Dict], curve_points: int = 24) -> Dict:
    """Figure 11 from the trace: occupancy curve + high-water marks.

    ``per_node_watermark`` restarts at the ``sim.warmup_done`` marker,
    mirroring ``Machine.note_warmup_done``'s reset of each log's
    ``max_bytes_used`` — so the values equal the simulator's own
    steady-state Figure 11 statistic exactly.  ``curve`` is the
    machine-wide total occupancy over time, down-sampled to
    ``curve_points`` buckets of (bucket-end ts, max total bytes).
    """
    occupancy: Dict[int, int] = {}
    watermark: Dict[int, int] = {}
    samples: List[Tuple[int, int]] = []
    warmup_ts: Optional[int] = None
    for event in events:
        name = event.get("name")
        if name == "sim.warmup_done":
            watermark = {}
            warmup_ts = event["ts"]
        elif name == "log.append":
            node, used = event["node"], event["bytes_used"]
            occupancy[node] = used
            if used > watermark.get(node, 0):
                watermark[node] = used
            samples.append((event["ts"], sum(occupancy.values())))
        elif name == "log.reclaim":
            occupancy[event["node"]] = event["bytes_used"]
            samples.append((event["ts"], sum(occupancy.values())))
    return {
        "per_node_watermark": dict(sorted(watermark.items())),
        "max_log_bytes": max(watermark.values(), default=0),
        "warmup_ts": warmup_ts,
        "curve": _bucket_curve(samples, curve_points),
    }


def _bucket_curve(samples: List[Tuple[int, int]],
                  points: int) -> List[Tuple[int, int]]:
    """Down-sample (ts, value) samples to per-bucket maxima."""
    if not samples or points <= 0:
        return []
    t0, t1 = samples[0][0], samples[-1][0]
    if t1 <= t0:
        return [(t1, max(value for _ts, value in samples))]
    maxima: List[Optional[int]] = [None] * points
    closing = [0] * points
    for ts, value in samples:
        bucket = min(points - 1, (ts - t0) * points // (t1 - t0))
        if maxima[bucket] is None or value > maxima[bucket]:
            maxima[bucket] = value
        closing[bucket] = value
    # A bucket with no samples inherits the occupancy the previous
    # bucket closed at — the level simply persisted through it.
    carry = 0
    curve: List[Tuple[int, int]] = []
    width = (t1 - t0) / points
    for bucket in range(points):
        if maxima[bucket] is None:
            value = carry
        else:
            value = maxima[bucket]
            carry = closing[bucket]
        curve.append((int(t0 + (bucket + 1) * width), value))
    return curve


def overhead_rows_from_ledgers(ledgers: List[Dict]) -> List[Dict]:
    """Figure-8-shaped rows from ledger manifests alone.

    Matches ``SweepResult.overhead_rows()`` bit-for-bit when fed the
    ledgers of the same sweep in canonical order: identical row order,
    keys, and float arithmetic (``time / base - 1.0`` on the same
    integers).
    """
    times: Dict[Tuple[str, str], int] = {}
    apps: List[str] = []
    variants: Dict[str, List[str]] = {}
    for manifest in ledgers:
        result = manifest.get("result")
        if result is None:
            continue
        app, variant = manifest["app"], manifest["variant"]
        times[(app, variant)] = result["execution_time_ns"]
        if app not in apps:
            apps.append(app)
        variants.setdefault(app, []).append(variant)
    rows = []
    for app in apps:
        base = times.get((app, "baseline"))
        if base is None:
            raise ValueError(
                "overhead rows need the 'baseline' variant ledger for "
                f"app {app!r}")
        row: Dict = {"app": app, "baseline_ns": base}
        for variant in variants[app]:
            if variant != "baseline":
                row[variant] = (times[(app, variant)] / base) - 1.0
        rows.append(row)
    return rows


def gather_runs(paths: List[str]) -> List[Dict]:
    """Resolve CLI paths into runs: ``{name, events, ledger}`` each.

    A directory is scanned for ``*.jsonl`` traces (each paired with its
    ``<name>.ledger.json`` when present); a sweep directory's merged
    ``sweep.ledger.json`` fixes the canonical run order.  A file path
    names one trace (its sibling ledger is picked up the same way).
    """
    runs: List[Dict] = []
    for path in paths:
        if os.path.isdir(path):
            names = sorted(fname[:-len(".jsonl")]
                           for fname in os.listdir(path)
                           if fname.endswith(".jsonl"))
            merged_path = os.path.join(path, "sweep.ledger.json")
            if os.path.exists(merged_path):
                merged = read_ledger(merged_path)
                canonical = [f"{job['app']}__{job['variant']}"
                             for job in merged.get("jobs", [])]
                names.sort(key=lambda name:
                           (canonical.index(name) if name in canonical
                            else len(canonical), name))
            for name in names:
                runs.append(_one_run(os.path.join(path, name + ".jsonl"),
                                     name))
        else:
            name = os.path.basename(path)
            if name.endswith(".jsonl"):
                name = name[:-len(".jsonl")]
            runs.append(_one_run(path, name))
    return runs


def _one_run(trace_path: str, name: str) -> Dict:
    stem = trace_path[:-len(".jsonl")] if trace_path.endswith(".jsonl") \
        else trace_path
    ledger_path = stem + ".ledger.json"
    return {
        "name": name,
        "events": read_trace(trace_path),
        "ledger": (read_ledger(ledger_path)
                   if os.path.exists(ledger_path) else None),
    }


def build_report(runs: List[Dict]) -> Dict:
    """Compute the full JSON-able report for :func:`render_report`.

    Each run's stream statistics come from replaying its events
    through the standard monitor set (sized from its ledger's
    ``run_args`` when available) — the exact code path a live run
    monitors with.
    """
    report_runs: List[Dict] = []
    ledgers: List[Dict] = []
    for run in runs:
        events = run["events"]
        ledger = run.get("ledger")
        run_args = (ledger or {}).get("run_args") or {}
        suite = MonitorSuite(default_monitors(
            interval_ns=run_args.get("interval_ns"),
            log_capacity_bytes=run_args.get("log_bytes_per_node")))
        for event in events:
            suite.write(event)
        try:
            recovery = recovery_breakdown(events)
        except ValueError:
            recovery = None
        verdicts = suite.verdicts()
        latency = latency_report(events)
        report_runs.append({
            "name": run["name"],
            "events": len(events),
            "categories": category_counts(events),
            "log_occupancy": log_occupancy(events),
            "recovery": recovery,
            "latency": latency if latency["total_spans"] else None,
            "verdicts": verdicts,
            "healthy": all(v.get("healthy", True)
                           for v in verdicts.values()),
            "ledger": ledger,
        })
        if ledger is not None:
            ledgers.append(ledger)
    overhead: Optional[List[Dict]] = None
    if ledgers:
        try:
            overhead = overhead_rows_from_ledgers(ledgers)
        except ValueError:
            overhead = None      # no baseline run in this report
    return {
        "schema_version": SCHEMA_VERSION,
        "runs": report_runs,
        "overhead_rows": overhead,
    }


#: Figure 12 phases, in timeline order, with display labels.
_RECOVERY_LABELS = (
    ("lost_work", "lost work"),
    ("hw_recovery", "1: hardware recovery"),
    ("log_rebuild", "2: log rebuild"),
    ("rollback", "3: rollback"),
    ("background_repair", "4: background repair"),
)


def render_latency(latency: Dict) -> str:
    """Render one latency report (the ``repro latency`` table pair).

    First table: per-class count, mean, p50/p90/p99/p999, max (all in
    nanoseconds, upper-edge percentile convention).  Second table: the
    critical-path attribution — each segment kind's share of span time
    over all spans and over the slowest 1% — which supports statements
    like "read-miss p99 is 62% directory occupancy".
    """
    from repro.harness.reporting import format_table

    classes = latency.get("classes", {})
    if not classes:
        return "latency: no span events (trace spans with schema v2)"
    rows = [[cls, s["count"], f"{s['mean']:.1f}",
             f"{s['p50']:.0f}", f"{s['p90']:.0f}", f"{s['p99']:.0f}",
             f"{s['p999']:.0f}", s["max"]]
            for cls, s in classes.items()]
    sections = [format_table(
        ["Class", "Count", "Mean", "p50", "p90", "p99", "p999", "Max"],
        rows, title="transaction latency (ns, from spans)")]

    seg_order: List[str] = []
    for summary in classes.values():
        for kind in summary["attribution"]:
            if kind not in seg_order:
                seg_order.append(kind)
    attribution_rows = []
    for cls, summary in classes.items():
        for label, table in (("all", summary["attribution"]),
                             ("tail 1%", summary["tail_attribution"])):
            attribution_rows.append(
                [cls, label] + [(f"{100 * table[kind]:.1f}%"
                                 if kind in table else "—")
                                for kind in seg_order])
    sections.append(format_table(
        ["Class", "Spans", *seg_order], attribution_rows,
        title="critical-path attribution (share of span time)"))
    return "\n".join(sections)


def render_report(report: Dict) -> str:
    """Render the terminal dashboard for a built report."""
    from repro.harness.reporting import bar_chart, format_table

    sections: List[str] = []
    overhead = report.get("overhead_rows")
    if overhead:
        variant_order: List[str] = []
        for row in overhead:
            for key in row:
                if key not in ("app", "baseline_ns") \
                        and key not in variant_order:
                    variant_order.append(key)
        rows = [[row["app"], f"{row['baseline_ns'] / 1e3:.1f}"]
                + [(f"{100 * row[v]:+.1f}%" if v in row else "—")
                   for v in variant_order]
                for row in overhead]
        sections.append(format_table(
            ["App", "Base (us)"] + variant_order, rows,
            title="Overhead vs baseline (Figure 8, from ledgers)"))

    for run in report["runs"]:
        lines = [f"== {run['name']} "
                 f"[{'healthy' if run['healthy'] else 'UNHEALTHY'}] =="]
        lines.append("categories: " + ", ".join(
            f"{cat}={count}" for cat, count
            in run["categories"].items()))

        occupancy = run["log_occupancy"]
        if occupancy["curve"]:
            lines.append(f"max log: {occupancy['max_log_bytes'] / 1024:.1f}"
                         " KB; per-node watermarks (KB): "
                         + ", ".join(f"{node}:{used / 1024:.1f}"
                                     for node, used in
                                     occupancy["per_node_watermark"]
                                     .items()))
            labels = [f"t={ts / 1e3:.0f}us"
                      for ts, _used in occupancy["curve"]]
            values = [used / 1024.0 for _ts, used in occupancy["curve"]]
            lines.append(bar_chart(labels, values, width=40, unit="KB"))

        cadence = run["verdicts"].get("checkpoint_cadence", {})
        if cadence.get("commits"):
            gap = cadence.get("mean_gap_ns")
            lines.append(
                f"checkpoints: {cadence['commits']} commits"
                + (f", mean gap {gap / 1e3:.1f} us" if gap else "")
                + (f", {len(cadence['excursions'])} cadence excursions"
                   if cadence.get("excursions") else ""))

        mem = run["verdicts"].get("mem_traffic", {})
        if mem.get("batches"):
            l1 = mem.get("l1_hit_rate")
            l2 = mem.get("l2_hit_rate")
            rem = mem.get("remote_fraction")
            lines.append(
                f"mem: {mem['totals']['refs']} refs in "
                f"{mem['batches']} batches"
                + (f", L1 hit {100 * l1:.1f}%" if l1 is not None else "")
                + (f", L2 hit {100 * l2:.1f}%" if l2 is not None else "")
                + (f", remote {100 * rem:.2f}%" if rem is not None
                   else ""))

        if run.get("latency"):
            lines.append(render_latency(run["latency"]))

        if run["recovery"] is not None:
            rows = [[label, f"{run['recovery'][key] / 1e3:.1f}"]
                    for key, label in _RECOVERY_LABELS
                    if key in run["recovery"]]
            lines.append(format_table(
                ["Phase", "us"], rows,
                title="recovery breakdown (Figure 12, from trace)"))

        alerts = run["verdicts"].get("log_occupancy", {}) \
            .get("high_water_alerts")
        if alerts:
            lines.append(f"ALERT: log high-water crossed {len(alerts)}x "
                         f"(first: node {alerts[0]['node']} at "
                         f"t={alerts[0]['ts'] / 1e3:.0f}us)")
        sections.append("\n".join(lines))
    if not sections:
        return "report: no runs"
    return "\n\n".join(sections)
