"""Cross-run divergence diagnosis: the engine behind ``repro diff``.

``repro run --digest PATH`` writes a *run digest file* — the run's
spec (enough to rebuild it) plus its determinism digest chain
(:mod:`repro.obs.digest`).  Given two such files, this module answers
"where did these runs stop being the same run?" at three granularities:

1. **Window** — :func:`diff_run_digests` compares the two chains and
   names the first checkpoint window whose machine digest differs.
2. **Component** — the same comparison names the first divergent
   component inside that window (caches, memory, directory, ...).
3. **Event** — :func:`bisect_divergence` re-simulates run A up to the
   last-agreeing window's commit (the chains agree there, so the state
   is shared by construction), captures that state as a fork image via
   the campaign snapshot machinery, replays *both* specs from the
   image with per-activation digesting (the engine's ``digest_hook``
   dispatch loop), and reports the first event after which the two
   machine digests disagree — with the store-counter range the event
   spans, so an injected perturbation (``REPRO_PERTURB_STORE``) is
   pinned to the exact event that consumed it.

The file format is versioned (:data:`RUN_DIGEST_SCHEMA`) and the spec
deliberately mirrors the CLI surface (app, variant, scale, nodes,
interval_us, perturb_store) rather than raw machine kwargs, so a file
written on one checkout replays on another as long as the CLI
contract holds.  Not re-exported from :mod:`repro.obs` — the replay
side imports the harness, and the package init must stay import-cycle
free; import :mod:`repro.obs.diff` directly.
"""

from __future__ import annotations

import json
import pickle
from typing import Dict, List, Optional, Tuple

from repro.obs.digest import DigestChain, digest_value, first_divergence

#: Schema version of the ``repro run --digest`` side-channel file.
RUN_DIGEST_SCHEMA = 1


def write_run_digest(path: str, spec: Dict,
                     chain: Optional[Dict]) -> None:
    """Write one run's digest side channel (spec + chain) as JSON."""
    if chain is None:
        raise ValueError("run has no digest chain; run with digesting on")
    doc = {"schema": RUN_DIGEST_SCHEMA, "spec": spec, "chain": chain}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_run_digest(path: str) -> Dict:
    """Read and validate a ``repro run --digest`` side-channel file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != RUN_DIGEST_SCHEMA:
        raise ValueError(f"{path}: unsupported run-digest schema "
                         f"{doc.get('schema')!r} "
                         f"(expected {RUN_DIGEST_SCHEMA})")
    for field in ("spec", "chain"):
        if not isinstance(doc.get(field), dict):
            raise ValueError(f"{path}: missing {field!r}")
    return doc


def diff_run_digests(doc_a: Dict, doc_b: Dict) -> Optional[Dict]:
    """First window-level divergence of two run digest files (or None).

    The shape is :func:`repro.obs.digest.first_divergence`:
    ``{"window", "epoch", "component", "a", "b"}``; ``component`` is
    None when one chain is a strict prefix of the other.
    """
    return first_divergence(DigestChain.from_jsonable(doc_a["chain"]).windows,
                            DigestChain.from_jsonable(doc_b["chain"]).windows)


class _StopReplay(Exception):
    """Raised by the digest hook to end a replay early."""


def _machine_from_spec(spec: Dict):
    """Rebuild a run's machine + workload from its digest-file spec.

    The spec's ``perturb_store`` is applied to the fresh machine, so a
    replay reproduces the original run's injected flip even when the
    ``REPRO_PERTURB_STORE`` environment of the original invocation is
    long gone.
    """
    from repro.harness.runner import build_machine, tiny_revive_overrides
    from repro.machine.config import MachineConfig
    from repro.workloads.registry import get_workload

    nodes = spec.get("nodes")
    machine_config = MachineConfig.tiny(nodes) if nodes else None
    overrides = (tiny_revive_overrides(nodes)
                 if spec["variant"] != "baseline" else {})
    machine = build_machine(spec["variant"], machine_config,
                            int(spec["interval_us"] * 1000), **overrides)
    machine.attach_workload(get_workload(spec["app"],
                                         scale=spec["scale"],
                                         n_procs=nodes or 16))
    machine.perturb_store = spec.get("perturb_store") or None
    return machine


def _replay_events(spec: Dict, image: Optional[bytes],
                   until: Optional[int],
                   reference: Optional[List[Dict]] = None,
                   limit: Optional[int] = None) -> Tuple:
    """Replay one spec from the fork image with per-event digesting.

    Every activation appends ``{"event", "now", "store", "machine",
    "components"}``.  ``reference`` stops the replay at the first
    record whose machine digest disagrees with the same-index
    reference record (run B never replays past its divergence);
    ``limit`` stops after exactly that many events (frontier capture).
    Returns ``(records, machine)``.
    """
    from repro.machine.digest import digest_components

    machine = _machine_from_spec(spec)
    if image is not None:
        machine.restore(pickle.loads(image))
    sim = machine.simulator
    records: List[Dict] = []

    def hook() -> None:
        components = digest_components(machine)
        records.append({"event": len(records), "now": sim.now,
                        "store": machine._store_counter,
                        "machine": digest_value(components),
                        "components": components})
        if limit is not None and len(records) >= limit:
            raise _StopReplay
        if reference is not None:
            index = len(records) - 1
            if (index >= len(reference)
                    or records[index]["machine"]
                    != reference[index]["machine"]):
                raise _StopReplay

    sim.digest_hook = hook
    try:
        machine.run(until=until)
    except _StopReplay:
        pass
    finally:
        sim.digest_hook = None
    return records, machine


def bisect_divergence(doc_a: Dict, doc_b: Dict, divergence: Dict,
                      image_path: Optional[str] = None) -> Dict:
    """Drive the window-level divergence down to the first event.

    ``divergence`` is :func:`diff_run_digests`'s report.  Returns it
    extended with ``event`` (``{"index", "now", "component",
    "store_range", "a", "b"}`` or None when the event could not be
    localised — the accompanying ``note`` says why) and ``image`` (the
    path of the captured frontier image, when requested).  The
    frontier image is run A's state after the last *agreeing* event,
    restorable with :func:`repro.machine.snapshot.restore_machine` for
    offline inspection.
    """
    report = dict(divergence, event=None, image=None)
    window = divergence["window"]
    windows_a = doc_a["chain"]["windows"]
    windows_b = doc_b["chain"]["windows"]
    if window == 0:
        report["note"] = ("the initial states (window 0) already "
                          "differ: the runs were configured "
                          "differently, nothing to replay")
        return report

    # Fork point: re-simulate run A to the last-agreeing window's
    # commit.  The chains agree through window-1, so by determinism
    # this state is shared by both runs.
    ts_ok = windows_a[window - 1]["ts"]
    warm = _machine_from_spec(doc_a["spec"])
    if ts_ok > 0:
        warm.run(until=ts_ok)
    image = pickle.dumps(warm.snapshot(),
                         protocol=pickle.HIGHEST_PROTOCOL)
    fork_store = warm._store_counter

    # Replay horizon: the divergent window's commit time (whichever
    # chain reaches that window; on a prefix divergence only one does).
    ts_div = None
    for windows in (windows_a, windows_b):
        if window < len(windows):
            ts_div = max(ts_div or 0, windows[window]["ts"])

    records_a, _machine = _replay_events(doc_a["spec"], image, ts_div)
    records_b, _machine = _replay_events(doc_b["spec"], image, ts_div,
                                         reference=records_a)

    first = None
    for index, record in enumerate(records_b):
        if (index >= len(records_a)
                or record["machine"] != records_a[index]["machine"]):
            first = index
            break
    if first is None and len(records_b) < len(records_a):
        first = len(records_b)  # B retired early: scheduling divergence
    if first is None:
        report["note"] = ("no divergent event inside the replayed "
                          "window; the divergence predates the fork "
                          "point (same-timestamp events after the "
                          "last agreeing commit)")
        return report

    rec_a = records_a[first] if first < len(records_a) else None
    rec_b = records_b[first] if first < len(records_b) else None
    comps_a = rec_a["components"] if rec_a else {}
    comps_b = rec_b["components"] if rec_b else {}
    component = None
    for name in sorted(set(comps_a) | set(comps_b)):
        if comps_a.get(name) != comps_b.get(name):
            component = name
            break
    present = rec_a or rec_b
    store_before = (records_a[first - 1]["store"] if first
                    else fork_store)
    report["event"] = {
        "index": first,
        "now": present["now"],
        "component": component,
        # Stores consumed by the divergent event: (before, after].  An
        # injected REPRO_PERTURB_STORE counter lands in this range.
        "store_range": [store_before, present["store"]],
        "a": rec_a["machine"] if rec_a else None,
        "b": rec_b["machine"] if rec_b else None,
    }

    if image_path is not None:
        if first == 0:
            frontier = image  # the fork image *is* the frontier
        else:
            _records, machine = _replay_events(doc_a["spec"], image,
                                               ts_div, limit=first)
            frontier = pickle.dumps(machine.snapshot(),
                                    protocol=pickle.HIGHEST_PROTOCOL)
        with open(image_path, "wb") as fh:
            fh.write(frontier)
        report["image"] = image_path
    return report
