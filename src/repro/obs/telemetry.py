"""Host-time attribution snapshots, merging, and exposition.

This module turns the raw maps a :class:`~repro.obs.profiling.Profiler`
accumulates (component timers, per-actor dispatch attribution, tier
fallout cells) into the portable *profile snapshot* dict that travels
through ``RunResult.profile``, worker pools, and the CLI:

``profile_snapshot`` builds the snapshot, ``merge_profiles`` folds the
per-job snapshots returned by sweep/campaign workers into one coherent
machine-wide profile (deterministically — keys are summed, output maps
are key-sorted), ``emit_profile_events`` narrates a snapshot as
``prof.*`` trace events, ``flamegraph_lines`` renders it as
collapsed-stack lines for ``flamegraph.pl``/speedscope, and
``prometheus_text`` exposes a :class:`~repro.obs.metrics.MetricsRegistry`
``full_snapshot()`` in the Prometheus text format so a deployed
``repro serve`` is scrapeable (docs/SERVING.md).

The snapshot shape (schema'd by :data:`PROFILE_SCHEMA`)::

    {"schema": 1,
     "total_wall_seconds": float,     # outermost machine.run wall time
     "events": int,                   # engine activations dispatched
     "events_per_sec": float,
     "components": [[name, self_s, cum_s, calls], ...],  # hottest first
     "actors": {"0": {"node": 0, "kind": "Processor",
                      "seconds": s, "activations": n}, ...},
     "fallout": {"0": {"seconds": s, "calls": n}, ...}}

Dict keys are strings so the snapshot survives JSON round-trips
unchanged (``repro profile --json`` and ``sweep.profile.json`` both
store exactly this shape).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Version of the profile snapshot dict produced by
#: :func:`profile_snapshot` (its ``schema`` key).
PROFILE_SCHEMA = 1


def profile_snapshot(profiler) -> Dict:
    """Build the portable profile dict from a live ``Profiler``."""
    actors = {}
    for actor_id in sorted(profiler.actors):
        seconds, activations = profiler.actors[actor_id]
        node, kind = profiler.actor_meta.get(actor_id, (-1, "unknown"))
        actors[str(actor_id)] = {"node": node, "kind": kind,
                                 "seconds": seconds,
                                 "activations": activations}
    fallout = {str(node): {"seconds": cell[0], "calls": cell[1]}
               for node, cell in sorted(profiler.fallout.items())}
    return {
        "schema": PROFILE_SCHEMA,
        "total_wall_seconds": profiler.total_wall_seconds,
        "events": profiler.events,
        "events_per_sec": profiler.events_per_sec,
        "components": [list(row) for row in profiler.self_report()],
        "actors": actors,
        "fallout": fallout,
    }


def merge_profiles(profiles: Iterable[Optional[Dict]]) -> Optional[Dict]:
    """Fold per-job profile snapshots into one machine-wide profile.

    Workers run in separate processes, so their host times are
    *additive*: total CPU seconds spent across the pool.  ``None``
    entries (unprofiled jobs) are skipped; an all-``None`` input
    returns ``None``.  The merge is deterministic for any input order
    — every map is summed per key and emitted key-sorted — so serial
    and parallel sweeps produce the identical merged profile for the
    same job results.
    """
    merged_components: Dict[str, List] = {}
    merged_actors: Dict[str, Dict] = {}
    merged_fallout: Dict[str, Dict] = {}
    total_wall = 0.0
    events = 0
    jobs = 0
    for profile in profiles:
        if profile is None:
            continue
        jobs += 1
        total_wall += profile.get("total_wall_seconds", 0.0)
        events += profile.get("events", 0)
        for name, self_s, cum_s, calls in profile.get("components", ()):
            cell = merged_components.setdefault(name, [0.0, 0.0, 0])
            cell[0] += self_s
            cell[1] += cum_s
            cell[2] += calls
        for actor_id, info in profile.get("actors", {}).items():
            cell = merged_actors.get(actor_id)
            if cell is None:
                merged_actors[actor_id] = dict(info)
            else:
                cell["seconds"] += info["seconds"]
                cell["activations"] += info["activations"]
        for node, info in profile.get("fallout", {}).items():
            cell = merged_fallout.get(node)
            if cell is None:
                merged_fallout[node] = dict(info)
            else:
                cell["seconds"] += info["seconds"]
                cell["calls"] += info["calls"]
    if not jobs:
        return None
    components = sorted(
        ([name] + cell for name, cell in merged_components.items()),
        key=lambda row: row[1], reverse=True)
    return {
        "schema": PROFILE_SCHEMA,
        "jobs": jobs,
        "total_wall_seconds": total_wall,
        "events": events,
        "events_per_sec": (events / total_wall) if total_wall > 0 else 0.0,
        "components": components,
        "actors": {k: merged_actors[k]
                   for k in sorted(merged_actors, key=int)},
        "fallout": {k: merged_fallout[k]
                    for k in sorted(merged_fallout, key=int)},
    }


def actor_coverage(profile: Dict) -> float:
    """Fraction of ``machine.run`` wall time attributed to actors.

    The reconciliation number ``repro profile`` prints and gates on:
    per-actor host time must account for (nearly) all of the run
    loop's wall clock, or the attribution is lying.  Returns 0.0 when
    the profile has no run wall time.
    """
    total = profile.get("total_wall_seconds", 0.0)
    if total <= 0:
        return 0.0
    attributed = sum(a["seconds"] for a in profile.get("actors", {}).values())
    return attributed / total


def fallout_share(profile: Dict) -> float:
    """Fraction of attributed actor time spent in protocol fallout.

    Quantifies the docs/PERFORMANCE.md §1b ceiling from measurement:
    fallout seconds (scalar directory-protocol calls made by the batch
    tiers) over total per-actor dispatch seconds.
    """
    attributed = sum(a["seconds"] for a in profile.get("actors", {}).values())
    if attributed <= 0:
        return 0.0
    fallout = sum(f["seconds"] for f in profile.get("fallout", {}).values())
    return fallout / attributed


def emit_profile_events(tracer, profile: Dict) -> None:
    """Narrate a profile snapshot as ``prof.*`` trace events.

    Events carry ``ts`` 0 by convention (host time is outside
    simulated time, like ``svc.*``/``snap.*``): one ``prof.run``
    summary, one ``prof.actor`` per actor, one ``prof.component`` per
    timed component, and one ``prof.tier`` per node with fallout
    attribution.  The stream passes ``repro trace-lint``, including
    its attribution-sums-to-run check (docs/OBSERVABILITY.md).
    """
    if not tracer.enabled:
        return
    tracer.emit(0, "prof", "prof.run",
                wall_seconds=profile.get("total_wall_seconds", 0.0),
                activations=profile.get("events", 0))
    for actor_id, info in profile.get("actors", {}).items():
        tracer.emit(0, "prof", "prof.actor", actor=int(actor_id),
                    node=info["node"], kind=info["kind"],
                    seconds=info["seconds"],
                    activations=info["activations"])
    for name, self_s, cum_s, calls in profile.get("components", ()):
        tracer.emit(0, "prof", "prof.component", component=name,
                    self_seconds=self_s, cum_seconds=cum_s, calls=calls)
    for node, info in profile.get("fallout", {}).items():
        actor_secs = sum(
            a["seconds"] for a in profile.get("actors", {}).values()
            if a.get("node") == int(node))
        tracer.emit(0, "prof", "prof.tier", node=int(node),
                    fallout_seconds=info["seconds"],
                    fallout_calls=info["calls"],
                    batch_seconds=max(0.0, actor_secs - info["seconds"]))


def flamegraph_lines(profile: Dict) -> List[str]:
    """Collapsed-stack lines (``flamegraph.pl`` input) for a profile.

    Two-level stacks rooted at ``machine.run``: one frame per actor
    (split into batch vs protocol-fallout leaves for nodes with
    fallout attribution) plus one frame per non-run component.
    Sample counts are integer microseconds.
    """

    def us(seconds: float) -> int:
        return max(0, int(round(seconds * 1e6)))

    lines = []
    fallout = profile.get("fallout", {})
    for actor_id, info in profile.get("actors", {}).items():
        frame = f"machine.run;actor{actor_id}/{info['kind']}" \
                f"/node{info['node']}"
        drop = fallout.get(str(info["node"]), {}).get("seconds", 0.0)
        if drop > 0:
            lines.append(f"{frame};batch {us(info['seconds'] - drop)}")
            lines.append(f"{frame};protocol_fallout {us(drop)}")
        else:
            lines.append(f"{frame} {us(info['seconds'])}")
    for name, self_s, _cum_s, _calls in profile.get("components", ()):
        if name == "machine.run":
            continue
        lines.append(f"machine.run;{name} {us(self_s)}")
    return lines


def _prom_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus grammar."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def prometheus_text(full_snapshot: Dict) -> str:
    """Render a ``MetricsRegistry.full_snapshot()`` as Prometheus text.

    Counters become ``counter`` samples, gauges ``gauge`` samples
    (with a ``_max`` companion), histogram summaries ``gauge`` samples
    per statistic (``_count``/``_mean``/``_max``/``_p50``/...).  Names
    are sanitized (``.`` → ``_``) and prefixed ``repro_``; the output
    ends with a newline as the exposition format requires.
    """
    lines: List[str] = []
    for name, value in sorted(full_snapshot.get("counters", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, info in sorted(full_snapshot.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {info['value']}")
        lines.append(f"# TYPE {prom}_max gauge")
        lines.append(f"{prom}_max {info['max']}")
    for name, summary in sorted(full_snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        for stat, value in sorted(summary.items()):
            lines.append(f"# TYPE {prom}_{stat} gauge")
            lines.append(f"{prom}_{stat} {value}")
    return "\n".join(lines) + "\n"
