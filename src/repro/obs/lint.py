"""Schema validation for JSONL traces (``repro trace-lint``).

The trace schema is a versioned interface (``docs/OBSERVABILITY.md``):
every event carries the five-key envelope, categories come from
:data:`~repro.obs.tracer.CATEGORIES`, names are prefixed by their
category, and each known event name carries a documented field set.
:func:`lint_events` checks all of that over any event stream — a file
this package wrote, or one produced by a foreign tool claiming the
same schema — and returns human-readable problem strings (empty means
clean).  ``tools/smoke.py`` lints every smoke-test trace with it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Tuple

from repro.obs.analysis import read_trace
from repro.obs.digest import window_digest
from repro.obs.spans import SEGMENTS, SPAN_CLASSES
from repro.obs.tracer import CATEGORIES, SCHEMA_VERSION

#: The envelope every event must carry (tracer.py's contract).
ENVELOPE_KEYS = ("v", "seq", "ts", "cat", "name")

#: Required event-specific fields per known event name (schema v2).
#: Fields may be *added* within a version, so extra keys never fail
#: lint; missing required keys do.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "sim.run_begin": ("until", "pending"),
    "sim.hook_fire": (),
    "sim.actor_retire": ("actor",),
    "sim.run_end": ("activations",),
    "sim.warmup_done": (),
    "coh.transition": ("node", "line", "state", "owner", "sharers"),
    "coh.clear": ("node", "entries"),
    "mem.batch": ("node", "refs", "l1_hits", "l1_misses",
                  "l2_hits", "l2_misses", "remote"),
    "log.append": ("node", "slot", "epoch", "line", "commit",
                   "bytes_used"),
    "log.reclaim": ("node", "slots", "oldest_epoch", "bytes_used"),
    "ckpt.begin": ("epoch",),
    "ckpt.flush_done": ("dirty_lines",),
    "ckpt.barrier1": (),
    "ckpt.commit": ("epoch", "dur_ns"),
    "recovery.begin": ("lost_node",),
    "recovery.phase_begin": ("phase",),
    "recovery.phase_end": ("phase", "dur_ns"),
    "recovery.end": ("target_epoch", "lost_work_ns", "entries_undone",
                     "resume_time"),
    "span.begin": ("txn", "class", "node"),
    "span.end": ("txn", "class", "node", "dur_ns", "segs"),
    # Serving-layer events (docs/SERVING.md).  They happen outside
    # simulated time, so their ``ts`` is 0 by convention.
    "svc.accepted": ("op", "key"),
    "svc.cache_hit": ("key",),
    "svc.cache_miss": ("key",),
    "svc.cache_store": ("key", "bytes"),
    "svc.cache_evict": ("key", "bytes"),
    "svc.cache_corrupt": ("key", "reason"),
    "svc.coalesced": ("key",),
    "svc.scheduled": ("key",),
    "svc.verdicts": ("key", "verdicts"),
    "svc.latency": ("key", "classes"),
    "svc.result": ("key", "cached"),
    "svc.report": ("key", "rows"),
    "svc.done": ("key", "jobs", "cached"),
    "svc.campaign": ("key", "outcomes"),
    "svc.error": ("error",),
    # Snapshot/fork events emitted by the campaign layer
    # (docs/SNAPSHOTS.md).  Like ``svc.*`` they happen outside simulated
    # time, so their ``ts`` is 0 by convention.
    "snap.capture": ("key", "bytes", "epoch", "dur_ms"),
    "snap.restore": ("key", "bytes", "dur_ms"),
    "snap.fork": ("key", "scenarios"),
    # Host-time attribution snapshots (docs/OBSERVABILITY.md,
    # ``repro profile``).  Host-side: ``ts`` 0 by convention.
    "prof.run": ("wall_seconds", "activations"),
    "prof.actor": ("actor", "node", "kind", "seconds", "activations"),
    "prof.component": ("component", "self_seconds", "cum_seconds",
                       "calls"),
    "prof.tier": ("node", "fallout_seconds", "fallout_calls",
                  "batch_seconds"),
    # Live service telemetry (docs/SERVING.md, ``repro stats``).
    # Host-side: ``ts`` 0 by convention.
    "stats.heartbeat": ("beat", "inflight", "queue_depth",
                        "workers_busy", "workers"),
    "stats.snapshot": ("beat", "metrics"),
    # Per-request service-phase timing (host milliseconds).
    "svc.timing": ("key", "phases"),
    # Determinism observatory (docs/OBSERVABILITY.md): one digest
    # window per checkpoint boundary, ``ts`` = the commit time of the
    # window it fingerprints.
    "digest.window": ("window", "epoch", "machine", "prev", "components"),
}


def _lint_span(event: Dict, where: str, open_spans: Dict,
               problems: List[str]) -> None:
    """Stateful span checks: pairing, class identity, segment closure."""
    txn, cls = event.get("txn"), event.get("class")
    if cls is not None and cls not in SPAN_CLASSES:
        problems.append(
            f"{where}: unknown span class {cls!r} "
            f"(known: {', '.join(SPAN_CLASSES)})")
    if not isinstance(txn, int):
        problems.append(f"{where}: span txn {txn!r} is not an integer")
        return
    if event["name"] == "span.begin":
        if txn in open_spans:
            problems.append(f"{where}: span.begin for already-open txn {txn}")
        open_spans[txn] = event
        return
    begin = open_spans.pop(txn, None)
    if begin is None:
        problems.append(
            f"{where}: span.end for txn {txn} without a span.begin")
        return
    if cls != begin.get("class"):
        problems.append(
            f"{where}: span.end class {cls!r} does not match "
            f"span.begin class {begin.get('class')!r} (txn {txn})")
    dur, segs = event.get("dur_ns"), event.get("segs")
    if not isinstance(dur, int) or dur < 0:
        problems.append(
            f"{where}: span dur_ns {dur!r} is not a non-negative integer")
        return
    if isinstance(begin.get("ts"), int) and event["ts"] - begin["ts"] != dur:
        problems.append(
            f"{where}: span dur_ns {dur} != end ts - begin ts "
            f"({event['ts']} - {begin['ts']}) for txn {txn}")
    if not isinstance(segs, list):
        problems.append(f"{where}: span segs {segs!r} is not a list")
        return
    total = 0
    for seg in segs:
        if (not isinstance(seg, (list, tuple)) or len(seg) != 2
                or not isinstance(seg[1], int) or seg[1] < 0):
            problems.append(
                f"{where}: malformed segment {seg!r} (want [kind, dur_ns])")
            return
        kind, seg_dur = seg
        if kind not in SEGMENTS:
            problems.append(
                f"{where}: unknown segment kind {kind!r} "
                f"(known: {', '.join(SEGMENTS)})")
        total += seg_dur
    if total != dur:
        problems.append(
            f"{where}: segments sum to {total} but span dur_ns is {dur} "
            f"(txn {txn})")


def _lint_prof(event: Dict, where: str, prof_block: Dict,
               problems: List[str]) -> None:
    """Stateful ``prof.*`` checks: attribution must sum to the run.

    Per-actor host seconds partition the dispatch loop's wall clock,
    so within one ``prof.run`` block the ``prof.actor`` seconds must
    not exceed the run's ``wall_seconds`` (small float tolerance).
    The check closes at the next ``prof.run`` or at end-of-stream
    (:func:`_finish_prof`).
    """
    name = event["name"]
    if name == "prof.run":
        _finish_prof(where, prof_block, problems)
        wall = event.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append(
                f"{where}: prof.run wall_seconds {wall!r} is not a "
                f"non-negative number")
            return
        prof_block["run"] = (where, float(wall))
        prof_block["actor_seconds"] = 0.0
    elif name == "prof.actor":
        seconds = event.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            problems.append(
                f"{where}: prof.actor seconds {seconds!r} is not a "
                f"non-negative number")
            return
        if prof_block.get("run") is None:
            problems.append(
                f"{where}: prof.actor without a preceding prof.run")
            return
        prof_block["actor_seconds"] += float(seconds)


def _finish_prof(where: str, prof_block: Dict,
                 problems: List[str]) -> None:
    """Close an open ``prof.run`` block: actor seconds ≤ run seconds."""
    run = prof_block.get("run")
    if run is None:
        return
    run_where, wall = run
    attributed = prof_block.get("actor_seconds", 0.0)
    if attributed > wall * (1 + 1e-6) + 1e-6:
        problems.append(
            f"{where}: prof.actor seconds sum to {attributed:.6f} but "
            f"prof.run ({run_where}) reports wall_seconds {wall:.6f} — "
            f"attribution exceeds the run it claims to partition")
    prof_block["run"] = None
    prof_block["actor_seconds"] = 0.0


def _lint_digest(event: Dict, where: str, digest_block: Dict,
                 problems: List[str]) -> None:
    """Stateful ``digest.*`` checks (determinism observatory).

    Chain linkage: each window's ``prev`` must equal the previous
    window's machine digest, and the window's own ``machine`` digest
    must recompute from ``(prev, components)`` — the window fold is a
    pure function (:func:`repro.obs.digest.window_digest`), so lint
    verifies the chain offline without any machine state.  Window
    indices must increase by exactly one.
    """
    window, machine = event.get("window"), event.get("machine")
    prev, components = event.get("prev"), event.get("components")
    digest_block["seen"] = True
    if not isinstance(window, int):
        problems.append(
            f"{where}: digest window {window!r} is not an integer")
        return
    last_window = digest_block.get("window")
    if last_window is not None and window != last_window + 1:
        problems.append(
            f"{where}: digest window {window} does not follow "
            f"window {last_window}")
    digest_block["window"] = window
    tip = digest_block.get("tip")
    if tip is not None and prev != tip:
        problems.append(
            f"{where}: digest window {window} prev {prev!r} does not "
            f"equal the previous window's machine digest {tip!r} — "
            f"the chain is broken")
    if (not isinstance(components, dict) or not components
            or not all(isinstance(k, str) and isinstance(v, str)
                       for k, v in components.items())):
        problems.append(
            f"{where}: digest components must be a non-empty "
            f"name->hexdigest object")
        return
    recomputed = window_digest(prev, components)
    if recomputed != machine:
        problems.append(
            f"{where}: digest window {window} machine digest "
            f"{machine!r} does not recompute from its prev and "
            f"components ({recomputed!r})")
    digest_block["tip"] = machine
    pending = digest_block.get("pending")
    if pending is not None and event.get("epoch") == pending[0]:
        digest_block["pending"] = None


def _note_commit(event: Dict, where: str, digest_block: Dict,
                 problems: List[str]) -> None:
    """Track ``ckpt.commit`` for the digest-at-every-boundary check.

    Only enforced once the stream has shown any ``digest.window`` (a
    digesting run records window 0 before its first commit); undigested
    runs carry no obligation.
    """
    if not digest_block.get("seen"):
        return
    _finish_digest(where, digest_block, problems)
    digest_block["pending"] = (event.get("epoch"), where)


def _finish_digest(where: str, digest_block: Dict,
                   problems: List[str]) -> None:
    """Flag a checkpoint boundary that was never digested."""
    pending = digest_block.get("pending")
    if pending is None:
        return
    epoch, commit_where = pending
    problems.append(
        f"{where}: ckpt.commit epoch {epoch} ({commit_where}) has no "
        f"digest.window for that epoch — digesting runs must "
        f"fingerprint every checkpoint boundary")
    digest_block["pending"] = None


def lint_events(events: Iterable[Dict],
                source: str = "<trace>") -> List[str]:
    """Validate an event stream; returns problem strings (empty = ok).

    Checks, per event: the envelope keys exist; ``v`` equals
    :data:`SCHEMA_VERSION`; ``seq`` is a strictly increasing integer;
    ``ts`` is a non-negative integer; ``cat`` is a known category;
    ``name`` is namespaced under its category; and known names carry
    their required fields (:data:`EVENT_FIELDS`).  Unknown names in a
    known category are flagged too — they usually mean a version skew
    between writer and reader.

    ``span`` events additionally get stateful checks: every
    ``span.end`` must match an open ``span.begin`` with the same
    ``txn`` and class, its ``dur_ns`` must equal the timestamp
    difference, its segment kinds must be known, and the segment
    durations must sum exactly to ``dur_ns`` (the closure invariant).
    Spans still open at end-of-stream are flagged.

    Telemetry gets the same treatment: ``stats.heartbeat`` ``beat``
    numbers must be strictly increasing integers, and within one
    ``prof.run`` block the ``prof.actor`` seconds must not exceed the
    run's ``wall_seconds`` (attribution-sums-to-run).

    ``digest`` events get the determinism-observatory checks
    (:func:`_lint_digest`): chain linkage (each window's ``prev``
    equals the previous machine digest, and the machine digest
    recomputes from the window's fields) and, once any digest has been
    seen, digest-at-every-checkpoint-boundary (every ``ckpt.commit``
    must be followed by a ``digest.window`` for its epoch before the
    next commit or end-of-stream).
    """
    problems: List[str] = []
    last_seq = None
    open_spans: Dict = {}
    last_beat = None
    prof_block: Dict = {"run": None, "actor_seconds": 0.0}
    digest_block: Dict = {"tip": None, "window": None, "seen": False,
                          "pending": None}
    for position, event in enumerate(events):
        where = f"{source}:{position}"
        if not isinstance(event, dict):
            problems.append(f"{where}: event is not a JSON object")
            continue
        missing = [key for key in ENVELOPE_KEYS if key not in event]
        if missing:
            problems.append(
                f"{where}: missing envelope keys {missing}")
            continue
        if event["v"] != SCHEMA_VERSION:
            problems.append(
                f"{where}: schema version {event['v']!r} "
                f"(expected {SCHEMA_VERSION})")
        seq = event["seq"]
        if not isinstance(seq, int):
            problems.append(f"{where}: seq {seq!r} is not an integer")
        elif last_seq is not None and seq <= last_seq:
            problems.append(
                f"{where}: seq {seq} does not increase (previous "
                f"{last_seq})")
        else:
            last_seq = seq
        ts = event["ts"]
        if not isinstance(ts, int) or ts < 0:
            problems.append(
                f"{where}: ts {ts!r} is not a non-negative integer")
        cat, name = event["cat"], event["name"]
        if cat not in CATEGORIES:
            problems.append(
                f"{where}: unknown category {cat!r} "
                f"(known: {', '.join(CATEGORIES)})")
            continue
        if not isinstance(name, str) or not name.startswith(cat + "."):
            problems.append(
                f"{where}: name {name!r} is not namespaced under "
                f"category {cat!r}")
            continue
        required = EVENT_FIELDS.get(name)
        if required is None:
            problems.append(f"{where}: unknown event name {name!r}")
            continue
        absent = [fieldname for fieldname in required
                  if fieldname not in event]
        if absent:
            problems.append(
                f"{where}: {name} missing required fields {absent}")
            continue
        if cat == "span":
            _lint_span(event, where, open_spans, problems)
        elif cat == "prof":
            _lint_prof(event, where, prof_block, problems)
        elif cat == "digest":
            _lint_digest(event, where, digest_block, problems)
        elif name == "ckpt.commit":
            _note_commit(event, where, digest_block, problems)
        elif name == "stats.heartbeat":
            beat = event["beat"]
            if not isinstance(beat, int):
                problems.append(
                    f"{where}: heartbeat beat {beat!r} is not an integer")
            elif last_beat is not None and beat <= last_beat:
                problems.append(
                    f"{where}: heartbeat beat {beat} does not increase "
                    f"(previous {last_beat})")
            else:
                last_beat = beat
    for txn in sorted(open_spans):
        problems.append(
            f"{source}: span.begin for txn {txn} has no matching span.end")
    _finish_prof(f"{source}:<end>", prof_block, problems)
    _finish_digest(f"{source}:<end>", digest_block, problems)
    return problems


def lint_file(path: str) -> List[str]:
    """Lint one JSONL trace file (following rotated segments)."""
    if not os.path.exists(path):
        return [f"{path}: no such trace"]
    try:
        events = read_trace(path)
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSONL ({exc})"]
    if not events:
        return [f"{path}: trace is empty"]
    return lint_events(events, source=os.path.basename(path))
