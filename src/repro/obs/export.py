"""Chrome Trace Event export (``repro export-trace``).

Converts a schema-v2 JSONL trace into the Chrome Trace Event JSON
format that Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
load natively: a ``{"traceEvents": [...]}`` object whose entries are
complete ("X") slices, instant ("i") markers, and metadata ("M")
records.

Mapping:

* Every ``span.end`` becomes one top-level "X" slice on the track of
  its subject node (``pid`` = node id; machine-wide spans — ckpt,
  recovery — land on the ``pid = -1`` "machine" track), named by its
  span class, with the ``txn`` id and original fields under ``args``.
* The span's segments become *nested* "X" slices directly under it —
  one per segment, laid end-to-end from the span's begin time, which is
  exactly what the monotone-cursor closure invariant guarantees is
  correct.  In Perfetto the span row therefore expands into a
  self-explaining waterfall: net → dir → mem_read → net, etc.
* Point events (``ckpt.begin``, ``log.append``, ...) become "i"
  instants on their node's track when they carry a ``node`` field, or
  on the machine track otherwise — set ``include_instants=False`` to
  export spans only.

Timestamps: the simulator's integer nanoseconds divided by 1000.0
(the format's ``ts``/``dur`` unit is microseconds); the original
nanosecond values ride along in ``args`` untouched.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

#: ``pid`` used for machine-wide tracks (spans with ``node == -1`` and
#: point events carrying no node field).
MACHINE_PID = -1

#: Envelope + span keys not repeated under ``args``.
_SKIP_ARGS = ("v", "seq", "cat", "name")


def _args(event: Dict) -> Dict:
    return {k: v for k, v in event.items() if k not in _SKIP_ARGS}


def chrome_trace(events: Iterable[Dict],
                 include_instants: bool = True) -> Dict:
    """Build the Chrome Trace Event object for one event stream."""
    trace_events: List[Dict] = []
    pids = set()

    for event in events:
        name = event.get("name")
        if name == "span.begin":
            continue
        if name == "span.end":
            pid = event["node"]
            pids.add(pid)
            begin_ns = event["ts"] - event["dur_ns"]
            trace_events.append({
                "ph": "X", "name": event["class"], "cat": "span",
                "pid": pid, "tid": 0,
                "ts": begin_ns / 1000.0,
                "dur": event["dur_ns"] / 1000.0,
                "args": _args(event),
            })
            cursor = begin_ns
            for kind, dur in event["segs"]:
                trace_events.append({
                    "ph": "X", "name": kind, "cat": "segment",
                    "pid": pid, "tid": 0,
                    "ts": cursor / 1000.0,
                    "dur": dur / 1000.0,
                    "args": {"txn": event["txn"], "dur_ns": dur},
                })
                cursor += dur
        elif include_instants and isinstance(event.get("ts"), int):
            pid = event.get("node", MACHINE_PID)
            if not isinstance(pid, int):
                pid = MACHINE_PID
            pids.add(pid)
            trace_events.append({
                "ph": "i", "name": name, "cat": event.get("cat", "event"),
                "pid": pid, "tid": 0, "s": "p",
                "ts": event["ts"] / 1000.0,
                "args": _args(event),
            })

    metadata = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "machine" if pid == MACHINE_PID
                 else f"node {pid}"},
    } for pid in sorted(pids)]
    return {"traceEvents": metadata + trace_events,
            "displayTimeUnit": "ns"}


def write_chrome_trace(events: Iterable[Dict], path: str,
                       include_instants: bool = True) -> int:
    """Write the Chrome Trace JSON to ``path``; returns the slice count."""
    trace = chrome_trace(events, include_instants=include_instants)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return len(trace["traceEvents"])


def profile_counter_trace(profile: Dict) -> Dict:
    """Chrome Trace counter ("C") tracks for a host-time profile.

    Renders a :func:`repro.obs.telemetry.profile_snapshot` as per-node
    counter tracks Perfetto draws as bar charts: dispatch seconds,
    activations, and the batch-vs-protocol-fallout split
    (docs/PERFORMANCE.md §1b) per node, plus one machine-wide track
    per timed component.  Counters are point-in-time (host wall clock
    has no simulated timeline), so every sample sits at ``ts`` 0.
    """
    trace_events: List[Dict] = []
    pids = set()
    fallout = profile.get("fallout", {})
    for actor_id, info in profile.get("actors", {}).items():
        pid = info["node"] if isinstance(info["node"], int) \
            else MACHINE_PID
        pids.add(pid)
        drop = fallout.get(str(info["node"]), {})
        drop_s = drop.get("seconds", 0.0)
        trace_events.append({
            "ph": "C", "name": f"host seconds (actor {actor_id})",
            "pid": pid, "tid": 0, "ts": 0,
            "args": {"batch": info["seconds"] - drop_s,
                     "protocol_fallout": drop_s},
        })
        trace_events.append({
            "ph": "C", "name": f"activations (actor {actor_id})",
            "pid": pid, "tid": 0, "ts": 0,
            "args": {"activations": info["activations"]},
        })
    pids.add(MACHINE_PID)
    for name, self_s, cum_s, _calls in profile.get("components", ()):
        trace_events.append({
            "ph": "C", "name": f"component {name}",
            "pid": MACHINE_PID, "tid": 0, "ts": 0,
            "args": {"self_seconds": self_s, "cum_seconds": cum_s},
        })
    metadata = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": "machine" if pid == MACHINE_PID
                 else f"node {pid}"},
    } for pid in sorted(pids)]
    return {"traceEvents": metadata + trace_events,
            "displayTimeUnit": "ns"}


def write_profile_counter_trace(profile: Dict, path: str) -> int:
    """Write :func:`profile_counter_trace` JSON; returns the entry count."""
    trace = profile_counter_trace(profile)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return len(trace["traceEvents"])
