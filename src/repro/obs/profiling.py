"""Wall-clock profiling of the simulator itself.

Distinct from the *simulated* statistics: a :class:`Profiler` measures
how much real (host) time each simulator component consumes and how
many engine activations are dispatched per wall-clock second — the
number the throughput regression guard
(``benchmarks/test_simulator_throughput.py``) tracks.

Components opt in with ``profiler.timer("machine.run")`` context
blocks; a machine with ``profiler=None`` (the default) pays a single
``is None`` check per hook point.  The harness surfaces the report
through :func:`repro.harness.reporting.profile_table` and the CLI's
``--profile`` flag.

Timers are re-entrant and nestable.  Each entry records both
*cumulative* time (wall clock between enter and exit, including nested
timers — :attr:`Profiler.wall_seconds`) and *self* time (cumulative
minus the time spent inside nested timers —
:attr:`Profiler.self_seconds`).  Self times partition the profiled
wall clock, so they sum without double-counting even when components
nest or re-enter; :attr:`Profiler.total_wall_seconds` relies on that
when no outermost ``machine.run`` timer ran.

Beyond component timers, a profiler carries the *host-time
attribution* maps filled by the engine's attributed dispatch loop
(:meth:`repro.sim.engine.Simulator.run` with ``host_prof`` set) and
the fast-path tier instrumentation (``cpu/processor.py`` /
``cpu/columnar.py``):

* :attr:`actors` — per-actor-id ``[seconds, activations]``;
* :attr:`actor_meta` — per-actor-id ``(node, kind)`` labels;
* :attr:`fallout` — per-node ``[seconds, calls]`` spent in the scalar
  directory-protocol fallout path of the batch tiers (the
  docs/PERFORMANCE.md §1b ceiling, measured rather than narrated).

All three are plain dicts of plain lists so profiles pickle across
process pools and merge deterministically
(:func:`repro.obs.telemetry.merge_profiles`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Tuple


class Profiler:
    """Accumulates wall-clock seconds per named component."""

    def __init__(self) -> None:
        #: Cumulative wall seconds per component (includes nested timers).
        self.wall_seconds: Dict[str, float] = {}
        #: Self wall seconds per component (nested timer time excluded).
        self.self_seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Total engine activations dispatched (set by ``Machine.run``).
        self.events = 0
        #: Per-actor host time: ``{actor_id: [seconds, activations]}``.
        self.actors: Dict[int, List] = {}
        #: Per-actor labels: ``{actor_id: (node, kind)}``.
        self.actor_meta: Dict[int, Tuple[int, str]] = {}
        #: Scalar protocol-fallout time per node: ``{node: [sec, calls]}``.
        self.fallout: Dict[int, List] = {}
        # Active timer frames: [component, child_seconds] per entry.
        self._stack: List[List] = []

    @contextmanager
    def timer(self, component: str):
        """Time one entry into ``component`` (re-entrant, additive)."""
        frame = [component, 0.0]
        self._stack.append(frame)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.wall_seconds[component] = (
                self.wall_seconds.get(component, 0.0) + elapsed)
            self.self_seconds[component] = (
                self.self_seconds.get(component, 0.0)
                + elapsed - frame[1])
            self.calls[component] = self.calls.get(component, 0) + 1
            if self._stack:
                # Charge this whole entry to the parent's child time so
                # the parent's self time excludes it.
                self._stack[-1][1] += elapsed

    def note_events(self, total_activations: int) -> None:
        """Record the cumulative engine activation count."""
        self.events = total_activations

    def note_actor(self, actor_id: int, seconds: float,
                   activations: int) -> None:
        """Merge one attribution batch for ``actor_id`` (additive)."""
        cell = self.actors.get(actor_id)
        if cell is None:
            self.actors[actor_id] = [seconds, activations]
        else:
            cell[0] += seconds
            cell[1] += activations

    def label_actor(self, actor_id: int, node: int, kind: str) -> None:
        """Attach a ``(node, kind)`` label to an actor id."""
        self.actor_meta[actor_id] = (node, kind)

    def fallout_cell(self, node: int) -> List:
        """The mutable ``[seconds, calls]`` fallout cell for ``node``.

        Fast-path closures capture the list once at bind time and
        mutate it in place, so the instrumented hot loop performs no
        dict lookups.
        """
        cell = self.fallout.get(node)
        if cell is None:
            cell = [0.0, 0]
            self.fallout[node] = cell
        return cell

    @property
    def total_wall_seconds(self) -> float:
        """Wall time of the outermost component (``machine.run``).

        Falls back to the sum of *self* times when the machine run
        loop was never profiled (e.g. profiling only a recovery) —
        self times partition the profiled wall clock, so nested or
        re-entrant timers never double-count here.
        """
        if "machine.run" in self.wall_seconds:
            return self.wall_seconds["machine.run"]
        return sum(self.self_seconds.values())

    @property
    def actor_seconds(self) -> float:
        """Total host seconds attributed to actor dispatch."""
        return sum(cell[0] for cell in self.actors.values())

    @property
    def fallout_seconds(self) -> float:
        """Total host seconds spent in the scalar protocol fallout path."""
        return sum(cell[0] for cell in self.fallout.values())

    @property
    def events_per_sec(self) -> float:
        """Engine activations dispatched per wall-clock second."""
        wall = self.total_wall_seconds
        return self.events / wall if wall > 0 else 0.0

    def report(self) -> List[Tuple[str, float, int]]:
        """Sorted ``(component, wall_seconds, calls)`` rows, hottest first."""
        return sorted(
            ((name, secs, self.calls.get(name, 0))
             for name, secs in self.wall_seconds.items()),
            key=lambda row: row[1], reverse=True)

    def self_report(self) -> List[Tuple[str, float, float, int]]:
        """Sorted ``(component, self_s, cum_s, calls)`` rows, hottest first."""
        return sorted(
            ((name, self.self_seconds.get(name, 0.0),
              self.wall_seconds.get(name, 0.0), self.calls.get(name, 0))
             for name in self.wall_seconds),
            key=lambda row: row[1], reverse=True)
