"""Wall-clock profiling of the simulator itself.

Distinct from the *simulated* statistics: a :class:`Profiler` measures
how much real (host) time each simulator component consumes and how
many engine activations are dispatched per wall-clock second — the
number the throughput regression guard
(``benchmarks/test_simulator_throughput.py``) tracks.

Components opt in with ``profiler.timer("machine.run")`` context
blocks; a machine with ``profiler=None`` (the default) pays a single
``is None`` check per hook point.  The harness surfaces the report
through :func:`repro.harness.reporting.profile_table` and the CLI's
``--profile`` flag.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Tuple


class Profiler:
    """Accumulates wall-clock seconds per named component."""

    def __init__(self) -> None:
        self.wall_seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Total engine activations dispatched (set by ``Machine.run``).
        self.events = 0

    @contextmanager
    def timer(self, component: str):
        """Time one entry into ``component`` (re-entrant, additive)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.wall_seconds[component] = (
                self.wall_seconds.get(component, 0.0) + elapsed)
            self.calls[component] = self.calls.get(component, 0) + 1

    def note_events(self, total_activations: int) -> None:
        """Record the cumulative engine activation count."""
        self.events = total_activations

    @property
    def total_wall_seconds(self) -> float:
        """Wall time of the outermost component (``machine.run``).

        Falls back to the sum over components when the machine run
        loop was never profiled (e.g. profiling only a recovery).
        """
        if "machine.run" in self.wall_seconds:
            return self.wall_seconds["machine.run"]
        return sum(self.wall_seconds.values())

    @property
    def events_per_sec(self) -> float:
        """Engine activations dispatched per wall-clock second."""
        wall = self.total_wall_seconds
        return self.events / wall if wall > 0 else 0.0

    def report(self) -> List[Tuple[str, float, int]]:
        """Sorted ``(component, wall_seconds, calls)`` rows, hottest first."""
        return sorted(
            ((name, secs, self.calls.get(name, 0))
             for name, secs in self.wall_seconds.items()),
            key=lambda row: row[1], reverse=True)
