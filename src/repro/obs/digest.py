"""Determinism observatory: windowed state digests and chain diffing.

The repo's central invariant is bit-identical determinism — every
execution tier, sweep worker, snapshot restore, and forked campaign
must reproduce the reference run exactly.  This module provides the
instrument panel for that invariant: cheap, deterministic fingerprints
of component state, rolled into a hash chain with one *window* per
checkpoint boundary, so two runs can be compared window-by-window and
a divergence localized instead of merely detected.

Vocabulary (docs/OBSERVABILITY.md, "Determinism observatory"):

* **component digest** — sha256 over a canonical encoding of one
  component's plain-data state.  :func:`component_digest` prefers a
  component's ``digest_state()`` hook and falls back to hashing its
  ``snapshot()`` output, so every snapshot-capable component is
  digestable for free and any component can override what its
  fingerprint covers (e.g. to exclude state another component owns).
* **window** — the named component digests at one checkpoint boundary
  plus the machine digest folding them together with the previous
  window's machine digest (:func:`window_digest`).  Window 0 is the
  initial state; window *k* corresponds to checkpoint epoch *k*.
* **chain** — the ordered windows of one run (:class:`DigestChain`).
  Because each machine digest incorporates its predecessor, equal
  chain *tips* imply equal histories, and the first divergent window
  of two runs is well-defined (:func:`first_divergence`).

Digests are *observations*: they never enter cache keys, ledgers, or
any byte-identical artifact; they ride beside results exactly the way
profiles do (``RunResult.digest``, ``sweep.digest.json``).  Canonical
encoding is JSON with sorted keys (integer dict keys are coerced to
their decimal strings, sets are sorted into lists), which is
deterministic for the plain-data values ``snapshot()`` methods return.
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.tracer import NULL_TRACER

#: Version of the digest window/chain shape (events and side-channel
#: files carry it; bump when the hashed encoding or window layout
#: changes — digests from different schemas are never comparable).
DIGEST_SCHEMA = 1

#: ``prev`` of the first window in every chain.
GENESIS = "genesis"


def _canonical_default(value):
    """Encode the non-JSON types snapshot state may contain."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} "
                    f"for digesting: {value!r}")


def canonical_bytes(value) -> bytes:
    """Deterministic byte encoding of plain snapshot data.

    JSON with sorted keys and no whitespace; integer dict keys become
    decimal strings (all-int key spaces stay totally ordered), sets
    are sorted.  Equal values always encode equally; the encoding is
    stable across processes and interpreter runs.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_canonical_default).encode("utf-8")


def digest_value(value) -> str:
    """sha256 hex digest of :func:`canonical_bytes`."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()


def packed_ints_digest(values: Iterable[int]) -> str:
    """sha256 over little-endian int64-packed ``values``.

    The fast path for large homogeneous integer state — calendar
    buckets, sample time series — where canonical JSON spends nearly
    all its time on int-to-decimal conversion.  Roughly 5x cheaper for
    the same data; ``digest_state()`` hooks use it so that per-window
    digesting stays inside the perf gate
    (``repro.harness.perf.DIGEST_OVERHEAD_MAX``) and event-granularity
    bisection replays stay fast.  Byte order is normalised so digests
    compare across hosts.
    """
    packed = array("q", values)
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        packed.byteswap()
    return hashlib.sha256(packed.tobytes()).hexdigest()


def component_digest(component) -> str:
    """Fingerprint one stateful component.

    Prefers the component's ``digest_state()`` hook; every component
    without one is digested from its ``snapshot()`` output, which the
    uniform capture protocol (docs/SNAPSHOTS.md) already guarantees is
    plain, deterministic data.
    """
    hook = getattr(component, "digest_state", None)
    state = hook() if hook is not None else component.snapshot()
    return digest_value(state)


def window_digest(prev: str, components: Dict[str, str]) -> str:
    """Fold one window's component digests onto the chain.

    Deliberately a pure function of ``(prev, components)`` so
    ``trace-lint`` can recompute it from a ``digest.window`` event's
    fields and verify the chain linkage offline.
    """
    return digest_value({"schema": DIGEST_SCHEMA, "prev": prev,
                         "components": components})


class DigestChain:
    """The ordered digest windows of one run.

    Plain-data throughout: :meth:`to_jsonable` / :meth:`from_jsonable`
    round-trip through JSON (and through machine snapshot images, so a
    restored run's chain continues exactly where the image left off —
    the same contract trace sequence numbers follow).
    """

    __slots__ = ("windows",)

    def __init__(self, windows: Optional[List[Dict]] = None) -> None:
        self.windows: List[Dict] = list(windows or [])

    @property
    def tip(self) -> str:
        """The latest machine digest (``GENESIS`` for an empty chain)."""
        return self.windows[-1]["machine"] if self.windows else GENESIS

    def append(self, components: Dict[str, str], *, epoch: int,
               ts: int) -> Dict:
        """Record one window and return it."""
        prev = self.tip
        window = {"window": len(self.windows), "epoch": epoch, "ts": ts,
                  "prev": prev, "components": dict(components),
                  "machine": window_digest(prev, components)}
        self.windows.append(window)
        return window

    def to_jsonable(self) -> Dict:
        return {"schema": DIGEST_SCHEMA,
                "windows": [dict(w) for w in self.windows]}

    @classmethod
    def from_jsonable(cls, data: Dict) -> "DigestChain":
        schema = data.get("schema")
        if schema != DIGEST_SCHEMA:
            raise ValueError(f"digest chain schema {schema!r} != "
                             f"supported {DIGEST_SCHEMA}")
        return cls(data["windows"])

    def __len__(self) -> int:
        return len(self.windows)

    def __eq__(self, other) -> bool:
        return (isinstance(other, DigestChain)
                and self.windows == other.windows)


class DigestRecorder:
    """Collects a machine's digest chain and narrates it to a tracer.

    Installed on a machine with ``Machine.install_digests``; the
    machine records a window at every checkpoint boundary (and on
    demand via ``Machine.record_digest``).  When a tracer is attached
    each window is also emitted live as a ``digest.window`` event, in
    stream order right after the ``ckpt.commit`` it observes.
    """

    __slots__ = ("chain", "tracer")

    def __init__(self, tracer=NULL_TRACER) -> None:
        self.chain = DigestChain()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def record(self, components: Dict[str, str], *, epoch: int,
               ts: int) -> Dict:
        """Append one window; emit ``digest.window`` when traced."""
        window = self.chain.append(components, epoch=epoch, ts=ts)
        if self.tracer.enabled:
            self.tracer.emit(ts, "digest", "digest.window",
                             window=window["window"], epoch=epoch,
                             machine=window["machine"],
                             prev=window["prev"],
                             components=window["components"])
        return window


def first_divergence(a: Sequence[Dict],
                     b: Sequence[Dict]) -> Optional[Dict]:
    """Locate the first divergent window of two chains.

    ``a`` and ``b`` are window lists (``DigestChain.windows`` or the
    ``windows`` key of a side-channel file).  Returns ``None`` when the
    chains are identical, else a dict naming the first divergent
    window, the first divergent component inside it (components are
    compared in sorted-name order; ``None`` when only chain length
    differs), and both sides' values.
    """
    for wa, wb in zip(a, b):
        if wa["machine"] == wb["machine"]:
            continue
        component = None
        for name in sorted(set(wa["components"]) | set(wb["components"])):
            if wa["components"].get(name) != wb["components"].get(name):
                component = name
                break
        return {"window": wa["window"], "epoch": wa["epoch"],
                "component": component,
                "a": wa["components"].get(component) if component else
                wa["machine"],
                "b": wb["components"].get(component) if component else
                wb["machine"]}
    if len(a) != len(b):
        short, long_ = (a, b) if len(a) < len(b) else (b, a)
        extra = long_[len(short)]
        return {"window": extra["window"], "epoch": extra["epoch"],
                "component": None,
                "a": a[len(short)]["machine"] if len(a) > len(short)
                else None,
                "b": b[len(short)]["machine"] if len(b) > len(short)
                else None}
    return None


def merge_sweep_digests(labels: Sequence[str],
                        digests: Sequence[Optional[Dict]]) -> Dict:
    """Fold per-job digest chains into the ``sweep.digest.json`` shape.

    Jobs appear in sweep order (which is deterministic), so the merged
    document is identical for serial and parallel executions of the
    same sweep — the property the CI determinism gate checks.
    """
    jobs = [{"label": label, "digest": chain}
            for label, chain in zip(labels, digests)]
    return {"schema": DIGEST_SCHEMA, "jobs": jobs}


def write_digest_file(path: str, payload: Dict) -> None:
    """Write a digest side-channel document (sorted keys, trailing NL)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def read_digest_file(path: str) -> Dict:
    """Read a digest side-channel document, validating its schema."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != DIGEST_SCHEMA:
        raise ValueError(f"{path}: digest schema {schema!r} != "
                         f"supported {DIGEST_SCHEMA}")
    return payload
