"""Observability: structured tracing, metrics, and profiling.

Three independent instruments over one simulation:

* :class:`Tracer` — structured, timestamped JSONL events from
  instrumentation points across the engine, coherence protocol, log,
  checkpointing, and recovery.  Schema documented and versioned in
  ``docs/OBSERVABILITY.md``; zero-cost when disabled.
* :class:`MetricsRegistry` — counters/gauges/histograms; the legacy
  :class:`repro.sim.stats.StatsRegistry` is a subclass, so every
  historical counter lives here too.
* :class:`Profiler` — wall-clock per simulator component and
  activations per second, for the simulator's own performance.

Built on the tracer's event stream (all in ``docs/OBSERVABILITY.md``):

* :class:`MonitorSuite` + the monitors in :mod:`repro.obs.monitor` —
  streaming run-health state (log watermarks, checkpoint cadence,
  traffic rates, recovery phases) computed in-process, plus the
  :class:`RunLedger` manifest stamping each run.
* :class:`SpanRecorder` / :class:`Span` — causal per-transaction spans
  with ordered child segments whose durations sum exactly to the span;
  :func:`latency_report` turns them into percentile + attribution
  tables and :func:`chrome_trace` exports them for Perfetto.
* :mod:`repro.obs.report` — the ``repro report`` dashboard: Figures 8,
  11, and 12 plus the span latency tables, recomputed from traces +
  ledgers alone.
* :func:`lint_trace <repro.obs.lint.lint_file>` — the ``repro
  trace-lint`` schema validator (including span pairing, segment-sum
  closure, and digest chain linkage).
* :mod:`repro.obs.digest` — the determinism observatory: per-window
  machine state digests chained at every checkpoint boundary
  (:class:`DigestChain`, :class:`DigestRecorder`), compared by
  :func:`first_divergence` and bisected by ``repro diff``.

Quick start::

    from repro.obs import Tracer, JsonlFileSink, recovery_breakdown
    from repro.harness.runner import build_machine

    tracer = Tracer(JsonlFileSink("out.jsonl"))
    machine = build_machine("cp_parity", tracer=tracer)
    ...
    tracer.close()

or, without writing Python: ``python -m repro trace lu --out out.jsonl``.
"""

from repro.obs.analysis import (
    category_counts,
    latency_report,
    read_trace,
    recovery_breakdown,
    span_ends,
    steady_state_span_ends,
)
from repro.obs.export import (
    chrome_trace,
    profile_counter_trace,
    write_chrome_trace,
    write_profile_counter_trace,
)
from repro.obs.digest import (
    DIGEST_SCHEMA,
    DigestChain,
    DigestRecorder,
    canonical_bytes,
    component_digest,
    digest_value,
    first_divergence,
    merge_sweep_digests,
    read_digest_file,
    window_digest,
    write_digest_file,
)
from repro.obs.lint import lint_events, lint_file
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
)
from repro.obs.monitor import (
    LEDGER_VERSION,
    CacheHealthMonitor,
    CheckpointCadenceMonitor,
    LogOccupancyMonitor,
    MemTrafficMonitor,
    Monitor,
    MonitorSuite,
    RecoveryMonitor,
    RunLedger,
    SpanLatencyMonitor,
    TrafficRateMonitor,
    attach_monitors,
    default_monitors,
    read_ledger,
)
from repro.obs.profiling import Profiler
from repro.obs.spans import (
    NULL_SPANS,
    SEGMENTS,
    SPAN_CLASSES,
    Span,
    SpanRecorder,
)
from repro.obs.telemetry import (
    PROFILE_SCHEMA,
    actor_coverage,
    emit_profile_events,
    fallout_share,
    flamegraph_lines,
    merge_profiles,
    profile_snapshot,
    prometheus_text,
)
from repro.obs.tracer import (
    CATEGORIES,
    NULL_TRACER,
    SCHEMA_VERSION,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    trace_enabled,
)

__all__ = [
    "SCHEMA_VERSION",
    "CATEGORIES",
    "LEDGER_VERSION",
    "Tracer",
    "NULL_TRACER",
    "JsonlFileSink",
    "RingBufferSink",
    "trace_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "Profiler",
    "Span",
    "SpanRecorder",
    "NULL_SPANS",
    "SPAN_CLASSES",
    "SEGMENTS",
    "SpanLatencyMonitor",
    "Monitor",
    "MonitorSuite",
    "CacheHealthMonitor",
    "LogOccupancyMonitor",
    "CheckpointCadenceMonitor",
    "TrafficRateMonitor",
    "RecoveryMonitor",
    "MemTrafficMonitor",
    "RunLedger",
    "attach_monitors",
    "default_monitors",
    "read_ledger",
    "lint_events",
    "lint_file",
    "read_trace",
    "category_counts",
    "recovery_breakdown",
    "span_ends",
    "steady_state_span_ends",
    "latency_report",
    "chrome_trace",
    "write_chrome_trace",
    "profile_counter_trace",
    "write_profile_counter_trace",
    "PROFILE_SCHEMA",
    "profile_snapshot",
    "merge_profiles",
    "actor_coverage",
    "fallout_share",
    "emit_profile_events",
    "flamegraph_lines",
    "prometheus_text",
    "DIGEST_SCHEMA",
    "DigestChain",
    "DigestRecorder",
    "canonical_bytes",
    "component_digest",
    "digest_value",
    "first_divergence",
    "merge_sweep_digests",
    "read_digest_file",
    "window_digest",
    "write_digest_file",
]
