"""Observability: structured tracing, metrics, and profiling.

Three independent instruments over one simulation:

* :class:`Tracer` — structured, timestamped JSONL events from
  instrumentation points across the engine, coherence protocol, log,
  checkpointing, and recovery.  Schema documented and versioned in
  ``docs/OBSERVABILITY.md``; zero-cost when disabled.
* :class:`MetricsRegistry` — counters/gauges/histograms; the legacy
  :class:`repro.sim.stats.StatsRegistry` is a subclass, so every
  historical counter lives here too.
* :class:`Profiler` — wall-clock per simulator component and
  activations per second, for the simulator's own performance.

Quick start::

    from repro.obs import Tracer, JsonlFileSink, recovery_breakdown
    from repro.harness.runner import build_machine

    tracer = Tracer(JsonlFileSink("out.jsonl"))
    machine = build_machine("cp_parity", tracer=tracer)
    ...
    tracer.close()

or, without writing Python: ``python -m repro trace lu --out out.jsonl``.
"""

from repro.obs.analysis import category_counts, read_trace, recovery_breakdown
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import Profiler
from repro.obs.tracer import (
    CATEGORIES,
    NULL_TRACER,
    SCHEMA_VERSION,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
    trace_enabled,
)

__all__ = [
    "SCHEMA_VERSION",
    "CATEGORIES",
    "Tracer",
    "NULL_TRACER",
    "JsonlFileSink",
    "RingBufferSink",
    "trace_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "read_trace",
    "category_counts",
    "recovery_breakdown",
]
