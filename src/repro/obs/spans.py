"""Transaction-level causal spans over the event tracer (schema v2).

A *span* is one end-to-end coherence transaction — a read miss, a
write miss, an upgrade, a write-back, one sharer invalidation, a
global checkpoint, or a recovery — identified by a monotonically
allocated ``txn`` id and carrying an ordered list of child *segments*
that attribute every nanosecond of the span to the resource it was
spent on (directory occupancy, DRAM reads/writes, network transfer,
log append, parity round-trip).

Two invariants make spans trustworthy rather than decorative, and
both are pinned by tests and enforced by ``repro trace-lint``:

* **Segment-sum closure** — the segment durations of every span sum
  *exactly* to the span's duration.  :class:`Span` guarantees this by
  construction: segments are recorded against a monotone time cursor
  (``seg(kind, end_ts)`` charges ``end_ts - cursor`` to ``kind``), and
  the span ends at the cursor's final position.  Overlapping resource
  walks (a parity acknowledgment racing a metadata flush) fold into
  the monotone envelope, so joins never double-count.
* **Counter reconciliation** — per-class span counts equal the
  simulator's own transaction counters bit-for-bit:
  ``read_miss``/``write_miss``/``upgrade``/``writeback``/
  ``invalidation`` match ``txn.*``, ``ckpt`` matches ``ckpt.count``,
  ``recovery`` matches ``recovery.count``.  Replacement *hints*
  (``txn.hint``) move no data and get no span, by design.

Work that is deliberately **off the requester's critical path** — the
store-intent log append of Figure 5(a), the sharing write-back behind
a 3-hop read, the per-node checkpoint commit records — is *not*
charged to the enclosing span: the protocol simply does not hand those
calls the span object, so their time shows up (correctly) only in the
directory busy-time it induces, never in end-to-end latency.

Zero cost when off: components reach the recorder through
``machine.spans``, which defaults to :data:`NULL_SPANS` (``enabled``
is ``False``); every instrumentation site guards with
``if spans.enabled:`` and the disabled path never allocates a span.
When a tracer is installed, span ``begin``/``end`` events flow through
it under the ``span`` category, and closed spans additionally feed the
machine's per-class latency histograms
(``stats.log_histogram("lat.<class>")``) for live percentile digests.

Event shapes (documented in docs/OBSERVABILITY.md)::

    {"cat": "span", "name": "span.begin", "txn": 17, "class":
     "read_miss", "node": 3, ...}
    {"cat": "span", "name": "span.end", "txn": 17, "class":
     "read_miss", "node": 3, "dur_ns": 183, "segs":
     [["net", 40], ["dir", 21], ["mem_read", 60], ["net", 62]]}

``node`` is the transaction's subject (the requester for coherence
transactions, the invalidated sharer for invalidations); machine-wide
spans (``ckpt``, ``recovery``) use ``node == -1``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.tracer import NULL_TRACER, Tracer

#: Span classes, reconciled 1:1 against simulator counters
#: (``txn.read_miss`` ... ``txn.invalidation``, ``ckpt.count``,
#: ``recovery.count``).
SPAN_CLASSES = ("read_miss", "write_miss", "upgrade", "writeback",
                "invalidation", "ckpt", "recovery")

#: Segment kinds a span's duration decomposes into.
SEGMENTS = ("dir", "mem_read", "mem_write", "net", "log", "parity")


class Span:
    """One open transaction: a begin time, a cursor, and its segments.

    ``seg(kind, end_ts)`` attributes the simulated time between the
    cursor and ``end_ts`` to ``kind`` and advances the cursor;
    recording a point that does not move time forward (a local
    network hop, a background acknowledgment already covered) is a
    no-op, which is what keeps the segment sum equal to the span
    duration with no special-casing at the instrumentation sites.
    Consecutive same-kind segments merge.
    """

    __slots__ = ("recorder", "txn", "cls", "node", "begin_ts", "cursor",
                 "segs")

    def __init__(self, recorder: "SpanRecorder", txn: int, cls: str,
                 node: int, begin_ts: int) -> None:
        self.recorder = recorder
        self.txn = txn
        self.cls = cls
        self.node = node
        self.begin_ts = begin_ts
        self.cursor = begin_ts
        self.segs = []           # [[kind, dur_ns], ...] in time order

    def seg(self, kind: str, end_ts: int) -> None:
        """Charge the time from the cursor up to ``end_ts`` to ``kind``."""
        dur = end_ts - self.cursor
        if dur <= 0:
            return
        segs = self.segs
        if segs and segs[-1][0] == kind:
            segs[-1][1] += dur
        else:
            segs.append([kind, dur])
        self.cursor = end_ts

    def end(self, at: Optional[int] = None) -> None:
        """Close the span (defaults to the cursor, guaranteeing closure)."""
        self.recorder._end(self, self.cursor if at is None else at)


class SpanRecorder:
    """Allocates txn ids and emits ``span.begin``/``span.end`` events.

    ``enabled`` is resolved once at construction from the tracer's
    state and category filter, so instrumentation sites pay a single
    attribute read when spans are off.  Txn ids are per-machine and
    allocated in execution order — a deterministic simulation yields
    identical ids (and identical traces) on every run, serial or
    parallel.
    """

    __slots__ = ("tracer", "metrics", "enabled", "next_txn")

    def __init__(self, tracer: Tracer, metrics=None) -> None:
        self.tracer = tracer
        #: A :class:`~repro.obs.metrics.MetricsRegistry` receiving
        #: per-class ``lat.<class>`` log-histogram samples (or None).
        self.metrics = metrics
        self.enabled = bool(
            tracer is not None and tracer.enabled
            and (tracer.categories is None or "span" in tracer.categories))
        self.next_txn = 0

    def begin(self, cls: str, node: int, at: int, **fields) -> Span:
        """Open a span of class ``cls`` at simulated time ``at``."""
        txn = self.next_txn
        self.next_txn = txn + 1
        self.tracer.emit(at, "span", "span.begin", txn=txn, node=node,
                         **{"class": cls}, **fields)
        return Span(self, txn, cls, node, at)

    def _end(self, span: Span, at: int) -> None:
        dur = at - span.begin_ts
        self.tracer.emit(at, "span", "span.end", txn=span.txn,
                         node=span.node, **{"class": span.cls},
                         dur_ns=dur, segs=[list(s) for s in span.segs])
        if self.metrics is not None:
            self.metrics.log_histogram("lat." + span.cls).record(dur)


#: Shared disabled recorder: the default ``spans`` attribute of every
#: machine.  Its ``enabled`` is always ``False``.
NULL_SPANS = SpanRecorder(NULL_TRACER)
