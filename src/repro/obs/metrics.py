"""Counters, gauges, and histograms behind one named registry.

:class:`MetricsRegistry` is the single home for every scalar statistic
a simulation produces.  The legacy :class:`repro.sim.stats.StatsRegistry`
is now a subclass, so every counter the simulator has always kept
(``txn.*``, ``revive.*``, ``ckpt.*``, ``recovery.*``) lives in this
registry and is visible through both the legacy API
(``stats.counter(name)`` / ``stats.snapshot()``) and the richer
metrics API (gauges, histogram percentiles, ``full_snapshot()``).

Metric names share one namespace: asking for an existing name with a
different metric kind raises, which catches typo'd instrumentation at
the call site instead of silently forking a metric.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named, monotonically *addable* integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter/bucket by ``amount``/``nbytes``."""
        self.value += amount

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named last-value-wins measurement, tracking its maximum."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, value) -> None:
        """Record the current level of the measured quantity."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self.value = 0
        self.max_value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram over non-negative integers.

    Samples land in buckets of ``bucket_width``; percentiles are
    resolved to the lower edge of the bucket containing the requested
    rank, so their error is bounded by one bucket width.
    """

    def __init__(self, name: str, bucket_width: int) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    def record(self, value: int) -> None:
        """Record one non-negative sample."""
        if value < 0:
            raise ValueError("Histogram records non-negative values only")
        bucket = value // self.bucket_width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples."""
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """Return sorted ``(bucket_start, count)`` pairs."""
        return [(b * self.bucket_width, n)
                for b, n in sorted(self._buckets.items())]

    def percentile(self, p: float) -> float:
        """Lower edge of the bucket holding the ``p``-th percentile.

        ``p`` is in [0, 100].  Accurate to one ``bucket_width``; an
        empty histogram reports 0.0.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = 0
        for bucket, n in sorted(self._buckets.items()):
            cumulative += n
            if cumulative >= target:
                return float(bucket * self.bucket_width)
        return float(self.max_value)  # pragma: no cover - unreachable

    def summary(self) -> Dict[str, float]:
        """Count/mean/max plus the p50/p90/p99 quantiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max_value,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self._buckets.clear()
        self.count = 0
        self.total = 0
        self.max_value = 0


class LogHistogram:
    """Log-spaced histogram with bounded *relative* bucket error.

    Latencies span several orders of magnitude (an L2 upgrade is tens
    of nanoseconds, a checkpoint flush is tens of microseconds), so
    fixed-width buckets either blur the short transactions or explode
    in bucket count.  This histogram uses 16 sub-buckets per octave
    (HdrHistogram-style): values below 16 are exact, and above that a
    value ``v`` with ``e = v.bit_length() - 5`` lands in bucket
    ``16*e + (v >> e)``, giving ≤ 6.25% relative width everywhere.

    Percentiles report the bucket's **upper** edge (capped at the true
    maximum), so tails are never understated — the dual of
    :class:`Histogram`, whose lower-edge convention can hide a slow
    bucket's worst case.  See ``test_obs_metrics.py`` for the
    side-by-side behavioral contrast.
    """

    #: Sub-buckets per octave; values < _SUBBUCKETS are bucketed exactly.
    _SUBBUCKETS = 16

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    @staticmethod
    def _index(value: int) -> int:
        if value < LogHistogram._SUBBUCKETS:
            return value
        e = value.bit_length() - 5
        return LogHistogram._SUBBUCKETS * e + (value >> e)

    @staticmethod
    def _upper_edge(index: int) -> int:
        sub = LogHistogram._SUBBUCKETS
        if index < sub:
            return index
        # index = sub*e + m with m in [sub, 2*sub); invert, then the
        # bucket holds v with v >> e == m, whose top value is
        # ((m+1) << e) - 1.
        q, r = divmod(index, sub)
        e, m = q - 1, sub + r
        return ((m + 1) << e) - 1

    def record(self, value: int) -> None:
        """Record one non-negative integer sample."""
        if value < 0:
            raise ValueError("LogHistogram records non-negative values only")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples."""
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted ``(bucket_upper_edge, count)`` pairs."""
        return [(self._upper_edge(i), n)
                for i, n in sorted(self._buckets.items())]

    def percentile(self, p: float) -> float:
        """Upper edge of the bucket holding the ``p``-th percentile.

        Capped at the observed maximum so p100 is exact; never
        understates (relative overstatement is bounded by the ≤ 6.25%
        bucket width).  An empty histogram reports 0.0.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = 0
        for index, n in sorted(self._buckets.items()):
            cumulative += n
            if cumulative >= target:
                return float(min(self._upper_edge(index), self.max_value))
        return float(self.max_value)  # pragma: no cover - unreachable

    def summary(self) -> Dict[str, float]:
        """Count/mean/max plus the p50/p90/p99/p999 quantiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max_value,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram."""
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self._buckets.clear()
        self.count = 0
        self.total = 0
        self.max_value = 0


class MetricsRegistry:
    """Named counters, gauges, and histograms for one simulation run.

    Accessors are get-or-create: ``registry.counter("txn.read_miss")``
    returns the same :class:`Counter` on every call, so instrumentation
    sites need no registration step.  The metrics catalog (every name,
    its kind, and its units) is documented in ``docs/OBSERVABILITY.md``.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._log_histograms: Dict[str, LogHistogram] = {}

    # -- get-or-create accessors -----------------------------------------

    def _check_kind(self, name: str, want: str) -> None:
        kinds = (("counter", self._counters), ("gauge", self._gauges),
                 ("histogram", self._histograms),
                 ("log_histogram", self._log_histograms))
        for kind, table in kinds:
            if kind != want and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_kind(name, "counter")
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_kind(name, "gauge")
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str, bucket_width: int = 1) -> Histogram:
        """Get or create the histogram called ``name``.

        ``bucket_width`` applies only on first creation; later callers
        receive the existing histogram unchanged.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_kind(name, "histogram")
            histogram = Histogram(name, bucket_width)
            self._histograms[name] = histogram
        return histogram

    def log_histogram(self, name: str) -> LogHistogram:
        """Get or create the log-spaced histogram called ``name``."""
        histogram = self._log_histograms.get(name)
        if histogram is None:
            self._check_kind(name, "log_histogram")
            histogram = LogHistogram(name)
            self._log_histograms[name] = histogram
        return histogram

    # -- legacy-compatible views -------------------------------------------

    def counters(self) -> Iterable[Counter]:
        """Iterate over all counters."""
        return self._counters.values()

    def gauges(self) -> Iterable[Gauge]:
        """Iterate over all gauges."""
        return self._gauges.values()

    def histograms(self) -> Iterable[Histogram]:
        """Iterate over all histograms."""
        return self._histograms.values()

    def log_histograms(self) -> Iterable[LogHistogram]:
        """Iterate over all log-spaced histograms."""
        return self._log_histograms.values()

    def value(self, name: str) -> int:
        """Current value of a counter (0 when absent)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> Optional[int]:
        """Current value of a gauge (None when absent)."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else None

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of all counters — convenient for reporting and tests."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def full_snapshot(self) -> Dict[str, Dict]:
        """Every metric, grouped by kind (counters/gauges/histograms).

        Linear and log-spaced histograms share one namespace, so both
        report under the ``histograms`` key.
        """
        histograms = {name: h.summary()
                      for name, h in sorted(self._histograms.items())}
        histograms.update((name, h.summary())
                          for name, h in sorted(self._log_histograms.items()))
        return {
            "counters": self.snapshot(),
            "gauges": {name: {"value": g.value, "max": g.max_value}
                       for name, g in sorted(self._gauges.items())},
            "histograms": dict(sorted(histograms.items())),
        }

    def reset_all(self) -> None:
        """Reset every registered metric in place (names survive)."""
        for table in (self._counters, self._gauges, self._histograms,
                      self._log_histograms):
            for metric in table.values():
                metric.reset()

    # -- snapshot / restore (docs/SNAPSHOTS.md) ---------------------------

    def state(self) -> Dict:
        """Full plain-data state of every metric, in registration order.

        Named ``state`` rather than ``snapshot`` because ``snapshot()``
        predates the uniform capture protocol and means "flat counters
        view"; :meth:`restore` accepts exactly this value.
        """
        return {
            "counters": [[name, c.value]
                         for name, c in self._counters.items()],
            "gauges": [[name, g.value, g.max_value]
                       for name, g in self._gauges.items()],
            "histograms": [[name, h.bucket_width,
                            list(h._buckets.items()),
                            h.count, h.total, h.max_value]
                           for name, h in self._histograms.items()],
            "log_histograms": [[name, list(h._buckets.items()),
                                h.count, h.total, h.max_value]
                               for name, h in self._log_histograms.items()],
        }

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`state` capture.

        Metrics are get-or-created by name (registration order is
        reproduced for a freshly-built registry) and overwritten in
        place; metrics created since the capture but absent from it are
        reset rather than dropped, keeping object identities stable for
        any caller holding a metric reference.
        """
        self.reset_all()
        for name, value in state["counters"]:
            self.counter(name).value = value
        for name, value, max_value in state["gauges"]:
            gauge = self.gauge(name)
            gauge.value = value
            gauge.max_value = max_value
        for name, width, buckets, count, total, max_value \
                in state["histograms"]:
            histogram = self.histogram(name, width)
            histogram._buckets.clear()
            histogram._buckets.update(buckets)
            histogram.count = count
            histogram.total = total
            histogram.max_value = max_value
        for name, buckets, count, total, max_value \
                in state["log_histograms"]:
            histogram = self.log_histogram(name)
            histogram._buckets.clear()
            histogram._buckets.update(buckets)
            histogram.count = count
            histogram.total = total
            histogram.max_value = max_value
