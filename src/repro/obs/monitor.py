"""Streaming run-health monitors and the run ledger.

Post-mortem traces (``docs/OBSERVABILITY.md``) answer "what happened";
this module answers "how is the run doing *right now*".  A
:class:`MonitorSuite` interposes on the tracer's sink, so monitors see
every event in-process — no file round-trip, no re-parse — and keep
O(1)-per-event health state:

* :class:`LogOccupancyMonitor` — per-node log occupancy and its
  high-water mark, with configurable high-water alerts (the live view
  of Figure 11's "maximum log size").
* :class:`CheckpointCadenceMonitor` — checkpoint-interval jitter
  against the configured cadence (emergency checkpoints show up as
  short intervals).
* :class:`TrafficRateMonitor` — per-node coherence-transition and
  log-append (parity-update) rates over simulated time.
* :class:`RecoveryMonitor` — recovery-phase durations and whether an
  in-flight recovery completed.
* :class:`MemTrafficMonitor` — per-node L1/L2 hit/miss and
  remote-reference totals from the fast path's ``mem.batch`` events.
* :class:`SpanLatencyMonitor` — streaming per-class transaction
  latency digests from ``span.end`` events (schema v2), with optional
  tail-latency high-water alerts.

Monitors deliberately mirror the simulator's warmup semantics: the
``sim.warmup_done`` event resets the same state the machine resets
(watermarks, hit/miss totals), so final verdicts agree bit-for-bit
with the simulator's own steady-state statistics — pinned by
``tests/test_obs_monitor.py``.

The :class:`RunLedger` stamps a finished run into a machine-readable
manifest: config digest (sha256 over the canonicalised run arguments),
workload seed, trace schema version, headline results, and the final
monitor verdicts.  Ledgers are deliberately free of wall-clock values
so a re-run (serial or parallel) produces a byte-identical manifest —
the property the sweep determinism test pins.

Quick start::

    from repro.obs import JsonlFileSink, MonitorSuite, Tracer
    from repro.obs.monitor import default_monitors

    suite = MonitorSuite(default_monitors(interval_ns=250_000,
                                          log_capacity_bytes=2 << 20),
                         sink=JsonlFileSink("run.jsonl"))
    tracer = Tracer(suite)
    ... run the machine ...
    tracer.close()
    print(suite.verdicts())
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional

from repro.obs.metrics import LogHistogram
from repro.obs.tracer import SCHEMA_VERSION, Tracer

#: Version of the ledger manifest layout (bumped on incompatible change).
LEDGER_VERSION = 1


class Monitor:
    """Base class: consumes trace events, renders a health verdict.

    Subclasses override :meth:`observe` (called once per event, in
    emission order) and :meth:`verdict` (a JSON-able dict that must
    contain a boolean ``"healthy"`` key).
    """

    #: Stable key of this monitor in suite verdicts and ledgers.
    name = "monitor"

    def observe(self, event: Dict) -> None:
        """Consume one trace event (same dicts the sink receives)."""
        raise NotImplementedError

    def verdict(self) -> Dict:
        """Current health state as a JSON-able dict with ``healthy``."""
        raise NotImplementedError

    @property
    def healthy(self) -> bool:
        """Convenience view of ``verdict()["healthy"]``."""
        return bool(self.verdict().get("healthy", True))


class MonitorSuite:
    """A tee *sink*: feeds every event to each monitor, then onward.

    Install it as (or around) a tracer's sink —
    ``Tracer(MonitorSuite(monitors, JsonlFileSink(path)))`` — and the
    monitors observe the live stream in-process while the wrapped sink
    still persists it.  ``sink=None`` monitors without writing a file
    at all.
    """

    def __init__(self, monitors, sink=None) -> None:
        self.monitors: List[Monitor] = list(monitors)
        names = [m.name for m in self.monitors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate monitor names: {names}")
        self.sink = sink

    def write(self, event: Dict) -> None:
        """Sink protocol: observe, then forward."""
        for monitor in self.monitors:
            monitor.observe(event)
        if self.sink is not None:
            self.sink.write(event)

    def close(self) -> None:
        """Sink protocol: close the wrapped sink (monitors stay live)."""
        if self.sink is not None:
            self.sink.close()

    def paths(self) -> List[str]:
        """Delegate segment listing when the wrapped sink rotates."""
        if self.sink is not None and hasattr(self.sink, "paths"):
            return self.sink.paths()
        return []

    def verdicts(self) -> Dict[str, Dict]:
        """``{monitor name: verdict dict}`` for every monitor."""
        return {m.name: m.verdict() for m in self.monitors}

    @property
    def healthy(self) -> bool:
        """True when every monitor reports healthy."""
        return all(m.healthy for m in self.monitors)


def attach_monitors(tracer: Tracer, monitors) -> MonitorSuite:
    """Interpose a :class:`MonitorSuite` on an existing tracer.

    The tracer's current sink (possibly ``None``) becomes the suite's
    wrapped sink, and the tracer is (re-)enabled — monitors are a sink,
    so a sinkless tracer becomes emit-capable once one is attached.
    """
    suite = MonitorSuite(monitors, sink=tracer.sink)
    tracer.sink = suite
    tracer.enabled = True
    return suite


class LogOccupancyMonitor(Monitor):
    """Per-node log occupancy, high-water marks, and overflow alerts.

    Occupancy tracks ``bytes_used`` from ``log.append`` /
    ``log.reclaim`` events; the watermark restarts at the
    ``sim.warmup_done`` marker exactly like the simulator's own
    ``MemoryLog.max_bytes_used`` reset, so the final
    ``watermark_bytes`` equal Figure 11's per-node maxima bit-for-bit.

    With ``capacity_bytes`` set, crossing ``high_water_fraction`` of it
    records an alert (one per excursion: the alert re-arms only after
    occupancy falls back below the threshold).
    """

    name = "log_occupancy"

    def __init__(self, capacity_bytes: Optional[int] = None,
                 high_water_fraction: float = 0.9) -> None:
        if not 0.0 < high_water_fraction <= 1.0:
            raise ValueError("high_water_fraction must be in (0, 1]")
        self.capacity_bytes = capacity_bytes
        self.high_water_fraction = high_water_fraction
        self.threshold_bytes = (None if capacity_bytes is None
                                else high_water_fraction * capacity_bytes)
        self.occupancy: Dict[int, int] = {}
        self.watermark: Dict[int, int] = {}
        self.alerts: List[Dict] = []
        self._above: Dict[int, bool] = {}

    def observe(self, event: Dict) -> None:
        name = event.get("name")
        if name == "log.append":
            node = event["node"]
            used = event["bytes_used"]
            self.occupancy[node] = used
            if used > self.watermark.get(node, 0):
                self.watermark[node] = used
            if self.threshold_bytes is not None:
                if used >= self.threshold_bytes:
                    if not self._above.get(node):
                        self._above[node] = True
                        self.alerts.append({"node": node, "ts": event["ts"],
                                            "bytes_used": used})
                else:
                    self._above[node] = False
        elif name == "log.reclaim":
            node = event["node"]
            used = event["bytes_used"]
            self.occupancy[node] = used
            if (self.threshold_bytes is not None
                    and used < self.threshold_bytes):
                self._above[node] = False
        elif name == "sim.warmup_done":
            # Mirror Machine.note_warmup_done: the high-water mark
            # restarts (occupancy itself carries on) so the verdict
            # reports steady state, not first-touch initialisation.
            self.watermark = {}

    def verdict(self) -> Dict:
        watermarks = dict(sorted(self.watermark.items()))
        return {
            "healthy": not self.alerts,
            "capacity_bytes": self.capacity_bytes,
            "watermark_bytes": watermarks,
            "max_watermark_bytes": max(watermarks.values(), default=0),
            "high_water_alerts": list(self.alerts),
        }


class CheckpointCadenceMonitor(Monitor):
    """Checkpoint-interval jitter against the configured cadence.

    Tracks the gap between consecutive ``ckpt.commit`` events.  With
    ``interval_ns`` set, an interval outside ``(1 ± tolerance) ×
    interval_ns`` is recorded as an excursion — emergency (log
    pressure) checkpoints show up as short intervals, stalled
    checkpointing as long ones.  Without ``interval_ns`` (CpInf
    variants) the monitor is purely informational.
    """

    name = "checkpoint_cadence"

    def __init__(self, interval_ns: Optional[int] = None,
                 tolerance: float = 0.5) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.interval_ns = interval_ns
        self.tolerance = tolerance
        self.commit_ts: List[int] = []
        self.excursions: List[Dict] = []

    def observe(self, event: Dict) -> None:
        if event.get("name") != "ckpt.commit":
            return
        ts = event["ts"]
        if self.commit_ts and self.interval_ns:
            gap = ts - self.commit_ts[-1]
            lo = (1.0 - self.tolerance) * self.interval_ns
            hi = (1.0 + self.tolerance) * self.interval_ns
            if not lo <= gap <= hi:
                self.excursions.append(
                    {"epoch": event.get("epoch"), "ts": ts, "gap_ns": gap})
        self.commit_ts.append(ts)

    def verdict(self) -> Dict:
        gaps = [b - a for a, b in zip(self.commit_ts, self.commit_ts[1:])]
        return {
            "healthy": not self.excursions,
            "interval_ns": self.interval_ns,
            "commits": len(self.commit_ts),
            "mean_gap_ns": (sum(gaps) / len(gaps)) if gaps else None,
            "min_gap_ns": min(gaps, default=None),
            "max_gap_ns": max(gaps, default=None),
            "excursions": list(self.excursions),
        }


class TrafficRateMonitor(Monitor):
    """Per-node coherence and parity-update (log-append) event rates.

    Every ``coh.transition`` is one directory transaction; every
    ``log.append`` implies one logging + parity-update action on its
    home node.  Rates are events per simulated microsecond over the
    observed time span — a live load profile per node, and an
    imbalance check (``max_over_mean`` spikes when one node is hot).
    """

    name = "traffic_rate"

    def __init__(self, max_over_mean_limit: Optional[float] = None) -> None:
        self.max_over_mean_limit = max_over_mean_limit
        self.coh_events: Dict[int, int] = {}
        self.log_events: Dict[int, int] = {}
        self.first_ts: Optional[int] = None
        self.last_ts: Optional[int] = None

    def observe(self, event: Dict) -> None:
        name = event.get("name")
        if name == "coh.transition":
            node = event["node"]
            self.coh_events[node] = self.coh_events.get(node, 0) + 1
        elif name == "log.append":
            node = event["node"]
            self.log_events[node] = self.log_events.get(node, 0) + 1
        else:
            return
        ts = event["ts"]
        if self.first_ts is None:
            self.first_ts = ts
        self.last_ts = ts

    def verdict(self) -> Dict:
        span_ns = ((self.last_ts - self.first_ts)
                   if self.first_ts is not None else 0)
        span_us = span_ns / 1e3 if span_ns > 0 else None

        def rates(counts: Dict[int, int]) -> Dict[int, float]:
            if span_us is None:
                return {}
            return {node: count / span_us
                    for node, count in sorted(counts.items())}

        coh_rates = rates(self.coh_events)
        ratio = None
        if coh_rates:
            mean = sum(coh_rates.values()) / len(coh_rates)
            ratio = (max(coh_rates.values()) / mean) if mean else None
        unhealthy = (self.max_over_mean_limit is not None
                     and ratio is not None
                     and ratio > self.max_over_mean_limit)
        return {
            "healthy": not unhealthy,
            "span_ns": span_ns,
            "coh_events": dict(sorted(self.coh_events.items())),
            "log_events": dict(sorted(self.log_events.items())),
            "coh_per_us": coh_rates,
            "log_per_us": rates(self.log_events),
            "coh_max_over_mean": ratio,
        }


class RecoveryMonitor(Monitor):
    """Recovery-phase durations and completion tracking.

    Unhealthy exactly when a recovery began (``recovery.begin``) but
    never reached ``recovery.end`` — a run that died mid-recovery.
    Phase durations come from ``phase_begin``/``phase_end`` pairs, the
    same ground truth :func:`repro.obs.analysis.recovery_breakdown`
    uses for Figure 12.
    """

    name = "recovery"

    def __init__(self) -> None:
        self.recoveries = 0
        self.completed = 0
        self.phase_ns: Dict[str, int] = {}
        self.lost_work_ns: Optional[int] = None
        self.entries_undone: Optional[int] = None
        self._phase_begin: Dict[str, int] = {}

    def observe(self, event: Dict) -> None:
        name = event.get("name")
        if name == "recovery.begin":
            self.recoveries += 1
            self._phase_begin.clear()
        elif name == "recovery.phase_begin":
            self._phase_begin[event["phase"]] = event["ts"]
        elif name == "recovery.phase_end":
            phase = event["phase"]
            begin = self._phase_begin.get(phase)
            if begin is not None:
                self.phase_ns[phase] = event["ts"] - begin
        elif name == "recovery.end":
            self.completed += 1
            self.lost_work_ns = event.get("lost_work_ns")
            self.entries_undone = event.get("entries_undone")

    def verdict(self) -> Dict:
        return {
            "healthy": self.recoveries == self.completed,
            "recoveries": self.recoveries,
            "completed": self.completed,
            "phase_ns": dict(self.phase_ns),
            "lost_work_ns": self.lost_work_ns,
            "entries_undone": self.entries_undone,
        }


class MemTrafficMonitor(Monitor):
    """Per-node cache hit/miss and remote-reference totals.

    Aggregates the fast path's ``mem.batch`` events.  Totals restart at
    ``sim.warmup_done`` — the same reset the machine applies to its
    L1/L2 counters — so final totals equal the simulator's steady-state
    hit/miss statistics exactly.  Informational (always healthy);
    absent ``mem`` events (reference loop, category filtered out) leave
    every total at zero.
    """

    name = "mem_traffic"
    _FIELDS = ("refs", "l1_hits", "l1_misses", "l2_hits", "l2_misses",
               "remote")

    def __init__(self) -> None:
        self.per_node: Dict[int, Dict[str, int]] = {}
        self.batches = 0

    def observe(self, event: Dict) -> None:
        name = event.get("name")
        if name == "mem.batch":
            self.batches += 1
            totals = self.per_node.setdefault(
                event["node"], dict.fromkeys(self._FIELDS, 0))
            for fieldname in self._FIELDS:
                totals[fieldname] += event[fieldname]
        elif name == "sim.warmup_done":
            # Mirror Machine.note_warmup_done's counter reset.
            self.per_node = {}

    def verdict(self) -> Dict:
        totals = dict.fromkeys(self._FIELDS, 0)
        for node_totals in self.per_node.values():
            for fieldname in self._FIELDS:
                totals[fieldname] += node_totals[fieldname]
        l1 = totals["l1_hits"] + totals["l1_misses"]
        l2 = totals["l2_hits"] + totals["l2_misses"]
        return {
            "healthy": True,
            "batches": self.batches,
            "per_node": {node: dict(vals) for node, vals
                         in sorted(self.per_node.items())},
            "totals": totals,
            "l1_hit_rate": (totals["l1_hits"] / l1) if l1 else None,
            "l2_hit_rate": (totals["l2_hits"] / l2) if l2 else None,
            "remote_fraction": ((totals["remote"] / totals["refs"])
                                if totals["refs"] else None),
        }


class SpanLatencyMonitor(Monitor):
    """Streaming per-class transaction-latency digests with tail alerts.

    Consumes ``span.end`` events (schema v2) into one
    :class:`~repro.obs.metrics.LogHistogram` per span class — the same
    histogram type the machine feeds live through its
    :class:`~repro.obs.spans.SpanRecorder` — so the final digests equal
    the live ``lat.*`` summaries bit-for-bit (pinned by
    ``tests/test_obs_monitor.py``).  Deliberately *not* reset at
    ``sim.warmup_done``: the live latency histograms are never reset
    either (unlike the ``txn.*`` counters), and warmup transactions are
    real latency samples.

    ``high_water_ns`` maps span classes to latency ceilings; a span of
    that class exceeding its ceiling records one alert (class, txn,
    ts, dur_ns) and makes the verdict unhealthy.  ``max_alerts`` bounds
    the retained list so a pathological run cannot balloon the ledger;
    ``alerts_total`` keeps the true count.
    """

    name = "span_latency"

    def __init__(self, high_water_ns: Optional[Dict[str, int]] = None,
                 max_alerts: int = 32) -> None:
        self.high_water_ns = dict(high_water_ns or {})
        self.max_alerts = max_alerts
        self.by_class: Dict[str, LogHistogram] = {}
        self.alerts: List[Dict] = []
        self.alerts_total = 0

    def observe(self, event: Dict) -> None:
        if event.get("name") != "span.end":
            return
        cls = event["class"]
        histogram = self.by_class.get(cls)
        if histogram is None:
            histogram = self.by_class[cls] = LogHistogram("lat." + cls)
        dur = event["dur_ns"]
        histogram.record(dur)
        ceiling = self.high_water_ns.get(cls)
        if ceiling is not None and dur > ceiling:
            self.alerts_total += 1
            if len(self.alerts) < self.max_alerts:
                self.alerts.append({"class": cls, "txn": event["txn"],
                                    "ts": event["ts"], "dur_ns": dur})

    def verdict(self) -> Dict:
        return {
            "healthy": self.alerts_total == 0,
            "classes": {cls: histogram.summary() for cls, histogram
                        in sorted(self.by_class.items())},
            "high_water_ns": dict(sorted(self.high_water_ns.items())),
            "alerts": list(self.alerts),
            "alerts_total": self.alerts_total,
        }


class CacheHealthMonitor(Monitor):
    """Result-cache health from the serving layer's ``svc.*`` stream.

    Counts cache hits, misses, stores, evictions, and corruptions as
    :class:`~repro.harness.store.ResultStore` (or the simulation
    service wrapping it) emits them, and renders the live hit rate.
    Unhealthy when any entry was found corrupted — corruption degrades
    to recompute, never to a wrong answer, but it still means disk rot
    or an interrupted writer worth investigating — or, with
    ``min_hit_rate`` set, when the hit rate over at least
    ``min_lookups`` lookups falls below it.
    """

    name = "cache_health"

    def __init__(self, min_hit_rate: Optional[float] = None,
                 min_lookups: int = 10) -> None:
        if min_hit_rate is not None and not 0.0 <= min_hit_rate <= 1.0:
            raise ValueError("min_hit_rate must be in [0, 1]")
        self.min_hit_rate = min_hit_rate
        self.min_lookups = min_lookups
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.corruptions = 0
        self.corrupt_keys: List[str] = []

    def observe(self, event: Dict) -> None:
        name = event.get("name")
        if name == "svc.cache_hit":
            self.hits += 1
        elif name == "svc.cache_miss":
            self.misses += 1
        elif name == "svc.cache_store":
            self.stores += 1
        elif name == "svc.cache_evict":
            self.evictions += 1
            self.evicted_bytes += event.get("bytes", 0)
        elif name == "svc.cache_corrupt":
            self.corruptions += 1
            if len(self.corrupt_keys) < 32:
                self.corrupt_keys.append(event.get("key"))

    def verdict(self) -> Dict:
        lookups = self.hits + self.misses
        hit_rate = (self.hits / lookups) if lookups else None
        starved = (self.min_hit_rate is not None
                   and lookups >= self.min_lookups
                   and hit_rate is not None
                   and hit_rate < self.min_hit_rate)
        return {
            "healthy": self.corruptions == 0 and not starved,
            "lookups": lookups,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": hit_rate,
            "stores": self.stores,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "corruptions": self.corruptions,
            "corrupt_keys": list(self.corrupt_keys),
            "min_hit_rate": self.min_hit_rate,
        }


def default_monitors(interval_ns: Optional[int] = None,
                     log_capacity_bytes: Optional[int] = None,
                     span_high_water_ns: Optional[Dict[str, int]] = None,
                     ) -> List[Monitor]:
    """The standard monitor set for one run, sized from its config."""
    return [
        LogOccupancyMonitor(capacity_bytes=log_capacity_bytes),
        CheckpointCadenceMonitor(interval_ns=interval_ns),
        TrafficRateMonitor(),
        RecoveryMonitor(),
        MemTrafficMonitor(),
        SpanLatencyMonitor(high_water_ns=span_high_water_ns),
    ]


def _canonical(obj):
    """Reduce run arguments to a deterministic JSON-able structure."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(key): _canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv:
                                         str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


class RunLedger:
    """A machine-readable manifest stamping one simulation run.

    Records *what ran* (app, variant, canonicalised run arguments and
    their sha256 digest, workload seed), *under which contract* (trace
    schema version, ledger version), and *how it went* (headline
    results, events emitted, final monitor verdicts).  Contains no
    wall-clock values: identical configurations yield byte-identical
    manifests, which is what lets the sweep determinism test compare
    serial and parallel ledgers directly.
    """

    def __init__(self, app: str, variant: str,
                 run_args: Optional[Dict] = None,
                 seed: Optional[int] = None) -> None:
        self.app = app
        self.variant = variant
        self.run_args = _canonical(run_args or {})
        self.seed = seed
        self.manifest: Optional[Dict] = None

    def config_digest(self) -> str:
        """sha256 over the canonical (app, variant, run_args, seed)."""
        blob = json.dumps(
            {"app": self.app, "variant": self.variant,
             "run_args": self.run_args, "seed": self.seed},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def finalize(self, result=None, monitors: Optional[MonitorSuite] = None,
                 tracer: Optional[Tracer] = None) -> Dict:
        """Assemble (and retain) the manifest dict.

        ``result`` is a :class:`~repro.harness.runner.RunResult` (or
        None for partial runs such as ``repro recover``); ``monitors``
        contributes verdicts, ``tracer`` the emitted-event count.
        """
        # Canonicalised so the in-memory manifest equals its JSON
        # round-trip (per-node dicts are int-keyed in verdicts; JSON
        # object keys are strings).
        verdicts = _canonical(monitors.verdicts()) if monitors is not None \
            else {}
        manifest = {
            "ledger_version": LEDGER_VERSION,
            "schema_version": SCHEMA_VERSION,
            "app": self.app,
            "variant": self.variant,
            "seed": self.seed,
            "config_digest": self.config_digest(),
            "run_args": self.run_args,
            "events_emitted": (tracer.events_emitted
                               if tracer is not None else None),
            "result": None,
            "verdicts": verdicts,
            "healthy": all(v.get("healthy", True)
                           for v in verdicts.values()),
        }
        if result is not None:
            manifest["result"] = {
                "execution_time_ns": result.execution_time_ns,
                "total_refs": result.total_refs,
                "l2_miss_rate": result.l2_miss_rate,
                "checkpoints": result.checkpoints,
                "max_log_bytes": result.max_log_bytes,
            }
        self.manifest = manifest
        return manifest

    def write(self, path: str) -> None:
        """Serialise the manifest as sorted-key JSON (finalize first)."""
        if self.manifest is None:
            raise RuntimeError("finalize() the ledger before writing it")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.manifest, handle, sort_keys=True, indent=2)
            handle.write("\n")


def read_ledger(path: str) -> Dict:
    """Load one ledger manifest (or the merged sweep manifest)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
