"""Reading traces back and recomputing paper exhibits from them.

The JSONL trace is the ground truth these helpers consume — nothing
here peeks at live simulator state.  :func:`recovery_breakdown`
reconstructs the Figure 12 recovery-time components purely from
``recovery.*`` phase-boundary events plus the ``ckpt.commit`` event of
the recovery's target epoch, and is the function the worked example in
``docs/OBSERVABILITY.md`` (and the acceptance test) checks against
:class:`repro.core.recovery.RecoveryResult`.  :func:`latency_report`
does the same for schema-v2 span events: per-class latency percentiles
and the critical-path attribution table, recomputed from the trace
alone and cross-checked against the live ``lat.*`` histograms in
``tests/test_obs_spans.py``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, List

from repro.obs.metrics import LogHistogram


def read_trace(path: str) -> List[Dict]:
    """Load every event of a JSONL trace, following rotated segments.

    A trace written through a rotating :class:`~repro.obs.tracer.
    JsonlFileSink` spans ``path``, ``path.1``, ``path.2``, ...; all
    segments are concatenated in order.  Events come back as plain
    dicts, oldest first.
    """
    events: List[Dict] = []
    segment = 0
    current = path
    while os.path.exists(current):
        with open(current, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        segment += 1
        current = f"{path}.{segment}"
    if not events and not os.path.exists(path):
        raise FileNotFoundError(path)
    return events


def category_counts(events: Iterable[Dict]) -> Dict[str, int]:
    """Events per category — the first thing to look at in any trace.

    Categories outside :data:`~repro.obs.tracer.CATEGORIES` (from a
    newer schema, or a foreign tool writing the same envelope) are
    counted under their own name rather than folded together; events
    with no usable ``cat`` at all land under ``"<missing>"`` so a
    malformed trace is visible instead of silently mis-grouped.  Use
    ``repro trace-lint`` to diagnose either case.
    """
    counts: Dict[str, int] = {}
    for event in events:
        cat = event.get("cat")
        if not isinstance(cat, str) or not cat:
            cat = "<missing>"
        counts[cat] = counts.get(cat, 0) + 1
    return dict(sorted(counts.items()))


def span_ends(events: Iterable[Dict]) -> List[Dict]:
    """The ``span.end`` events of a trace, in stream order."""
    return [e for e in events if e.get("name") == "span.end"]


def steady_state_span_ends(events: Iterable[Dict]) -> List[Dict]:
    """``span.end`` events after the last warmup reset.

    ``Machine.note_warmup_done`` resets the ``txn.*`` counters and
    emits ``sim.warmup_done``; partitioning the stream at that marker
    (by position, not timestamp — transactions complete synchronously,
    so no span straddles it) makes per-class span counts comparable
    bit-for-bit with the live steady-state counters.
    """
    events = list(events)
    start = 0
    for position, event in enumerate(events):
        if event.get("name") == "sim.warmup_done":
            start = position + 1
    return span_ends(events[start:])


def latency_report(events: Iterable[Dict]) -> Dict[str, Dict]:
    """Per-class latency percentiles + critical-path attribution.

    Recomputed purely from ``span.end`` events.  For every span class
    present the report carries the :class:`LogHistogram` summary
    (count / mean / max / p50 / p90 / p99 / p999, upper-edge
    convention) plus two attribution tables mapping segment kinds to
    their share of span time:

    * ``attribution`` — over *all* spans of the class, and
    * ``tail_attribution`` — over the slowest 1% (at least one span),
      which is what sentences like "read-miss p99 is 62% directory
      occupancy" are about.

    Tail selection orders by ``(-dur_ns, txn)``, so the report is
    byte-deterministic for a deterministic trace — serial and parallel
    sweeps of the same jobs agree exactly.
    """
    by_class: Dict[str, List[Dict]] = {}
    for event in span_ends(events):
        by_class.setdefault(event["class"], []).append(event)

    def _shares(spans: List[Dict]) -> Dict[str, float]:
        totals: Dict[str, int] = {}
        for span in spans:
            for kind, dur in span["segs"]:
                totals[kind] = totals.get(kind, 0) + dur
        grand = sum(totals.values())
        if not grand:
            return {}
        return {kind: totals[kind] / grand
                for kind in sorted(totals)}

    classes: Dict[str, Dict] = {}
    for cls, spans in sorted(by_class.items()):
        histogram = LogHistogram("lat." + cls)
        for span in spans:
            histogram.record(span["dur_ns"])
        tail_n = max(1, math.ceil(len(spans) / 100))
        tail = sorted(spans,
                      key=lambda s: (-s["dur_ns"], s["txn"]))[:tail_n]
        classes[cls] = dict(histogram.summary(),
                            attribution=_shares(spans),
                            tail_attribution=_shares(tail))
    return {"classes": classes,
            "total_spans": sum(len(s) for s in by_class.values())}


def recovery_breakdown(events: Iterable[Dict]) -> Dict[str, int]:
    """Recompute the Figure 12 components from trace events alone.

    Returns nanosecond durations keyed exactly like
    ``RecoveryResult.breakdown()`` — ``lost_work``, ``hw_recovery``,
    ``log_rebuild``, ``rollback`` — plus ``background_repair``
    (Phase 4, which the paper reports separately because the machine
    is available during it).

    Phase durations are *recomputed* as the timestamp difference
    between each phase's ``recovery.phase_begin`` / ``phase_end``
    pair; lost work is the detection timestamp minus the ``ckpt.commit``
    timestamp of the target epoch (epoch 0 is the initial state,
    committed at time 0 and never traced).
    """
    events = list(events)
    begin_ts: Dict[str, int] = {}
    durations: Dict[str, int] = {}
    detect_ts = None
    target_epoch = None
    commit_ts: Dict[int, int] = {0: 0}
    for event in events:
        name = event.get("name")
        if name == "ckpt.commit":
            commit_ts[event["epoch"]] = event["ts"]
        elif name == "recovery.begin":
            detect_ts = event["ts"]
        elif name == "recovery.phase_begin":
            begin_ts[event["phase"]] = event["ts"]
        elif name == "recovery.phase_end":
            phase = event["phase"]
            if phase not in begin_ts:
                raise ValueError(f"phase_end without phase_begin: {phase}")
            durations[phase] = event["ts"] - begin_ts[phase]
        elif name == "recovery.end":
            target_epoch = event["target_epoch"]
    if detect_ts is None or target_epoch is None:
        raise ValueError("trace contains no complete recovery "
                         "(recovery.begin .. recovery.end)")
    if target_epoch not in commit_ts:
        raise ValueError(
            f"trace has no ckpt.commit event for target epoch "
            f"{target_epoch} (was tracing enabled before the run?)")
    breakdown = {
        "lost_work": detect_ts - commit_ts[target_epoch],
        "hw_recovery": durations.get("hw_recovery", 0),
        "log_rebuild": durations.get("log_rebuild", 0),
        "rollback": durations.get("rollback", 0),
        "background_repair": durations.get("background_repair", 0),
    }
    return breakdown
