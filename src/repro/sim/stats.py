"""Counters, histograms, and traffic breakdowns for the evaluation.

The paper's figures are built from a handful of aggregate statistics:
execution time, network traffic by category (Fig. 9), memory traffic by
category (Fig. 10), and log size over time (Fig. 11).  ``TrafficBreakdown``
mirrors the figures' category split exactly.

The scalar metrics (``Counter``, ``Histogram``) are the canonical
implementations from :mod:`repro.obs.metrics`, re-exported here for
backwards compatibility, and :class:`StatsRegistry` is a subclass of
:class:`repro.obs.metrics.MetricsRegistry`: every counter the
simulator keeps is a registry metric, so the legacy accessors
(``counter``/``value``/``snapshot``) and the newer observability
surface (gauges, histogram percentiles, ``full_snapshot``) always
agree by construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["TRAFFIC_CATEGORIES", "Counter", "Gauge", "Histogram",
           "TrafficBreakdown", "StatsRegistry"]

#: Traffic categories used by Figures 9 and 10 of the paper.
TRAFFIC_CATEGORIES = ("RD/RDX", "ExeWB", "CkpWB", "LOG", "PAR")


class TrafficBreakdown:
    """Byte counts split by the paper's five traffic categories.

    One instance tracks network bytes (Fig. 9), another memory bytes
    (Fig. 10).  Baseline-system traffic is RD/RDX + ExeWB; ReVive adds
    CkpWB, LOG and PAR.
    """

    __slots__ = ("name", "bytes_by_category")

    def __init__(self, name: str) -> None:
        self.name = name
        self.bytes_by_category: Dict[str, int] = {c: 0 for c in TRAFFIC_CATEGORIES}

    def add(self, category: str, nbytes: int) -> None:
        """Increase the counter/bucket by ``amount``/``nbytes``."""
        self.bytes_by_category[category] += nbytes

    @property
    def total(self) -> int:
        """Sum over all categories."""
        return sum(self.bytes_by_category.values())

    @property
    def baseline_total(self) -> int:
        """Traffic that exists with or without ReVive."""
        return (self.bytes_by_category["RD/RDX"]
                + self.bytes_by_category["ExeWB"])

    @property
    def revive_total(self) -> int:
        """Traffic caused by ReVive (checkpoint flushes, log, parity)."""
        return self.total - self.baseline_total

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict copy of the per-category byte counts."""
        return dict(self.bytes_by_category)

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        """New breakdown holding the element-wise sum."""
        merged = TrafficBreakdown(self.name)
        for category in TRAFFIC_CATEGORIES:
            merged.bytes_by_category[category] = (
                self.bytes_by_category[category]
                + other.bytes_by_category[category])
        return merged

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        for category in TRAFFIC_CATEGORIES:
            self.bytes_by_category[category] = 0


class StatsRegistry(MetricsRegistry):
    """Owns every statistic collected during one simulation run.

    A :class:`~repro.obs.metrics.MetricsRegistry` extended with the
    paper-specific aggregates: the two traffic breakdowns and the
    Figure 11 log-size time series.  ``sample_log_size`` mirrors each
    sample into the ``log.bytes`` gauge so registry consumers see the
    log high-water mark without knowing about the legacy sample list.
    """

    def __init__(self) -> None:
        super().__init__()
        self.network_traffic = TrafficBreakdown("network")
        self.memory_traffic = TrafficBreakdown("memory")
        self.log_size_samples: List[Tuple[int, int]] = []  # (time, bytes)

    @property
    def max_log_bytes(self) -> int:
        """Largest log size seen by any ``sample_log_size`` call."""
        return self.gauge("log.bytes").max_value

    def sample_log_size(self, time: int, nbytes: int) -> None:
        """Record a (time, total log bytes) sample."""
        self.log_size_samples.append((time, nbytes))
        self.gauge("log.bytes").set(nbytes)

    def state(self) -> Dict:
        """Registry metrics plus the paper-specific aggregates."""
        state = super().state()
        state["network_traffic"] = self.network_traffic.as_dict()
        state["memory_traffic"] = self.memory_traffic.as_dict()
        state["log_size_samples"] = [list(s) for s in self.log_size_samples]
        return state

    def digest_state(self) -> Dict:
        """Determinism-observatory hook (obs/digest.py).

        Fingerprints the *full* registry :meth:`state`, not the legacy
        flat-counters ``snapshot()`` view the default would hash —
        gauges, histograms, and the traffic breakdowns all participate
        in the machine digest.  The Figure 11 sample series grows
        linearly with run length, so it is folded through the
        packed-int fast path (count plus hash) rather than re-encoded
        as JSON at every window.
        """
        from itertools import chain

        from repro.obs.digest import packed_ints_digest

        state = super().state()
        state["network_traffic"] = self.network_traffic.as_dict()
        state["memory_traffic"] = self.memory_traffic.as_dict()
        state["log_size_samples"] = [
            len(self.log_size_samples),
            packed_ints_digest(
                chain.from_iterable(self.log_size_samples))]
        return state

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`state` capture (docs/SNAPSHOTS.md)."""
        super().restore(state)
        self.network_traffic.bytes_by_category.update(
            state["network_traffic"])
        self.memory_traffic.bytes_by_category.update(state["memory_traffic"])
        self.log_size_samples[:] = [tuple(s)
                                    for s in state["log_size_samples"]]
