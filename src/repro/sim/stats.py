"""Counters, histograms, and traffic breakdowns for the evaluation.

The paper's figures are built from a handful of aggregate statistics:
execution time, network traffic by category (Fig. 9), memory traffic by
category (Fig. 10), and log size over time (Fig. 11).  ``TrafficBreakdown``
mirrors the figures' category split exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


#: Traffic categories used by Figures 9 and 10 of the paper.
TRAFFIC_CATEGORIES = ("RD/RDX", "ExeWB", "CkpWB", "LOG", "PAR")


class Counter:
    """A named integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter/bucket by ``amount``/``nbytes``."""
        self.value += amount

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram over non-negative integers."""

    def __init__(self, name: str, bucket_width: int) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0

    def record(self, value: int) -> None:
        """Record one non-negative sample."""
        if value < 0:
            raise ValueError("Histogram records non-negative values only")
        bucket = value // self.bucket_width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples."""
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """Return sorted ``(bucket_start, count)`` pairs."""
        return [(b * self.bucket_width, n)
                for b, n in sorted(self._buckets.items())]


class TrafficBreakdown:
    """Byte counts split by the paper's five traffic categories.

    One instance tracks network bytes (Fig. 9), another memory bytes
    (Fig. 10).  Baseline-system traffic is RD/RDX + ExeWB; ReVive adds
    CkpWB, LOG and PAR.
    """

    __slots__ = ("name", "bytes_by_category")

    def __init__(self, name: str) -> None:
        self.name = name
        self.bytes_by_category: Dict[str, int] = {c: 0 for c in TRAFFIC_CATEGORIES}

    def add(self, category: str, nbytes: int) -> None:
        """Increase the counter/bucket by ``amount``/``nbytes``."""
        self.bytes_by_category[category] += nbytes

    @property
    def total(self) -> int:
        """Sum over all categories."""
        return sum(self.bytes_by_category.values())

    @property
    def baseline_total(self) -> int:
        """Traffic that exists with or without ReVive."""
        return (self.bytes_by_category["RD/RDX"]
                + self.bytes_by_category["ExeWB"])

    @property
    def revive_total(self) -> int:
        """Traffic caused by ReVive (checkpoint flushes, log, parity)."""
        return self.total - self.baseline_total

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict copy of the per-category byte counts."""
        return dict(self.bytes_by_category)

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        """New breakdown holding the element-wise sum."""
        merged = TrafficBreakdown(self.name)
        for category in TRAFFIC_CATEGORIES:
            merged.bytes_by_category[category] = (
                self.bytes_by_category[category]
                + other.bytes_by_category[category])
        return merged

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        for category in TRAFFIC_CATEGORIES:
            self.bytes_by_category[category] = 0


class StatsRegistry:
    """Owns every statistic collected during one simulation run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self.network_traffic = TrafficBreakdown("network")
        self.memory_traffic = TrafficBreakdown("memory")
        self.log_size_samples: List[Tuple[int, int]] = []  # (time, bytes)
        self.max_log_bytes = 0

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def counters(self) -> Iterable[Counter]:
        """Iterate over all counters."""
        return self._counters.values()

    def value(self, name: str) -> int:
        """Current value of a counter (0 when absent)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def sample_log_size(self, time: int, nbytes: int) -> None:
        """Record a (time, total log bytes) sample."""
        self.log_size_samples.append((time, nbytes))
        if nbytes > self.max_log_bytes:
            self.max_log_bytes = nbytes

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of all counters — convenient for reporting and tests."""
        return {name: c.value for name, c in sorted(self._counters.items())}
