"""Calendar-based resource timelines for contention modelling.

Contention in the modelled machine (directory controllers, memory
modules, network interfaces and torus links) is represented with
*capacity calendars*: time is divided into fixed buckets and each
resource can serve ``ports * bucket_ns`` nanoseconds of work per
bucket.  A request arriving at time ``t`` consumes capacity starting at
the first bucket at/after ``t`` with room left, possibly spilling into
later buckets, and reports when its service could begin.

Why a calendar and not a single ``next_free`` timestamp: transaction
walks acquire resources *out of timestamp order* (a processor running
ahead inside its batch quantum, or one transaction touching the same
NI early and late in its own chain).  A busy-until timeline would make
an early-timestamp request queue behind a later-timestamp one — a pure
artifact that snowballs under bursts such as the checkpoint flush.  The
calendar admits each request at its own position in time, so idle
resources never delay anyone while genuine saturation still shows up
as growing waits.

Buckets older than a sliding horizon are pruned, keeping memory use
constant over arbitrarily long runs.
"""

from __future__ import annotations

from typing import Dict

#: Calendar granularity.  Occupancies in this model are 1-25 ns, so a
#: 128 ns bucket keeps per-bucket arithmetic coarse but fair.
BUCKET_NS = 128

#: Buckets further than this behind the newest request are dropped.
#: Processor skew is bounded by the batch quantum (~2 us) plus one
#: transaction chain, so 100 us of history is far more than safe.
_PRUNE_HORIZON_NS = 100_000

_PRUNE_EVERY = 4096


class Resource:
    """A capacity calendar with ``ports`` parallel servers."""

    __slots__ = ("name", "service", "ports", "_capacity", "_buckets",
                 "busy_time", "requests", "_max_seen", "_since_prune",
                 "_full_until")

    def __init__(self, name: str, service: int, ports: int = 1) -> None:
        if ports < 1:
            raise ValueError("ports must be >= 1")
        self.name = name
        self.service = service
        self.ports = ports
        self._capacity = BUCKET_NS * ports
        self._buckets: Dict[int, int] = {}
        self.busy_time = 0
        self.requests = 0
        self._max_seen = 0
        self._since_prune = 0
        # All buckets <= _full_until are known completely full; scans
        # may skip them.  Keeps acquire O(1) amortised under saturation.
        self._full_until = -1

    def acquire(self, at: int, service: int = -1) -> int:
        """Consume ``service`` ns of capacity at/after ``at``.

        Returns the time service could begin; the caller adds its own
        latency on top.  A zero service is free and never waits.
        """
        if service < 0:
            service = self.service
        if service == 0:
            return at
        self.busy_time += service
        self.requests += 1
        if at > self._max_seen:
            self._max_seen = at
        self._since_prune += 1
        if self._since_prune >= _PRUNE_EVERY:
            self._prune()

        buckets = self._buckets
        capacity = self._capacity
        index = at // BUCKET_NS
        # Contiguous-prefix skip: buckets at/below _full_until never
        # regain capacity, so a request landing there jumps past them.
        extend_hint = False
        if index <= self._full_until:
            index = self._full_until + 1
            extend_hint = True
        start = None
        remaining = service
        while remaining > 0:
            used = buckets.get(index, 0)
            free = capacity - used
            if free > 0:
                if start is None:
                    # Service begins part-way into this bucket, behind
                    # the work already booked on its ports.
                    offset = used // self.ports
                    begin = index * BUCKET_NS + offset
                    start = begin if begin > at else at
                take = free if free < remaining else remaining
                used += take
                buckets[index] = used
                remaining -= take
            if used >= capacity and extend_hint \
                    and index == self._full_until + 1:
                self._full_until = index
            elif used < capacity:
                extend_hint = False
            index += 1
        return start

    def _prune(self) -> None:
        self._since_prune = 0
        cutoff = (self._max_seen - _PRUNE_HORIZON_NS) // BUCKET_NS
        if cutoff <= 0:
            return
        stale = [b for b in self._buckets if b < cutoff]
        for b in stale:
            del self._buckets[b]
        # Pruned history must never be re-booked: treat it as full.
        if cutoff - 1 > self._full_until:
            self._full_until = cutoff - 1

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` nanoseconds the resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.ports))

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self._buckets.clear()
        self.busy_time = 0
        self.requests = 0
        self._max_seen = 0
        self._since_prune = 0
        self._full_until = -1

    def snapshot(self) -> Dict:
        """Plain-data state of the calendar and its counters."""
        return {"buckets": list(self._buckets.items()),
                "busy_time": self.busy_time,
                "requests": self.requests,
                "max_seen": self._max_seen,
                "since_prune": self._since_prune,
                "full_until": self._full_until}

    def digest_state(self) -> Dict:
        """Determinism-observatory hook (obs/digest.py).

        The bucket dict is the only bulky part of the calendar, so the
        fingerprint hashes its keys and values over the packed-int
        fast path instead of re-encoding them as canonical JSON at
        every window — an order of magnitude cheaper on a long run's
        calendar.  Key order is the dict's insertion order, the same
        order :meth:`snapshot` exposes; the snapshot oracle already
        guarantees that order is identical across execution tiers and
        snapshot/restore boundaries.
        """
        from repro.obs.digest import packed_ints_digest

        return {"buckets": packed_ints_digest(self._buckets.keys()),
                "occupancy": packed_ints_digest(self._buckets.values()),
                "busy_time": self.busy_time,
                "requests": self.requests,
                "max_seen": self._max_seen,
                "since_prune": self._since_prune,
                "full_until": self._full_until}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot` (docs/SNAPSHOTS.md)."""
        self._buckets.clear()
        self._buckets.update(state["buckets"])
        self.busy_time = state["busy_time"]
        self.requests = state["requests"]
        self._max_seen = state["max_seen"]
        self._since_prune = state["since_prune"]
        self._full_until = state["full_until"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name!r}, ports={self.ports})"


class MultiPortResource(Resource):
    """A resource with several parallel servers (e.g. DRAM banks)."""

    def __init__(self, name: str, service: int, ports: int) -> None:
        super().__init__(name, service, ports)
