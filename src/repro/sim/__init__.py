"""Discrete-event simulation kernel for the ReVive reproduction.

The kernel is deliberately small: a time-ordered event heap used to
interleave processors (`engine`), busy-until resource timelines used to
model contention (`resources`), and counter/histogram plumbing used by the
evaluation harness (`stats`).
"""

from repro.sim.engine import EventQueue, Simulator
from repro.sim.resources import Resource, MultiPortResource
from repro.sim.stats import Counter, Histogram, StatsRegistry, TrafficBreakdown

__all__ = [
    "EventQueue",
    "Simulator",
    "Resource",
    "MultiPortResource",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "TrafficBreakdown",
]
