"""Event queue and simulator clock.

The simulator interleaves *actors* (in practice, processors) on a binary
heap ordered by their next activation time.  Each activation runs a batch
of work for one actor and returns the time of that actor's next
activation, or ``None`` when the actor has finished.

Times are integer nanoseconds.  The modelled core clock is 1 GHz, so one
nanosecond is one cycle (Table 3 of the paper).

Serializability (docs/SNAPSHOTS.md): the heap holds declarative
``(time, seq, actor_id)`` descriptors — plain integers — rather than
the actor callables themselves.  Actors are registered in a side table
(:attr:`Simulator.actors`) in first-scheduling order, which is
deterministic, so a snapshot of the heap is pure data and a restored
machine that registers its actors in the same order re-derives the
identical dispatch schedule.  :meth:`Simulator.snapshot` /
:meth:`Simulator.restore` capture and reinstate the queue, clock, hook
trigger time, and activation count; the hook *callable* is never
serialized — the owning machine re-installs it on reconstruction.

Observability: the simulator counts every activation it dispatches
(``activations``) and, when a :class:`~repro.obs.tracer.Tracer` is
installed in ``tracer``, emits the ``sim`` category events documented
in ``docs/OBSERVABILITY.md`` — ``sim.run_begin`` / ``sim.run_end``
around each :meth:`Simulator.run` call, ``sim.hook_fire`` when the
global hook triggers, and ``sim.actor_retire`` when an actor finishes.
All emission sites are guarded by ``tracer.enabled`` so an untraced
run pays one attribute read per event site.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.obs.tracer import NULL_TRACER


class EventQueue:
    """A min-heap of ``(time, sequence, actor_id)`` descriptors.

    The monotonically increasing sequence number makes ordering total and
    deterministic even when several entries share a timestamp, which keeps
    whole-simulation results reproducible run to run.  Entries are plain
    integer triples — the queue never holds closures — so
    :meth:`snapshot` is a literal copy of the heap.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, time: int, actor_id: int) -> None:
        """Insert an actor descriptor at the given time."""
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        heapq.heappush(self._heap, (time, self._seq, actor_id))
        self._seq += 1

    def pop(self):
        """Remove and return the earliest ``(time, actor_id)`` entry."""
        time, _seq, actor_id = heapq.heappop(self._heap)
        return time, actor_id

    def peek_time(self) -> Optional[int]:
        """Return the earliest scheduled time, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def clear(self) -> None:
        """Drop all contents."""
        self._heap.clear()

    def snapshot(self) -> Dict:
        """Plain-data state: the heap entries and the sequence counter."""
        return {"heap": [list(entry) for entry in self._heap],
                "seq": self._seq}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot` (entries are already heap-ordered)."""
        self._heap = [tuple(entry) for entry in state["heap"]]
        heapq.heapify(self._heap)
        self._seq = state["seq"]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Drives actors until all are finished or a time horizon is reached.

    An actor is any callable ``actor(now) -> Optional[int]``: it performs
    its next batch of work starting at ``now`` and returns the absolute
    time at which it wants to run again (``None`` to retire).  Actors are
    registered on first scheduling and addressed by their registration
    index from then on; the heap itself only ever holds those indices.

    A *global hook* may be installed with :meth:`set_global_hook`; it is a
    callable ``hook(now) -> Optional[int]`` consulted before each actor
    activation.  The machine model uses it to trigger global checkpoints:
    when the earliest pending activation passes the hook's trigger time,
    the hook runs synchronously (it may reschedule every actor) and
    returns the next trigger time.
    """

    __slots__ = ("queue", "now", "_hook", "_hook_time", "activations",
                 "tracer", "actors", "_actor_ids", "host_prof",
                 "digest_hook")

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0
        self._hook: Optional[Callable[[int], Optional[int]]] = None
        self._hook_time: Optional[int] = None
        #: Total actor activations dispatched over the simulator's life.
        self.activations = 0
        #: Trace sink for ``sim.*`` events (``NULL_TRACER`` when off).
        self.tracer = NULL_TRACER
        #: Host-time attribution sink (a
        #: :class:`~repro.obs.profiling.Profiler`), or ``None`` — the
        #: default — in which case :meth:`run` takes the unmetered
        #: dispatch loop and pays nothing.  Deliberately host-side
        #: state: :meth:`snapshot`/:meth:`restore` never touch it.
        self.host_prof = None
        #: Event-granularity digest hook (determinism observatory,
        #: docs/OBSERVABILITY.md): a zero-argument callable invoked
        #: after *every* actor activation, or ``None`` — the default —
        #: in which case :meth:`run` takes the unmetered loop.  Used
        #: only by ``repro diff --bisect`` replays; like ``host_prof``
        #: it is deliberately host-side state that snapshots never
        #: touch.
        self.digest_hook = None
        #: Registered actors, indexed by actor id (registration order).
        self.actors: List[Callable[[int], Optional[int]]] = []
        self._actor_ids: Dict[int, int] = {}

    def register_actor(self, actor: Callable[[int], Optional[int]]) -> int:
        """Assign (or look up) the actor's stable integer id.

        Registration order is the id order; machines register their
        processors in node order, so a rebuilt machine derives identical
        ids and a snapshotted heap resolves to the equivalent actors.
        """
        actor_id = self._actor_ids.get(id(actor))
        if actor_id is None:
            actor_id = len(self.actors)
            self.actors.append(actor)
            self._actor_ids[id(actor)] = actor_id
        return actor_id

    def schedule(self, time: int, actor: Callable[[int], Optional[int]]) -> None:
        """Enqueue an actor's first activation (registering it if new)."""
        self.queue.push(time, self.register_actor(actor))

    def set_global_hook(self, first_time: Optional[int],
                        hook: Callable[[int], Optional[int]]) -> None:
        """Install ``hook`` to fire once simulated time reaches ``first_time``."""
        self._hook = hook
        self._hook_time = first_time

    def expedite_hook(self, time: int) -> None:
        """Pull the global hook's next firing forward to ``time``.

        Used for asynchronously-triggered checkpoints (e.g. log
        pressure): the hook fires before the next actor event at or
        after ``time``.  A later scheduled time is left untouched.
        """
        if self._hook is None or self._hook_time is None:
            return
        if time < self._hook_time:
            self._hook_time = time

    def snapshot(self) -> Dict:
        """Plain-data engine state (docs/SNAPSHOTS.md).

        Covers the event queue, the clock, the hook's next trigger time,
        and the activation count.  The hook callable and the registered
        actors are deliberately absent: both are re-derived by the
        machine that owns the simulator (the hook is re-installed at
        construction, the actors re-register in the same order).
        """
        return {"queue": self.queue.snapshot(),
                "now": self.now,
                "hook_time": self._hook_time,
                "activations": self.activations}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot` over the current actor registry."""
        self.queue.restore(state["queue"])
        self.now = state["now"]
        self._hook_time = state["hook_time"]
        self.activations = state["activations"]

    def run(self, until: Optional[int] = None) -> int:
        """Run until the queue drains or simulated time exceeds ``until``.

        Returns the final simulated time (the largest activation time
        processed).

        Trace events (category ``sim``): ``sim.run_begin`` and
        ``sim.run_end`` bracketing this call, ``sim.hook_fire`` at
        each global-hook trigger, and ``sim.actor_retire`` when an
        actor returns ``None``.
        """
        if self.digest_hook is not None:
            return self._run_digested(until)
        if self.host_prof is not None:
            return self._run_attributed(until)
        tracer = self.tracer
        actors = self.actors
        if tracer.enabled:
            tracer.emit(self.now, "sim", "sim.run_begin", until=until,
                        pending=len(self.queue))
        while self.queue:
            next_time = self.queue.peek_time()
            if (self._hook is not None and self._hook_time is not None
                    and next_time is not None
                    and next_time >= self._hook_time):
                # Fire the global hook at its trigger time — before the
                # horizon check, so a hook due within ``until`` runs
                # even when the next actor event lies beyond it.  The
                # hook may mutate the queue (reschedule every actor),
                # so loop back to re-inspect the head afterwards.
                if until is not None and self._hook_time > until:
                    break
                self.now = max(self.now, self._hook_time)
                if tracer.enabled:
                    tracer.emit(self._hook_time, "sim", "sim.hook_fire")
                self._hook_time = self._hook(self._hook_time)
                continue
            if until is not None and next_time is not None \
                    and next_time > until:
                break
            time, actor_id = self.queue.pop()
            actor = actors[actor_id]
            # Batched dispatch: while this actor is the only live one
            # (the common case once other processors retire, and always
            # in single-processor runs), keep activating it directly
            # instead of cycling the heap.  Hook and horizon are
            # re-checked before every activation, exactly as the outer
            # loop would, so activation counts, hook firings and trace
            # events are identical to unbatched dispatch.
            while True:
                self.now = max(self.now, time)
                self.activations += 1
                next_activation = actor(time)
                if next_activation is None:
                    if tracer.enabled:
                        tracer.emit(self.now, "sim", "sim.actor_retire",
                                    actor=getattr(actor, "proc_id", None))
                    break
                if self.queue:
                    # Another actor is pending — interleave via the heap.
                    self.queue.push(next_activation, actor_id)
                    break
                if (self._hook is not None and self._hook_time is not None
                        and next_activation >= self._hook_time):
                    # Let the outer loop fire the hook (it may drain
                    # and rebuild the queue, so the actor must be in it).
                    self.queue.push(next_activation, actor_id)
                    break
                if until is not None and next_activation > until:
                    self.queue.push(next_activation, actor_id)
                    break
                time = next_activation
        if tracer.enabled:
            tracer.emit(self.now, "sim", "sim.run_end",
                        activations=self.activations)
        return self.now

    def _run_attributed(self, until: Optional[int] = None) -> int:
        """:meth:`run` with per-actor host-time attribution.

        Structurally identical to :meth:`run` — same hook, horizon,
        batching, retirement, and trace semantics, so simulated results
        are bit-identical — but every ``actor(time)`` call is bracketed
        by ``perf_counter`` reads.  Seconds and activation counts
        accumulate in a local dict (one list per actor, mutated in
        place) and flush into :attr:`host_prof` once per :meth:`run`
        call, keeping per-activation overhead to the two clock reads.
        """
        prof = self.host_prof
        attributed: Dict[int, List] = {}
        tracer = self.tracer
        actors = self.actors
        if tracer.enabled:
            tracer.emit(self.now, "sim", "sim.run_begin", until=until,
                        pending=len(self.queue))
        while self.queue:
            next_time = self.queue.peek_time()
            if (self._hook is not None and self._hook_time is not None
                    and next_time is not None
                    and next_time >= self._hook_time):
                if until is not None and self._hook_time > until:
                    break
                self.now = max(self.now, self._hook_time)
                if tracer.enabled:
                    tracer.emit(self._hook_time, "sim", "sim.hook_fire")
                self._hook_time = self._hook(self._hook_time)
                continue
            if until is not None and next_time is not None \
                    and next_time > until:
                break
            time, actor_id = self.queue.pop()
            actor = actors[actor_id]
            cell = attributed.get(actor_id)
            if cell is None:
                cell = attributed[actor_id] = [0.0, 0]
            while True:
                self.now = max(self.now, time)
                self.activations += 1
                begin = perf_counter()
                next_activation = actor(time)
                cell[0] += perf_counter() - begin
                cell[1] += 1
                if next_activation is None:
                    if tracer.enabled:
                        tracer.emit(self.now, "sim", "sim.actor_retire",
                                    actor=getattr(actor, "proc_id", None))
                    break
                if self.queue:
                    self.queue.push(next_activation, actor_id)
                    break
                if (self._hook is not None and self._hook_time is not None
                        and next_activation >= self._hook_time):
                    self.queue.push(next_activation, actor_id)
                    break
                if until is not None and next_activation > until:
                    self.queue.push(next_activation, actor_id)
                    break
                time = next_activation
        for actor_id, cell in attributed.items():
            prof.note_actor(actor_id, cell[0], cell[1])
            if actor_id not in prof.actor_meta:
                actor = actors[actor_id]
                node = getattr(actor, "node_id",
                               getattr(actor, "proc_id", None))
                kind = type(getattr(actor, "__self__", actor)).__name__
                prof.label_actor(actor_id,
                                 node if node is not None else -1, kind)
        if tracer.enabled:
            tracer.emit(self.now, "sim", "sim.run_end",
                        activations=self.activations)
        return self.now

    def _run_digested(self, until: Optional[int] = None) -> int:
        """:meth:`run` with a per-activation digest hook.

        Structurally identical to :meth:`run` — same hook, horizon,
        batching, retirement, and trace semantics, so simulated results
        are bit-identical — but :attr:`digest_hook` is called after
        every ``actor(time)`` return, i.e. at every event boundary,
        where batch closures have flushed their local counters and the
        machine state is coherent enough to fingerprint.  This loop is
        expensive by design (the hook typically digests the whole
        machine); it exists for divergence bisection replays over a
        single checkpoint window, never for production runs.
        """
        hook = self.digest_hook
        tracer = self.tracer
        actors = self.actors
        if tracer.enabled:
            tracer.emit(self.now, "sim", "sim.run_begin", until=until,
                        pending=len(self.queue))
        while self.queue:
            next_time = self.queue.peek_time()
            if (self._hook is not None and self._hook_time is not None
                    and next_time is not None
                    and next_time >= self._hook_time):
                if until is not None and self._hook_time > until:
                    break
                self.now = max(self.now, self._hook_time)
                if tracer.enabled:
                    tracer.emit(self._hook_time, "sim", "sim.hook_fire")
                self._hook_time = self._hook(self._hook_time)
                continue
            if until is not None and next_time is not None \
                    and next_time > until:
                break
            time, actor_id = self.queue.pop()
            actor = actors[actor_id]
            while True:
                self.now = max(self.now, time)
                self.activations += 1
                next_activation = actor(time)
                hook()
                if next_activation is None:
                    if tracer.enabled:
                        tracer.emit(self.now, "sim", "sim.actor_retire",
                                    actor=getattr(actor, "proc_id", None))
                    break
                if self.queue:
                    self.queue.push(next_activation, actor_id)
                    break
                if (self._hook is not None and self._hook_time is not None
                        and next_activation >= self._hook_time):
                    self.queue.push(next_activation, actor_id)
                    break
                if until is not None and next_activation > until:
                    self.queue.push(next_activation, actor_id)
                    break
                time = next_activation
        if tracer.enabled:
            tracer.emit(self.now, "sim", "sim.run_end",
                        activations=self.activations)
        return self.now

    def drain_rebuild(self, reschedule: Callable[[Callable], Optional[int]]) -> None:
        """Empty the queue and re-enqueue each actor at a new time.

        ``reschedule(actor)`` returns the actor's new activation time or
        ``None`` to drop it.  Used by the checkpoint coordinator, which
        must move every processor past the commit barrier at once.
        """
        pending = []
        while self.queue:
            _t, actor_id = self.queue.pop()
            pending.append(actor_id)
        for actor_id in pending:
            new_time = reschedule(self.actors[actor_id])
            if new_time is not None:
                self.queue.push(new_time, actor_id)
