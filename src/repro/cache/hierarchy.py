"""Two-level cache hierarchy bound to one processor.

Coherence state and dirty values are held in the L2 (the point of
coherence for the directory protocol); the L1 is a tag filter that only
decides the hit latency.  This is the standard reduction for inclusive
hierarchies at memory-system fidelity: the directory sees one cache per
node, and the dirty-line population — which drives ReVive's write-back,
log, parity, and checkpoint-flush traffic — lives in the L2 exactly as
in the paper's machine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.cache import (
    CacheLine,
    SetAssocCache,
    TagFilter,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
)
from repro.machine.config import MachineConfig

#: What the access needs from the directory.
HIT, NEED_GETS, NEED_GETX, NEED_UPGRADE = "hit", "GETS", "GETX", "UPG"


class AccessResult:
    """Outcome of a load/store probe against the hierarchy."""

    __slots__ = ("need", "l1_hit", "silent_upgrade")

    def __init__(self, need: str, l1_hit: bool,
                 silent_upgrade: bool = False) -> None:
        self.need = need
        self.l1_hit = l1_hit
        self.silent_upgrade = silent_upgrade

    @property
    def is_hit(self) -> bool:
        """True when the access completed without a directory transaction."""
        return self.need == HIT


class CacheHierarchy:
    """L1 tag filter + L2 state/value cache for one node."""

    __slots__ = ("config", "node", "l1", "l2", "silent_upgrades")

    def __init__(self, config: MachineConfig, node: int) -> None:
        self.config = config
        self.node = node
        self.l1 = TagFilter(f"L1.{node}", config.l1_size, config.l1_assoc,
                            config.line_size)
        self.l2 = SetAssocCache(f"L2.{node}", config.l2_size, config.l2_assoc,
                                config.line_size)
        self.silent_upgrades = 0

    # -- processor side ----------------------------------------------------

    def probe(self, line_addr: int, is_write: bool) -> AccessResult:
        """Classify an access: hit, upgrade needed, or full miss.

        A write hit on an EXCLUSIVE line upgrades it to MODIFIED silently
        (no directory transaction) — the paper's "write to a line in
        shared-exclusive state", which later produces a write-back that
        the home sees with its Logged bit still clear (Figure 5(b)).
        """
        line = self.l2.lookup(line_addr)
        l1_hit = self.l1.touch(line_addr)
        if line is None:
            return AccessResult(NEED_GETX if is_write else NEED_GETS, False)
        if not is_write:
            return AccessResult(HIT, l1_hit)
        if line.state == SHARED:
            return AccessResult(NEED_UPGRADE, l1_hit)
        silent = line.state == EXCLUSIVE
        if silent:
            self.silent_upgrades += 1
        line.state = MODIFIED
        return AccessResult(HIT, l1_hit, silent_upgrade=silent)

    def bulk_residency(self, line_addrs, l2_set_ids=None):
        """L2-resident line (or None) per address, for batch classification.

        The columnar engine (``cpu.columnar``) uses this to split a
        reference batch into a vectorizable pure prefix (L2 hits whose
        outcome cannot perturb later lookups) and scalar fallout
        references; LRU order and hit counters are untouched, exactly
        like :meth:`SetAssocCache.peek`.
        """
        return self.l2.bulk_peek(line_addrs, l2_set_ids)

    def write_value(self, line_addr: int, value: int) -> None:
        """Record the new value of a dirty line after a store."""
        line = self.l2.peek(line_addr)
        if line is None or line.state != MODIFIED:
            raise RuntimeError(
                f"write_value on non-modified line {line_addr:#x}")
        line.value = value

    def fill(self, line_addr: int, state: int,
             value: int) -> List[Tuple[int, int]]:
        """Install a line after a miss; returns dirty evictions.

        Each returned ``(addr, value)`` pair must be written back to its
        home memory by the caller.  Clean EXCLUSIVE victims also appear —
        flagged by ``value is None`` — because the directory is notified
        of ownership replacement with a hint message.
        """
        victim = self.l2.insert(line_addr, state, value)
        self.l1.touch(line_addr)
        writebacks: List[Tuple[int, Optional[int]]] = []
        if victim is not None:
            self.l1.invalidate(victim.addr)
            if victim.state == MODIFIED:
                writebacks.append((victim.addr, victim.value))
            elif victim.state == EXCLUSIVE:
                writebacks.append((victim.addr, None))
        return writebacks

    # -- directory side ------------------------------------------------------

    def invalidate(self, line_addr: int) -> Optional[int]:
        """Directory-initiated invalidation; returns dirty value, if any."""
        self.l1.invalidate(line_addr)
        line = self.l2.invalidate(line_addr)
        if line is not None and line.state == MODIFIED:
            return line.value
        return None

    def downgrade(self, line_addr: int) -> Optional[int]:
        """Directory-initiated M/E -> S downgrade; returns dirty value."""
        line = self.l2.peek(line_addr)
        if line is None:
            return None
        value = line.value if line.state == MODIFIED else None
        line.state = SHARED
        self.l2.epoch += 1          # M/E -> S invalidates write-purity
        return value

    # -- checkpoint / recovery support ---------------------------------------

    def dirty_lines(self) -> List[CacheLine]:
        """Snapshot of dirty lines (checkpoint flush iterates over this)."""
        return list(self.l2.dirty_lines())

    def mark_clean(self, line_addr: int) -> None:
        """After a flush write-back the line stays cached, SHARED.

        Downgrading (rather than keeping the line exclusive-clean)
        makes the processor's next write an *upgrade* request, so the
        home logs the line in the background on the store intent
        (Figure 5(a)) instead of hitting the serialised log-before-data
        path at the next flush — the paper's Figure 5(b), which it
        calls the least frequent case.
        """
        line = self.l2.peek(line_addr)
        if line is not None and line.state == MODIFIED:
            line.state = SHARED
            self.l2.epoch += 1      # M -> S invalidates write-purity

    def clear(self) -> None:
        """Invalidate everything (recovery wipes the caches)."""
        self.l1.clear()
        self.l2.clear()

    # -- snapshot / restore (docs/SNAPSHOTS.md) ------------------------------

    def snapshot(self) -> dict:
        """Plain-data state of both levels plus the upgrade counter."""
        return {"l1": self.l1.snapshot(),
                "l2": self.l2.snapshot(),
                "silent_upgrades": self.silent_upgrades}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`."""
        self.l1.restore(state["l1"])
        self.l2.restore(state["l2"])
        self.silent_upgrades = state["silent_upgrades"]

    # -- statistics ------------------------------------------------------------

    @property
    def l2_miss_rate(self) -> float:
        """The L2's miss rate (the paper's Table 4 metric)."""
        return self.l2.miss_rate
