"""Set-associative write-back cache with MESI line states.

Line addresses are full physical addresses aligned to the line size.
LRU order inside each set is maintained by Python dict insertion order:
a touch removes and re-inserts the line, so the first key of a set dict
is always the least recently used way.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

INVALID, SHARED, EXCLUSIVE, MODIFIED = 0, 1, 2, 3

_STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


def state_name(state: int) -> str:
    """Single-letter name of a MESI state (debugging/repr)."""
    return _STATE_NAMES[state]


#: Lines per 4 KB page at 64-byte lines; the page-hash granularity.
_PAGE_LINES = 64

#: Sentinel distinguishing "not present" from a stored None.
_ABSENT = object()


def set_index(addr: int, line_size: int, n_sets: int) -> int:
    """Page-hashed set index.

    Within a page, lines map to sets by plain modulo — preserving the
    conflict-freedom of contiguous/strided working sets.  The *page*
    selects its group of sets through a multiplicative hash.  Plain
    modulo across the whole address would interact pathologically with
    the parity layout (mirroring hands out only every other physical
    page, leaving the page-index bit of the set index constant and
    half the cache unused); hashing the page index decorrelates any
    allocation stride from set selection, as real hashed-index L2s do.
    """
    line_no = addr // line_size
    if n_sets <= _PAGE_LINES:
        return line_no % n_sets
    groups = n_sets // _PAGE_LINES
    page = line_no // _PAGE_LINES
    group = ((page * 2654435761) >> 12) % groups
    return (line_no % _PAGE_LINES) + _PAGE_LINES * group


def bulk_set_index(line_nos, n_sets: int, groups: int):
    """Vectorized :func:`set_index` over an array of line numbers.

    ``line_nos`` is a numpy int64 array of ``addr >> line_shift`` values;
    ``n_sets``/``groups`` come from :func:`index_params` (callers must
    have checked ``line_shift is not None``).  Element-for-element equal
    to :func:`set_index` — pinned by ``tests/test_cache.py``.
    """
    if not groups:
        return line_nos % n_sets
    return (line_nos & 63) + ((((line_nos >> 6) * 2654435761) >> 12)
                              % groups << 6)


def index_params(line_size: int, n_sets: int):
    """``(line_shift, n_sets, groups)`` for inlined set indexing.

    ``groups`` is 0 when the cache is small enough for plain modulo
    indexing.  ``line_shift`` is ``None`` for a non-power-of-two line
    size (then callers must fall back to :func:`set_index`).  The
    fast-path reference pipeline (``cpu.processor``) inlines
    :func:`set_index` using these precomputed values; the two
    formulations are kept equivalent by ``tests/test_cache.py``.
    """
    if line_size & (line_size - 1):
        line_shift = None
    else:
        line_shift = line_size.bit_length() - 1
    groups = n_sets // _PAGE_LINES if n_sets > _PAGE_LINES else 0
    return line_shift, n_sets, groups


class CacheLine:
    """One resident line: its address, MESI state and (if dirty) value."""

    __slots__ = ("addr", "state", "value")

    def __init__(self, addr: int, state: int, value: int = 0) -> None:
        self.addr = addr
        self.state = state
        self.value = value

    @property
    def dirty(self) -> bool:
        """True when the line holds a modified (unwritten-back) value."""
        return self.state == MODIFIED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheLine({self.addr:#x}, {state_name(self.state)})"


class SetAssocCache:
    """A set-associative cache of :class:`CacheLine` records.

    The columnar engine (``cpu.columnar``) virtualizes this cache's
    *LRU order* (membership, state and values always stay live): pure
    batch references defer their pop/reinsert LRU refreshes until
    something actually depends on the order.  Two attributes carry the
    contract, mirroring :class:`TagFilter`:

    * ``sync_hook`` — when set, called before any operation that reads
      or rewrites LRU order (:meth:`lookup`, :meth:`insert` — victim
      choice, :meth:`snapshot`, :meth:`clear`, :meth:`dirty_lines`,
      :meth:`resident_lines`), letting the engine apply its deferred
      reorders first.  Membership-only operations (:meth:`peek`,
      :meth:`invalidate`) need no hook: a deferred touch of a removed
      line is simply skipped at flush time, which preserves the
      relative order of every surviving line.
    * ``epoch`` — incremented on any change that can invalidate a
      batch residency/state classification: insert, invalidate, a
      directory downgrade or checkpoint ``mark_clean`` (both via
      :class:`~repro.cache.hierarchy.CacheHierarchy`), clear, restore.
      :meth:`restore` deliberately skips the hook — restored state is
      authoritative, so pending reorders are stale by definition and
      the owning processor drops them with its closure.
    """

    __slots__ = ("name", "size", "assoc", "line_size", "n_sets", "_sets",
                 "hits", "misses", "_line_shift", "_groups",
                 "epoch", "sync_hook")

    def __init__(self, name: str, size: int, assoc: int,
                 line_size: int) -> None:
        n_sets = size // (assoc * line_size)
        if n_sets < 1 or size % (assoc * line_size) != 0:
            raise ValueError(
                f"cache geometry invalid: size={size} assoc={assoc} "
                f"line={line_size}")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = n_sets
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self._line_shift, _, self._groups = index_params(line_size, n_sets)
        self.epoch = 0
        self.sync_hook = None

    def index_params(self):
        """``(line_shift, n_sets, groups)`` for the inlined fast path."""
        return self._line_shift, self.n_sets, self._groups

    def raw_sets(self) -> List[Dict[int, CacheLine]]:
        """The per-set dicts, for the inlined fast path.

        The list identity is stable for the cache's lifetime (``clear``
        empties the dicts in place), so callers may bind it once.
        """
        return self._sets

    def _set_of(self, addr: int) -> Dict[int, CacheLine]:
        # set_index, inlined with the precomputed shift/groups.
        shift = self._line_shift
        if shift is None:
            return self._sets[set_index(addr, self.line_size, self.n_sets)]
        line_no = addr >> shift
        groups = self._groups
        if not groups:
            return self._sets[line_no % self.n_sets]
        group = (((line_no >> 6) * 2654435761) >> 12) % groups
        return self._sets[(line_no & 63) + (group << 6)]

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Find the line and refresh its LRU position; counts hit/miss."""
        if self.sync_hook is not None:
            self.sync_hook()
        cache_set = self._set_of(addr)
        line = cache_set.pop(addr, None)
        if line is None:
            self.misses += 1
            return None
        cache_set[addr] = line           # re-insert: most recently used
        self.hits += 1
        return line

    def bulk_set_ids(self, line_addrs):
        """Set index of each address in a numpy int64 array.

        The columnar engine's batched counterpart of :meth:`_set_of`;
        requires a power-of-two line size (``_line_shift`` not None).
        """
        return bulk_set_index(line_addrs >> self._line_shift,
                              self.n_sets, self._groups)

    def bulk_peek(self, addrs, set_ids=None) -> List[Optional[CacheLine]]:
        """Resident :class:`CacheLine` (or None) per address, no LRU disturb.

        ``addrs`` is a plain-int list; ``set_ids`` (optional) the
        matching per-address set indices from :meth:`bulk_set_ids`.
        Like :meth:`peek`, counts nothing — classification only.
        """
        sets = self._sets
        if set_ids is None:
            return [self._set_of(a).get(a) for a in addrs]
        return [sets[s].get(a) for s, a in zip(set_ids, addrs)]

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Find the line without disturbing LRU or hit statistics."""
        return self._set_of(addr).get(addr)

    def insert(self, addr: int, state: int,
               value: int = 0) -> Optional[CacheLine]:
        """Insert (or overwrite) a line; returns the evicted victim, if any.

        The victim is chosen LRU.  The caller is responsible for writing
        back a dirty victim.
        """
        if self.sync_hook is not None:
            self.sync_hook()
        self.epoch += 1
        cache_set = self._set_of(addr)
        existing = cache_set.pop(addr, None)
        if existing is not None:
            existing.state = state
            existing.value = value
            cache_set[addr] = existing
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            lru_addr = next(iter(cache_set))
            victim = cache_set.pop(lru_addr)
        cache_set[addr] = CacheLine(addr, state, value)
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove the line, returning it (so callers can salvage a dirty value)."""
        line = self._set_of(addr).pop(addr, None)
        if line is not None:
            self.epoch += 1
        return line

    def dirty_lines(self) -> Iterator[CacheLine]:
        """Iterate over the MODIFIED lines currently resident.

        Iteration order is LRU order, which checkpoint flushes turn into
        writeback order — hence the ``sync_hook``.
        """
        if self.sync_hook is not None:
            self.sync_hook()
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.state == MODIFIED:
                    yield line

    def resident_lines(self) -> Iterator[CacheLine]:
        """Iterate over every resident line (in LRU order per set)."""
        if self.sync_hook is not None:
            self.sync_hook()
        for cache_set in self._sets:
            yield from cache_set.values()

    def clear(self) -> None:
        """Drop every line (recovery invalidates all caches)."""
        if self.sync_hook is not None:
            self.sync_hook()
        for cache_set in self._sets:
            cache_set.clear()
        self.epoch += 1

    def resident_count(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    def snapshot(self) -> Dict:
        """Plain-data state: per-set lines in LRU order, plus counters.

        Dict insertion order *is* the LRU order, so each set serialises
        as an ordered ``[addr, state, value]`` list (docs/SNAPSHOTS.md).
        """
        if self.sync_hook is not None:
            self.sync_hook()
        return {"sets": [[[line.addr, line.state, line.value]
                          for line in cache_set.values()]
                         for cache_set in self._sets],
                "hits": self.hits,
                "misses": self.misses}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot`, preserving LRU order.

        The set dicts are mutated in place — the fast path binds
        ``raw_sets()`` once, so their identities must survive a restore.
        No ``sync_hook`` here: restored state is authoritative, so any
        pending deferred reorder is stale — the epoch bump tells the
        engine to drop it.
        """
        for cache_set, lines in zip(self._sets, state["sets"]):
            cache_set.clear()
            for addr, line_state, value in lines:
                cache_set[addr] = CacheLine(addr, line_state, value)
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.epoch += 1

    @property
    def miss_rate(self) -> float:
        """Misses / lookups since construction (or last reset)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class TagFilter:
    """Tag-only set-associative array.

    Used to model the L1 for *timing*: coherence state and dirty values
    live in the L2 (the point of coherence), while the L1 filter decides
    whether an access pays the 2 ns L1 latency or the 12 ns L2 latency.

    The columnar engine virtualizes this array: it precomputes the
    filter's hit/miss stream from reference addresses alone and defers
    materializing the per-set dicts until someone actually looks.  Two
    attributes carry that contract:

    * ``sync_hook`` — when set, called before any operation that reads
      or mutates the set dicts (:meth:`touch`, :meth:`invalidate`,
      :meth:`clear`, :meth:`snapshot`), giving the engine a chance to
      fast-forward the dicts to the current stream position.
    * ``epoch`` — incremented whenever the array changes through
      anything *other* than the modeled reference stream (an
      invalidation that actually removes a tag, a wholesale clear or
      restore).  The engine discards its precomputed stream when the
      epoch moves.
    """

    __slots__ = ("name", "assoc", "line_size", "n_sets", "_sets",
                 "hits", "misses", "_line_shift", "_groups",
                 "epoch", "sync_hook")

    def __init__(self, name: str, size: int, assoc: int,
                 line_size: int) -> None:
        n_sets = size // (assoc * line_size)
        if n_sets < 1 or size % (assoc * line_size) != 0:
            raise ValueError(
                f"filter geometry invalid: size={size} assoc={assoc} "
                f"line={line_size}")
        self.name = name
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = n_sets
        self._sets: List[Dict[int, None]] = [dict() for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self._line_shift, _, self._groups = index_params(line_size, n_sets)
        self.epoch = 0
        self.sync_hook = None

    def index_params(self):
        """``(line_shift, n_sets, groups)`` for the inlined fast path."""
        return self._line_shift, self.n_sets, self._groups

    def raw_sets(self) -> List[Dict[int, None]]:
        """The per-set dicts, for the inlined fast path (stable list)."""
        return self._sets

    def _set_of(self, addr: int) -> Dict[int, None]:
        shift = self._line_shift
        if shift is None:
            return self._sets[set_index(addr, self.line_size, self.n_sets)]
        line_no = addr >> shift
        groups = self._groups
        if not groups:
            return self._sets[line_no % self.n_sets]
        group = (((line_no >> 6) * 2654435761) >> 12) % groups
        return self._sets[(line_no & 63) + (group << 6)]

    def bulk_set_ids(self, line_addrs):
        """Set index of each address in a numpy int64 array (see
        :meth:`SetAssocCache.bulk_set_ids`)."""
        return bulk_set_index(line_addrs >> self._line_shift,
                              self.n_sets, self._groups)

    def touch(self, addr: int) -> bool:
        """Record an access; returns True on hit."""
        if self.sync_hook is not None:
            self.sync_hook()
        tag_set = self._set_of(addr)
        if addr in tag_set:
            del tag_set[addr]
            tag_set[addr] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(tag_set) >= self.assoc:
            del tag_set[next(iter(tag_set))]
        tag_set[addr] = None
        return False

    def invalidate(self, addr: int) -> None:
        """Remove the address from the array, if present."""
        if self.sync_hook is not None:
            self.sync_hook()
        if self._set_of(addr).pop(addr, _ABSENT) is not _ABSENT:
            self.epoch += 1

    def clear(self) -> None:
        """Drop all contents."""
        if self.sync_hook is not None:
            self.sync_hook()
        for tag_set in self._sets:
            tag_set.clear()
        self.epoch += 1

    def snapshot(self) -> Dict:
        """Plain-data state: per-set tags in LRU order, plus counters."""
        if self.sync_hook is not None:
            self.sync_hook()
        return {"sets": [list(tag_set) for tag_set in self._sets],
                "hits": self.hits,
                "misses": self.misses}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot` in place (stable set dicts).

        No ``sync_hook`` here: the restored state is authoritative, so
        any pending virtual stream is stale by definition — the epoch
        bump tells the engine to drop it.
        """
        for tag_set, tags in zip(self._sets, state["sets"]):
            tag_set.clear()
            for addr in tags:
                tag_set[addr] = None
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.epoch += 1
