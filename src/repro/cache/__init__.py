"""Write-back set-associative caches and the two-level hierarchy."""

from repro.cache.cache import (
    CacheLine,
    SetAssocCache,
    TagFilter,
    INVALID,
    SHARED,
    EXCLUSIVE,
    MODIFIED,
    state_name,
)
from repro.cache.hierarchy import AccessResult, CacheHierarchy

__all__ = [
    "CacheLine",
    "SetAssocCache",
    "TagFilter",
    "AccessResult",
    "CacheHierarchy",
    "INVALID",
    "SHARED",
    "EXCLUSIVE",
    "MODIFIED",
    "state_name",
]
