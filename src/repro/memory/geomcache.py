"""Memoized address/stripe geometry (the per-line geometry cache).

Every ReVive memory write consults the same pure functions of the
physical address: which node is home, where the covering parity line
lives, whether the stripe is mirrored, and (during recovery) which
stripe peers survive.  All of these are fixed by the machine geometry
the moment the address is allocated — so the answers are memoized here,
one dict entry per distinct line address, and shared by the parity
engine, the ReVive controller/log path, and the coherence protocol's
home lookup (docs/PERFORMANCE.md).

The cache must never outlive the geometry it describes.  A machine
rebuild constructs a fresh :class:`GeometryCache` (it is owned by
:class:`~repro.machine.system.Machine`), and recovery calls
:meth:`GeometryCache.invalidate` after a lost node's memory is marked
recovered, so no stale stripe map can survive into post-recovery
operation — ``tests/test_geometry_cache.py`` pins both behaviours.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.layout import AddressSpace, ParityGeometry


class GeometryCache:
    """Per-line memoized geometry: home node, parity line, stripe peers.

    ``entry(line_addr)`` returns ``(home_node, parity_line,
    parity_home, mirrored)`` and is the hot-path accessor; parity
    fields are ``None`` when the machine runs without redundancy (the
    baseline variant) or when the line is itself parity.
    """

    __slots__ = ("space", "geometry", "_entries", "_peers", "_homes",
                 "builds", "invalidations")

    def __init__(self, space: "AddressSpace",
                 geometry: "ParityGeometry") -> None:
        self.space = space
        self.geometry = geometry
        self._entries: Dict[int, Tuple[int, Optional[int], Optional[int],
                                       bool]] = {}
        self._peers: Dict[int, Tuple[int, ...]] = {}
        self._homes: Dict[int, int] = {}
        #: Distinct entries ever computed (cache misses), for tests.
        self.builds = 0
        #: Times the cache has been wiped (machine rebuild / recovery).
        self.invalidations = 0

    # -- accessors ---------------------------------------------------------

    def entry(self, line_addr: int) -> Tuple[int, Optional[int],
                                             Optional[int], bool]:
        """``(home_node, parity_line, parity_home, mirrored)`` of a line."""
        cached = self._entries.get(line_addr)
        if cached is not None:
            return cached
        space = self.space
        node, ppage = space.node_page_of(line_addr)
        geometry = self.geometry
        if geometry.enabled and not geometry.is_parity_page(node, ppage):
            parity_node, parity_page = geometry.parity_location(node, ppage)
            offset = line_addr % space.config.page_size
            parity_line = space.page_base(parity_node, parity_page) + offset
            mirrored = geometry.is_mirrored_page(node, ppage)
            cached = (node, parity_line, parity_node, mirrored)
        else:
            cached = (node, None, None, False)
        self._entries[line_addr] = cached
        self.builds += 1
        return cached

    def home_node(self, line_addr: int) -> int:
        """Memoized ``addr_space.node_of`` (the directory home lookup)."""
        home = self._homes.get(line_addr)
        if home is None:
            home = self._homes[line_addr] = line_addr // self.space._node_bytes
        return home

    def peers(self, line_addr: int) -> Tuple[int, ...]:
        """The other stripe members (data + parity lines) of a line."""
        cached = self._peers.get(line_addr)
        if cached is not None:
            return cached
        space = self.space
        node, ppage = space.node_page_of(line_addr)
        offset = line_addr % space.config.page_size
        cached = tuple(space.page_base(n, p) + offset
                       for n, p in self.geometry.stripe_of(node, ppage)
                       if n != node)
        self._peers[line_addr] = cached
        return cached

    # -- lifecycle ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every memoized entry (geometry must be re-derived).

        Called when the mapping could have gone stale relative to the
        machine — after recovery rebuilds a node's memory contents, and
        by anything that re-wires stripes.  Cheap relative to recovery
        itself, and the cache repopulates on first touch.
        """
        self._entries.clear()
        self._peers.clear()
        self._homes.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries) + len(self._peers) + len(self._homes)
