"""Main-memory substrate: page layout, parity geometry, functional storage,
and DRAM timing."""

from repro.memory.layout import AddressSpace, ParityGeometry
from repro.memory.main_memory import NodeMemory
from repro.memory.dram import MemoryTimingModel

__all__ = ["AddressSpace", "ParityGeometry", "NodeMemory", "MemoryTimingModel"]
