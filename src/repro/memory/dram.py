"""DRAM timing: bus-bandwidth occupancy and row-hit locality.

Table 3 of the paper models two PC1600 DDR modules in parallel: 128
bits at 100 MHz DDR is 3.2 GB/s, i.e. one 64-byte line every 20 ns.
The banks hide *latency* (row activation overlaps across banks), but
every access still moves a line over the shared memory data bus — that
transfer is the occupancy that makes parity and log traffic degrade
regular accesses.  Two behaviours are kept:

* per-access occupancy of ``line_size / bus bandwidth`` on the node's
  memory bus (a single-port calendar); and
* a cheaper *row-hit* latency for accesses the caller knows to be
  sequential or repeated, which is how the paper argues that log and
  parity re-accesses are efficient ("the log is accessed in a
  sequential manner, and so is its parity").
"""

from __future__ import annotations

from repro.machine.config import MachineConfig
from repro.sim.resources import Resource


class MemoryTimingModel:
    """Timing facade over one node's DRAM."""

    def __init__(self, config: MachineConfig, node: int) -> None:
        self.config = config
        self.node = node
        # One line per 20 ns at Table 3's 3.2 GB/s.
        self.bus_ns_per_line = max(
            1, round(config.line_size / config.mem_bytes_per_ns))
        self.banks = Resource(f"mem{node}", self.bus_ns_per_line)

    def access(self, at: int, row_hit: bool = False) -> int:
        """Perform one line-sized access starting no earlier than ``at``.

        Returns the completion time (start + access latency).
        """
        start = self.banks.acquire(at)
        latency = (self.config.mem_row_hit_ns if row_hit
                   else self.config.mem_row_miss_ns)
        return start + latency

    @property
    def accesses(self) -> int:
        """Accesses served since construction (or last reset)."""
        return self.banks.requests

    def utilization(self, elapsed: int) -> float:
        """Busy fraction of the elapsed nanoseconds."""
        return self.banks.utilization(elapsed)

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        self.banks.reset()

    def snapshot(self) -> dict:
        """Plain-data state (the bus calendar)."""
        return {"banks": self.banks.snapshot()}

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot`."""
        self.banks.restore(state["banks"])
