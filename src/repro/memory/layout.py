"""Physical address layout, first-touch page allocation, and parity geometry.

Physical addresses are flat integers: node ``n`` owns the address range
``[n * node_memory_bytes, (n+1) * node_memory_bytes)``.  Workloads issue
*virtual* addresses in a single shared space; pages are bound to physical
pages on first touch, on the toucher's node (the paper's allocation
policy), falling back to round-robin when a node's memory fills up.

Parity geometry follows Section 3.2.1 and Figure 3 of the paper, with the
parity pages rotated RAID-5 style instead of parked on dedicated nodes:
nodes are split into *clusters* of ``group_size + 1`` consecutive nodes;
within a cluster, stripe ``s`` consists of page index ``s`` on every node,
and the parity page of the stripe lives on node ``cluster[s mod
cluster_size]``.  Pages that the rotation designates as parity are never
handed out to data (or log) allocations.

Mirroring is the degenerate geometry with ``group_size == 1``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.machine.config import MachineConfig


class ParityGeometry:
    """Maps (node, physical page) to its parity group.

    ``group_size`` is the N of N+1 parity: the number of *data* pages per
    stripe.  ``group_size == 0`` disables parity entirely (the baseline
    machine); ``group_size == 1`` is mirroring.
    """

    def __init__(self, config: MachineConfig, group_size: int) -> None:
        if group_size < 0:
            raise ValueError("group_size must be >= 0")
        if group_size and config.n_nodes % (group_size + 1) != 0:
            raise ValueError(
                f"{config.n_nodes} nodes cannot be split into clusters "
                f"of {group_size + 1}")
        self.config = config
        self.group_size = group_size
        self.cluster_size = group_size + 1 if group_size else 0

    @property
    def enabled(self) -> bool:
        """True when parity protection is configured."""
        return self.group_size > 0

    def cluster_of(self, node: int) -> List[int]:
        """The list of node ids forming ``node``'s parity cluster."""
        self._require_enabled()
        base = (node // self.cluster_size) * self.cluster_size
        return list(range(base, base + self.cluster_size))

    def position_in_cluster(self, node: int) -> int:
        """The node's index inside its parity cluster."""
        self._require_enabled()
        return node % self.cluster_size

    def is_parity_page(self, node: int, ppage: int) -> bool:
        """True when page ``ppage`` of ``node`` holds parity, not data."""
        if not self.enabled:
            return False
        return ppage % self.cluster_size == self.position_in_cluster(node)

    def parity_location(self, node: int, ppage: int) -> Tuple[int, int]:
        """Home (node, page) of the parity page covering a data page."""
        self._require_enabled()
        if self.is_parity_page(node, ppage):
            raise ValueError(f"page {ppage} of node {node} is itself parity")
        cluster = self.cluster_of(node)
        parity_node = cluster[ppage % self.cluster_size]
        return parity_node, ppage

    def stripe_data_pages(self, parity_node: int,
                          ppage: int) -> List[Tuple[int, int]]:
        """Data pages protected by the given parity page."""
        self._require_enabled()
        if not self.is_parity_page(parity_node, ppage):
            raise ValueError(
                f"page {ppage} of node {parity_node} is not a parity page")
        return [(n, ppage) for n in self.cluster_of(parity_node)
                if n != parity_node]

    def stripe_of(self, node: int, ppage: int) -> List[Tuple[int, int]]:
        """All members (data pages + parity page) of the page's stripe."""
        self._require_enabled()
        cluster = self.cluster_of(node)
        return [(n, ppage) for n in cluster]

    def data_pages_of_node(self, node: int) -> List[int]:
        """Physical page indices of ``node`` that may hold data."""
        pages = range(self.config.pages_per_node)
        if not self.enabled:
            return list(pages)
        return [p for p in pages if not self.is_parity_page(node, p)]

    def parity_fraction(self) -> float:
        """Fraction of total memory consumed by parity (0.125 for 7+1)."""
        if not self.enabled:
            return 0.0
        return 1.0 / self.cluster_size

    def is_mirrored_page(self, node: int, ppage: int) -> bool:
        """True when the page's stripe uses mirroring (a single copy
        holds the full value; updates skip the read-modify-write)."""
        return self.cluster_size == 2

    def _require_enabled(self) -> None:
        if not self.enabled:
            raise RuntimeError("parity geometry is disabled (group_size 0)")


class HybridGeometry(ParityGeometry):
    """Mirroring for the hottest pages, N+1 parity for the rest.

    Section 6.1's suggestion (and the paper's first listed extension):
    "a small part of the memory can be protected by mirroring, while
    the rest is protected by parity.  Careful allocation of frequently
    used pages into the mirrored region should result in low
    overheads... while reducing the memory space overheads."

    Stripes with page index below ``mirrored_stripes`` are mirrored
    between the nodes of each even/odd pair inside the cluster (the
    holder alternates by stripe so data and mirrors balance); higher
    stripes use the inherited RAID-5 rotation.  First-touch allocation
    hands out ascending page indices, so the earliest-touched — in the
    built-in workloads, the hottest — data lands in the mirrored
    region automatically.
    """

    def __init__(self, config: MachineConfig, group_size: int,
                 mirrored_stripes: int) -> None:
        super().__init__(config, group_size)
        if not self.enabled:
            raise ValueError("HybridGeometry requires parity enabled")
        if self.cluster_size % 2 != 0:
            raise ValueError(
                "hybrid protection needs an even cluster size to pair "
                "nodes for mirroring")
        if not 0 <= mirrored_stripes <= config.pages_per_node:
            raise ValueError("mirrored_stripes out of range")
        self.mirrored_stripes = mirrored_stripes

    def is_mirrored_page(self, node: int, ppage: int) -> bool:
        """Whether this page's stripe is mirrored (see base class)."""
        return ppage < self.mirrored_stripes

    def _mirror_holder(self, node: int, ppage: int) -> bool:
        """Does ``node`` hold the mirror (not the data) of this stripe?"""
        return self.position_in_cluster(node) % 2 == ppage % 2

    def is_parity_page(self, node: int, ppage: int) -> bool:
        """Whether this page holds parity/mirror (see base class)."""
        if ppage < self.mirrored_stripes:
            return self._mirror_holder(node, ppage)
        return super().is_parity_page(node, ppage)

    def _pair_partner(self, node: int) -> int:
        pos = self.position_in_cluster(node)
        base = node - pos
        return base + (pos ^ 1)

    def parity_location(self, node: int, ppage: int) -> Tuple[int, int]:
        """Parity/mirror home of a data page (see base class)."""
        if ppage < self.mirrored_stripes:
            if self._mirror_holder(node, ppage):
                raise ValueError(
                    f"page {ppage} of node {node} is itself a mirror")
            return self._pair_partner(node), ppage
        return super().parity_location(node, ppage)

    def stripe_data_pages(self, parity_node: int,
                          ppage: int) -> List[Tuple[int, int]]:
        """Data members of a parity page's stripe (see base class)."""
        if ppage < self.mirrored_stripes:
            if not self._mirror_holder(parity_node, ppage):
                raise ValueError(
                    f"page {ppage} of node {parity_node} is not a mirror")
            return [(self._pair_partner(parity_node), ppage)]
        return super().stripe_data_pages(parity_node, ppage)

    def stripe_of(self, node: int, ppage: int) -> List[Tuple[int, int]]:
        """All stripe members of a page (see base class)."""
        if ppage < self.mirrored_stripes:
            return sorted([(node, ppage),
                           (self._pair_partner(node), ppage)])
        return super().stripe_of(node, ppage)

    def parity_fraction(self) -> float:
        """Fraction of memory used for redundancy (see base class)."""
        total = self.config.pages_per_node
        if total == 0:
            return 0.0
        mirrored = self.mirrored_stripes
        return (mirrored * 0.5
                + (total - mirrored) / self.cluster_size) / total


class AddressSpace:
    """Virtual-to-physical page binding with first-touch allocation.

    Also the authority on address arithmetic: splitting physical
    addresses into (node, page, line) and back.
    """

    def __init__(self, config: MachineConfig, geometry: ParityGeometry,
                 reserved_pages_per_node: int = 0) -> None:
        self.config = config
        self.geometry = geometry
        # Hot-path constants, hoisted so per-reference translation does
        # no property lookups (see docs/PERFORMANCE.md).
        self._offset_bits = config.page_offset_bits
        self._page_mask = config.page_size - 1
        self._line_mask = ~(config.line_size - 1)
        #: Page-offset mask already aligned down to the line size:
        #: ``base + (vaddr & _line_in_page_mask)`` is the line address.
        self._line_in_page_mask = self._page_mask & self._line_mask
        self._node_bytes = config.node_memory_bytes
        self._page_table: Dict[int, int] = {}     # vpage -> physical page base
        # The *top* `reserved_pages_per_node` data pages of each node
        # are set aside (system page + the ReVive log region).  Keeping
        # reservations high leaves the low page indices — the mirrored
        # region under hybrid protection — for first-touched (hot) data.
        self.reserved_pages: Dict[int, List[int]] = {}
        self._free_pages: List[List[int]] = []
        for node in range(config.n_nodes):
            data_pages = geometry.data_pages_of_node(node)
            if reserved_pages_per_node:
                reserved = data_pages[-reserved_pages_per_node:]
                free = data_pages[:-reserved_pages_per_node]
            else:
                reserved = []
                free = data_pages
            self.reserved_pages[node] = reserved
            free.reverse()          # pop() hands out ascending page indices
            self._free_pages.append(free)
        self._fallback_node = 0
        self.first_touch_allocations = 0
        #: Bumped on every restore.  ``(generation,
        #: first_touch_allocations)`` keys any cached bulk translation:
        #: within one run the pair identifies the page table uniquely
        #: (allocations are monotone), and a rollback — which can
        #: rewind the count and then re-allocate *different* pages —
        #: changes the generation (docs/PERFORMANCE.md).
        self.generation = 0

    # -- address arithmetic ------------------------------------------------

    def node_of(self, paddr: int) -> int:
        """Node owning a physical address."""
        return paddr // self._node_bytes

    def page_of(self, paddr: int) -> int:
        """Physical page index within the owning node."""
        return (paddr % self._node_bytes) >> self._offset_bits

    def node_page_of(self, paddr: int) -> Tuple[int, int]:
        """``(node, physical page)`` of an address in one division."""
        node, within = divmod(paddr, self._node_bytes)
        return node, within >> self._offset_bits

    def line_of(self, paddr: int) -> int:
        """Line-aligned physical address containing ``paddr``."""
        return paddr & self._line_mask

    def page_base(self, node: int, ppage: int) -> int:
        """First physical address of (node, page)."""
        return node * self._node_bytes + (ppage << self._offset_bits)

    def lines_of_page(self, node: int, ppage: int) -> range:
        """Line addresses covering one physical page."""
        base = self.page_base(node, ppage)
        return range(base, base + self.config.page_size, self.config.line_size)

    # -- translation ---------------------------------------------------------

    def translate(self, vaddr: int, toucher_node: int) -> int:
        """Map a virtual address to a physical one, allocating on first touch."""
        vpage = vaddr >> self._offset_bits
        base = self._page_table.get(vpage)
        if base is None:
            base = self._allocate(vpage, toucher_node)
        return base + (vaddr & self._page_mask)

    def translate_line(self, vaddr: int, toucher_node: int) -> int:
        """Translate and align to the containing line."""
        vpage = vaddr >> self._offset_bits
        base = self._page_table.get(vpage)
        if base is None:
            base = self._allocate(vpage, toucher_node)
        return base + (vaddr & self._line_in_page_mask)

    def is_mapped(self, vaddr: int) -> bool:
        """True when the virtual address's page is already bound."""
        return (vaddr >> self._offset_bits) in self._page_table

    def mapped_physical_pages(self) -> List[Tuple[int, int]]:
        """All (node, ppage) pairs currently backing virtual pages."""
        return [(self.node_of(base), self.page_of(base))
                for base in self._page_table.values()]

    def _allocate(self, vpage: int, toucher_node: int) -> int:
        node = toucher_node
        if not self._free_pages[node]:
            node = self._next_node_with_space()
        ppage = self._free_pages[node].pop()
        base = self.page_base(node, ppage)
        self._page_table[vpage] = base
        self.first_touch_allocations += 1
        return base

    def snapshot(self) -> Dict:
        """Plain-data state: page table (ordered), free lists, cursors."""
        return {"page_table": list(self._page_table.items()),
                "free_pages": [list(free) for free in self._free_pages],
                "fallback_node": self._fallback_node,
                "first_touch_allocations": self.first_touch_allocations}

    def digest_state(self) -> Dict:
        """Determinism-observatory hook (obs/digest.py).

        The free lists hold tens of thousands of page numbers, so they
        are folded through the packed-int fast path (per-node lengths
        plus one flat hash) instead of re-encoded as JSON at every
        digest window; the page table stays plain — it is small and
        its insertion order is first-touch order, which the snapshot
        oracle already guarantees is deterministic.
        """
        from itertools import chain

        from repro.obs.digest import packed_ints_digest

        return {"page_table": list(self._page_table.items()),
                "free_page_counts": [len(free)
                                     for free in self._free_pages],
                "free_pages": packed_ints_digest(
                    chain.from_iterable(self._free_pages)),
                "fallback_node": self._fallback_node,
                "first_touch_allocations": self.first_touch_allocations}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot`.

        The page table is mutated in place: the compiled reference fast
        path binds ``_page_table.get`` once, so the dict identity must
        survive a restore (docs/SNAPSHOTS.md).
        """
        self._page_table.clear()
        self._page_table.update(state["page_table"])
        self._free_pages[:] = [list(free) for free in state["free_pages"]]
        self._fallback_node = state["fallback_node"]
        self.first_touch_allocations = state["first_touch_allocations"]
        self.generation += 1

    def _next_node_with_space(self) -> int:
        n_nodes = self.config.n_nodes
        for _ in range(n_nodes):
            node = self._fallback_node
            self._fallback_node = (self._fallback_node + 1) % n_nodes
            if self._free_pages[node]:
                return node
        raise MemoryError("simulated machine is out of physical memory")
