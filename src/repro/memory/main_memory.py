"""Functional per-node main memory.

Line contents are modelled as arbitrary-precision integers (a 64-byte
line is at most a 512-bit value), stored sparsely: absent lines read as
zero, which makes XOR parity over partially-touched stripes work without
special cases.

A node's memory can be *destroyed* (node-loss fault injection), after
which any access raises ``LostMemoryError`` until recovery rebuilds the
contents from parity.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class LostMemoryError(RuntimeError):
    """Raised when reading or writing memory on a lost node."""


class NodeMemory:
    """Sparse functional storage for one node's DRAM."""

    __slots__ = ("node", "_lines", "lost")

    def __init__(self, node: int) -> None:
        self.node = node
        self._lines: Dict[int, int] = {}
        self.lost = False

    def read_line(self, paddr: int) -> int:
        """Current value of the line (0 when never written)."""
        if self.lost:
            raise LostMemoryError(f"node {self.node} memory is lost")
        return self._lines.get(paddr, 0)

    def write_line(self, paddr: int, value: int) -> None:
        """Set the line's value (zero values stay implicit)."""
        if self.lost:
            raise LostMemoryError(f"node {self.node} memory is lost")
        if value:
            self._lines[paddr] = value
        else:
            # Keep the store sparse: zero is the implicit default.
            self._lines.pop(paddr, None)

    def destroy(self) -> None:
        """Permanently lose this node's memory contents (fault injection)."""
        self._lines.clear()
        self.lost = True

    def restore_line(self, paddr: int, value: int) -> None:
        """Write during recovery; legal even while the node is marked lost
        if recovery is repopulating a replacement module."""
        if value:
            self._lines[paddr] = value
        else:
            self._lines.pop(paddr, None)

    def mark_recovered(self) -> None:
        """Clear the lost flag once recovery repopulated memory."""
        self.lost = False

    def lines(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (line address, value) pairs of non-zero lines."""
        return iter(self._lines.items())

    def snapshot(self) -> Dict:
        """Plain-data state: non-zero lines in insertion order + lost flag."""
        return {"lines": list(self._lines.items()), "lost": self.lost}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot` (docs/SNAPSHOTS.md)."""
        self._lines.clear()
        self._lines.update(state["lines"])
        self.lost = state["lost"]

    def __len__(self) -> int:
        return len(self._lines)
