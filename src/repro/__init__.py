"""ReVive: rollback recovery for shared-memory multiprocessors.

A Python reproduction of Prvulovic, Zhang & Torrellas, "ReVive:
Cost-Effective Architectural Support for Rollback Recovery in
Shared-Memory Multiprocessors" (ISCA 2002).

Public API tour
---------------

Build and run a machine::

    from repro import MachineConfig, ReViveConfig, Machine, get_workload

    machine = Machine(MachineConfig.bench(),
                      ReViveConfig(checkpoint_interval_ns=250_000))
    machine.attach_workload(get_workload("ocean"))
    machine.run()

Or use the harness, which knows the paper's five configurations::

    from repro import run_app
    base = run_app("ocean", "baseline")
    cp = run_app("ocean", "cp_parity")
    print(cp.overhead_vs(base))

Inject a fault and recover::

    from repro import NodeLossFault, RecoveryManager
    NodeLossFault(3).apply(machine)
    result = RecoveryManager(machine).recover(detect_time=machine.simulator.now)

Observe a run (docs/OBSERVABILITY.md)::

    from repro import Tracer, Profiler
    from repro.obs import JsonlFileSink

    tracer = Tracer(sink=JsonlFileSink("trace.jsonl"))
    machine = Machine(MachineConfig.tiny(4), ReViveConfig(...),
                      tracer=tracer, profiler=Profiler())

Subpackages: ``repro.sim`` (event kernel), ``repro.machine``,
``repro.cpu``, ``repro.cache``, ``repro.coherence``, ``repro.memory``,
``repro.network`` (the substrates), ``repro.core`` (the ReVive
mechanisms), ``repro.workloads`` (Splash-2 analogs), ``repro.obs``
(tracing, metrics, profiling), and ``repro.harness`` (experiment
drivers for every table and figure).
"""

from repro.machine.config import MachineConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MachineConfig",
    "ReViveConfig",
    "Machine",
    "NodeLossFault",
    "TransientSystemFault",
    "RecoveryManager",
    "RecoveryResult",
    "get_workload",
    "APP_NAMES",
    "run_app",
    "build_machine",
    "Tracer",
    "MetricsRegistry",
    "Profiler",
    "trace_enabled",
]

_LAZY = {
    "ReViveConfig": ("repro.core.config", "ReViveConfig"),
    "Machine": ("repro.machine.system", "Machine"),
    "NodeLossFault": ("repro.core.faults", "NodeLossFault"),
    "TransientSystemFault": ("repro.core.faults", "TransientSystemFault"),
    "RecoveryManager": ("repro.core.recovery", "RecoveryManager"),
    "RecoveryResult": ("repro.core.recovery", "RecoveryResult"),
    "get_workload": ("repro.workloads.registry", "get_workload"),
    "APP_NAMES": ("repro.workloads.registry", "APP_NAMES"),
    "run_app": ("repro.harness.runner", "run_app"),
    "build_machine": ("repro.harness.runner", "build_machine"),
    "Tracer": ("repro.obs.tracer", "Tracer"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "Profiler": ("repro.obs.profiling", "Profiler"),
    "trace_enabled": ("repro.obs.tracer", "trace_enabled"),
}


def __getattr__(name):
    """Lazy exports: keep ``import repro`` light and cycle-free."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
