"""Full-map directory state, one instance per home node.

Each memory line has (lazily) a directory entry with one of three stable
states — UNCACHED, SHARED (a sharer set), EXCLUSIVE (a single owner) —
plus a ``busy_until`` timestamp standing in for the transient states of
a real controller: a transaction arriving for a busy line waits until
the line is free, which is how the protocol serialises racing requests
and how ReVive keeps a line locked until its log entry and parity are
safely committed (Section 4.1.1).

Observability: a directory carries a ``tracer`` (``NULL_TRACER`` by
default); :meth:`Directory.trace_transition` emits the ``coh.transition``
event after each stable-state change and :meth:`Directory.clear_all`
emits ``coh.clear`` when recovery wipes the directory.  The protocol
engine guards each call with ``directory.tracer.enabled`` so untraced
transitions cost one attribute read.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.obs.tracer import NULL_TRACER

DIR_UNCACHED, DIR_SHARED, DIR_EXCLUSIVE = 0, 1, 2

_STATE_NAMES = {DIR_UNCACHED: "U", DIR_SHARED: "S", DIR_EXCLUSIVE: "E"}


class DirEntry:
    """Directory state for one memory line."""

    __slots__ = ("state", "sharers", "owner", "busy_until")

    def __init__(self) -> None:
        self.state = DIR_UNCACHED
        self.sharers: Set[int] = set()
        self.owner = -1
        self.busy_until = 0

    def set_exclusive(self, owner: int) -> None:
        """Move the entry to EXCLUSIVE with the given owner."""
        self.state = DIR_EXCLUSIVE
        self.owner = owner
        self.sharers.clear()

    def set_shared(self, sharers: Set[int]) -> None:
        """Move the entry to SHARED with the given sharer set."""
        self.state = DIR_SHARED
        self.owner = -1
        self.sharers = set(sharers)

    def set_uncached(self) -> None:
        """Clear the entry back to UNCACHED."""
        self.state = DIR_UNCACHED
        self.owner = -1
        self.sharers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DirEntry({_STATE_NAMES[self.state]}, owner={self.owner}, "
                f"sharers={sorted(self.sharers)})")


class Directory:
    """Lazily-populated map of line address -> :class:`DirEntry`."""

    __slots__ = ("node", "_entries", "tracer")

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: Dict[int, DirEntry] = {}
        #: Trace sink for ``coh.*`` events (``NULL_TRACER`` when off).
        self.tracer = NULL_TRACER

    def entry(self, line_addr: int) -> DirEntry:
        """Get (or lazily create) the line's directory entry."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirEntry()
            self._entries[line_addr] = entry
        return entry

    def peek(self, line_addr: int) -> Optional[DirEntry]:
        """Look up without creating or disturbing state."""
        return self._entries.get(line_addr)

    def entries(self) -> Iterator[Tuple[int, DirEntry]]:
        """Iterate over (line address, entry) pairs."""
        return iter(self._entries.items())

    def trace_transition(self, line_addr: int, entry: DirEntry,
                         at: int) -> None:
        """Emit the ``coh.transition`` event for a just-changed entry.

        Called by the protocol engine after a stable-state change, with
        ``at`` the simulated time the transition took effect.  Fields:
        the home node, line address, new state (``U``/``S``/``E``),
        owner (-1 unless EXCLUSIVE), and sharer count.
        """
        self.tracer.emit(at, "coh", "coh.transition", node=self.node,
                         line=line_addr, state=_STATE_NAMES[entry.state],
                         owner=entry.owner, sharers=len(entry.sharers))

    def clear_all(self, at: int = 0) -> None:
        """Reset every entry (recovery invalidates directory state).

        Emits ``coh.clear`` with the number of entries dropped when
        tracing is enabled.
        """
        if self.tracer.enabled:
            self.tracer.emit(at, "coh", "coh.clear", node=self.node,
                             entries=len(self._entries))
        self._entries.clear()

    def snapshot(self) -> Dict:
        """Plain-data state: entries in insertion order.

        Each entry serialises as ``[addr, state, sorted(sharers), owner,
        busy_until]``; insertion order is preserved so lazily-created
        entries reappear in the same order after a restore (dict
        iteration order is observable through :meth:`entries`).
        """
        return {"entries": [[addr, e.state, sorted(e.sharers), e.owner,
                             e.busy_until]
                            for addr, e in self._entries.items()]}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot`."""
        self._entries.clear()
        for addr, dir_state, sharers, owner, busy_until in state["entries"]:
            entry = DirEntry()
            entry.state = dir_state
            entry.sharers = set(sharers)
            entry.owner = owner
            entry.busy_until = busy_until
            self._entries[addr] = entry

    def __len__(self) -> int:
        return len(self._entries)
