"""Coherence transactions as contention-aware resource walks.

Each transaction (read miss, write miss, upgrade, write-back,
replacement hint) computes its completion time by walking the involved
resources — requester NI, torus links, home directory controller, DRAM
banks, return path — honouring per-line ``busy_until`` serialisation.

ReVive plugs in through two hooks on the home side (see
``core.controller``):

* ``on_store_intent`` — read-exclusive / upgrade arrival (Figure 5(a)):
  may log the line's pre-image in the background and extend the line's
  busy time until the log parity is acknowledged; never delays the data
  reply.
* ``on_memory_write`` — any write of main memory (Figure 4 / 5(b)):
  performs logging if needed, the functional memory write, and the
  parity update; returns when the write-back may be acknowledged and how
  long the line stays busy.

With no ReVive controller installed (the baseline machine), memory
writes happen directly and no busy extension occurs.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.cache.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.coherence.directory import (
    DIR_EXCLUSIVE,
    DIR_SHARED,
    DIR_UNCACHED,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.machine.system import Machine


class ProtocolEngine:
    """Executes directory transactions against a machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.config = machine.config
        self.network = machine.network
        self.stats = machine.stats
        self._line_bytes = machine.config.line_size

    # -- helpers -------------------------------------------------------------

    def _node(self, node_id: int):
        return self.machine.nodes[node_id]

    def _home_of(self, line_addr: int) -> int:
        return self.machine.geom_cache.home_node(line_addr)

    def _dir_accept(self, home, line_addr: int, at: int):
        """Wait for the line to be free and claim a controller slot.

        Returns ``(entry, service_done_time)``.
        """
        entry = home.directory.entry(line_addr)
        at = max(at, entry.busy_until)
        start = home.dir_resource.acquire(at)
        return entry, start + self.config.dir_latency_ns

    def _mem_read(self, home, line_addr: int, at: int, category: str,
                  row_hit: bool = False) -> int:
        done = home.mem_timing.access(at, row_hit=row_hit)
        self.stats.memory_traffic.add(category, self._line_bytes)
        return done

    def _mem_write(self, home, line_addr: int, value: int, at: int,
                   category: str, row_hit: bool = False) -> int:
        done = home.mem_timing.access(at, row_hit=row_hit)
        home.memory.write_line(line_addr, value)
        self.stats.memory_traffic.add(category, self._line_bytes)
        return done

    # -- read miss (GETS) ------------------------------------------------------

    def read(self, requester: int, line_addr: int, at: int) -> int:
        """Service a read miss; returns the data arrival time.

        The line is installed in the requester's cache (EXCLUSIVE when it
        was uncached, SHARED otherwise); dirty victims of the fill are
        written back asynchronously.
        """
        self.stats.counter("txn.read_miss").add()
        home_id = self._home_of(line_addr)
        home = self._node(home_id)
        spans = self.machine.spans
        sp = (spans.begin("read_miss", requester, at, line=line_addr)
              if spans.enabled else None)
        t = self.network.send_control(requester, home_id, at, "RD/RDX")
        if sp is not None:
            sp.seg("net", t)
        entry, t = self._dir_accept(home, line_addr, at=t)
        if sp is not None:
            # From arrival to directory service completion — including
            # waiting out a busy line and controller queueing, i.e. the
            # "directory occupancy" the attribution report surfaces.
            sp.seg("dir", t)

        if entry.state == DIR_EXCLUSIVE and entry.owner != requester:
            done = self._read_from_owner(requester, home_id, entry, line_addr,
                                         t, span=sp)
            fill_state = SHARED
        else:
            mem_done = self._mem_read(home, line_addr, t, "RD/RDX")
            done = self.network.send_line(home_id, requester, mem_done,
                                          "RD/RDX")
            if sp is not None:
                sp.seg("mem_read", mem_done)
                sp.seg("net", done)
            if entry.state == DIR_UNCACHED:
                entry.set_exclusive(requester)
                fill_state = EXCLUSIVE
            else:
                entry.sharers.add(requester)
                entry.state = DIR_SHARED
                fill_state = SHARED
            entry.busy_until = max(entry.busy_until, mem_done)
            if home.directory.tracer.enabled:
                home.directory.trace_transition(line_addr, entry, done)

        if sp is not None:
            sp.end(done)
        self._fill(requester, line_addr, fill_state, value=0, at=done)
        return done

    def _read_from_owner(self, requester: int, home_id: int, entry,
                         line_addr: int, t: int, span=None) -> int:
        """3-hop read: forward to the exclusive owner, who supplies data."""
        owner_id = entry.owner
        owner = self._node(owner_id)
        t_owner = self.network.send_control(home_id, owner_id, t, "RD/RDX")
        if span is not None:
            span.seg("net", t_owner)
        t_owner += self.config.l2_hit_ns
        if span is not None:
            # The owner's L2 lookup supplies the data: memory time.
            span.seg("mem_read", t_owner)
        dirty_value = owner.hierarchy.downgrade(line_addr)
        if dirty_value is not None:
            # Owner sends the dirty line to the requester and a sharing
            # write-back to home memory (which triggers ReVive actions).
            # The write-back is off the requester's critical path, so it
            # is deliberately not handed the span.
            done = self.network.send_line(owner_id, requester, t_owner,
                                          "RD/RDX")
            wb_arrival = self.network.send_line(owner_id, home_id, t_owner,
                                                "ExeWB")
            home = self._node(home_id)
            _ack, busy = self._commit_memory_write(
                home, line_addr, dirty_value, wb_arrival, "ExeWB")
            entry.busy_until = max(entry.busy_until, busy)
        else:
            # Owner held the line clean: memory is current; home replies.
            ack = self.network.send_control(owner_id, home_id, t_owner,
                                            "RD/RDX")
            home = self._node(home_id)
            mem_done = self._mem_read(home, line_addr, ack, "RD/RDX")
            done = self.network.send_line(home_id, requester, mem_done,
                                          "RD/RDX")
            if span is not None:
                span.seg("net", ack)
                span.seg("mem_read", mem_done)
            entry.busy_until = max(entry.busy_until, mem_done)
        if span is not None:
            span.seg("net", done)
        entry.set_shared({owner_id, requester})
        home = self._node(home_id)
        if home.directory.tracer.enabled:
            home.directory.trace_transition(line_addr, entry, done)
        return done

    # -- write miss (GETX) and upgrade -------------------------------------------

    def write(self, requester: int, line_addr: int, at: int,
              upgrade: bool) -> int:
        """Service a write miss (GETX) or an upgrade (UPG).

        Returns the time at which the requester holds the line MODIFIED
        with all invalidations acknowledged.
        """
        self.stats.counter("txn.upgrade" if upgrade else "txn.write_miss").add()
        home_id = self._home_of(line_addr)
        home = self._node(home_id)
        spans = self.machine.spans
        sp = (spans.begin("upgrade" if upgrade else "write_miss", requester,
                          at, line=line_addr)
              if spans.enabled else None)
        t = self.network.send_control(requester, home_id, at, "RD/RDX")
        if sp is not None:
            sp.seg("net", t)
        entry, t = self._dir_accept(home, line_addr, at=t)
        if sp is not None:
            sp.seg("dir", t)

        # ReVive Figure 5(a): a store intent logs the line's checkpoint
        # value in the background; the reply is never delayed — so none
        # of its log/parity time is charged to this span.
        if self.machine.revive is not None:
            busy = self.machine.revive.on_store_intent(home_id, line_addr, t)
            entry.busy_until = max(entry.busy_until, busy)

        inv_done = self._invalidate_sharers(requester, home_id, entry,
                                            line_addr, t)

        transferred: Optional[int] = None
        if entry.state == DIR_EXCLUSIVE and entry.owner != requester:
            transferred, done = self._transfer_ownership(
                requester, home_id, entry, line_addr, t, span=sp)
        elif upgrade:
            done = self.network.send_control(home_id, requester, t, "RD/RDX")
            if sp is not None:
                sp.seg("net", done)
        else:
            mem_done = self._mem_read(home, line_addr, t, "RD/RDX")
            transferred = home.memory.read_line(line_addr)
            done = self.network.send_line(home_id, requester, mem_done,
                                          "RD/RDX")
            if sp is not None:
                sp.seg("mem_read", mem_done)
                sp.seg("net", done)
            entry.busy_until = max(entry.busy_until, mem_done)

        done = max(done, inv_done)
        if sp is not None:
            # Any residual wait for the last invalidation ack travels
            # the network, so it is attributed there.
            sp.seg("net", done)
            sp.end(done)
        entry.set_exclusive(requester)
        if home.directory.tracer.enabled:
            home.directory.trace_transition(line_addr, entry, done)
        if upgrade:
            self._promote(requester, line_addr)
        else:
            self._fill(requester, line_addr, MODIFIED,
                       value=transferred if transferred is not None else 0,
                       at=done)
        return done

    def _invalidate_sharers(self, requester: int, home_id: int, entry,
                            line_addr: int, t: int) -> int:
        """Invalidate all other sharers; returns when acks reach requester."""
        if entry.state != DIR_SHARED:
            return t
        inv_done = t
        spans = self.machine.spans
        for sharer in sorted(entry.sharers):
            if sharer == requester:
                continue
            # Each invalidated sharer gets its own span (node = the
            # sharer), mirroring the per-sharer ``txn.invalidation``
            # counter bit-for-bit.
            isp = (spans.begin("invalidation", sharer, t, line=line_addr)
                   if spans.enabled else None)
            arrive = self.network.send_control(home_id, sharer, t, "RD/RDX")
            self._node(sharer).hierarchy.invalidate(line_addr)
            ack = self.network.send_control(sharer, requester, arrive,
                                            "RD/RDX")
            if isp is not None:
                isp.seg("net", ack)
                isp.end(ack)
            inv_done = max(inv_done, ack)
            self.stats.counter("txn.invalidation").add()
        return inv_done

    def _transfer_ownership(self, requester: int, home_id: int, entry,
                            line_addr: int, t: int, span=None):
        """GETX hitting an exclusive remote owner: dirty transfer.

        The dirty value moves cache-to-cache; main memory is *not*
        updated (its checkpoint content is preserved for the log, which
        the store-intent hook reads directly from memory).
        """
        owner_id = entry.owner
        owner = self._node(owner_id)
        arrive = self.network.send_control(home_id, owner_id, t, "RD/RDX")
        if span is not None:
            span.seg("net", arrive)
        arrive += self.config.l2_hit_ns
        if span is not None:
            span.seg("mem_read", arrive)
        dirty_value = owner.hierarchy.invalidate(line_addr)
        if dirty_value is None:
            # Clean exclusive owner: home supplies data from memory.
            ack = self.network.send_control(owner_id, home_id, arrive,
                                            "RD/RDX")
            home = self._node(home_id)
            mem_done = self._mem_read(home, line_addr, ack, "RD/RDX")
            value = home.memory.read_line(line_addr)
            done = self.network.send_line(home_id, requester, mem_done,
                                          "RD/RDX")
            if span is not None:
                span.seg("net", ack)
                span.seg("mem_read", mem_done)
                span.seg("net", done)
            entry.busy_until = max(entry.busy_until, mem_done)
            return value, done
        done = self.network.send_line(owner_id, requester, arrive, "RD/RDX")
        if span is not None:
            span.seg("net", done)
        return dirty_value, done

    # -- write-backs -----------------------------------------------------------

    def writeback(self, src: int, line_addr: int, value: Optional[int],
                  at: int, category: str = "ExeWB",
                  retain_clean: bool = False) -> int:
        """Write a dirty line back to its home memory.

        ``value is None`` denotes a replacement *hint* for a clean
        EXCLUSIVE victim: the directory drops ownership, memory is not
        written.  ``retain_clean`` is used by the checkpoint flush, where
        the line stays in the cache (clean) and the directory keeps the
        owner.  Returns the time the write-back is acknowledged.
        """
        home_id = self._home_of(line_addr)
        home = self._node(home_id)
        if value is None:
            # Replacement hints move no data and get no span (they are
            # counted separately as ``txn.hint``).
            self.stats.counter("txn.hint").add()
            t = self.network.send_control(src, home_id, at, "ExeWB")
            entry, t = self._dir_accept(home, line_addr, at=t)
            if entry.state == DIR_EXCLUSIVE and entry.owner == src:
                entry.set_uncached()
                if home.directory.tracer.enabled:
                    home.directory.trace_transition(line_addr, entry, t)
            return t

        self.stats.counter("txn.writeback").add()
        spans = self.machine.spans
        sp = (spans.begin("writeback", src, at, line=line_addr,
                          category=category)
              if spans.enabled else None)
        t = self.network.send_line(src, home_id, at, category)
        if sp is not None:
            sp.seg("net", t)
        entry, t = self._dir_accept(home, line_addr, at=t)
        if sp is not None:
            sp.seg("dir", t)
        ack_time, busy = self._commit_memory_write(home, line_addr, value, t,
                                                   category, span=sp)
        if sp is not None:
            sp.end(ack_time)
        entry.busy_until = max(entry.busy_until, busy)
        if not retain_clean and entry.state == DIR_EXCLUSIVE and entry.owner == src:
            entry.set_uncached()
            if home.directory.tracer.enabled:
                home.directory.trace_transition(line_addr, entry, ack_time)
        return ack_time

    def _commit_memory_write(self, home, line_addr: int, value: int, at: int,
                             category: str, span=None):
        """Route a memory write through ReVive (or directly, baseline).

        Returns ``(ack_time, line_busy_until)``.  ``span``, when given,
        receives the log/parity/memory segments of the critical path up
        to the acknowledgment time.
        """
        if self.machine.revive is not None:
            return self.machine.revive.on_memory_write(
                home.node_id, line_addr, value, at, category, span=span)
        done = self._mem_write(home, line_addr, value, at, category)
        if span is not None:
            span.seg("mem_write", done)
        return done, done

    # -- cache install helpers ---------------------------------------------------

    def _fill(self, requester: int, line_addr: int, state: int, value: int,
              at: int) -> None:
        node = self._node(requester)
        for victim_addr, victim_value in node.hierarchy.fill(
                line_addr, state, value):
            self.writeback(requester, victim_addr, victim_value, at)

    def _promote(self, requester: int, line_addr: int) -> None:
        line = self._node(requester).hierarchy.l2.peek(line_addr)
        if line is None:
            raise RuntimeError(
                f"upgrade for line {line_addr:#x} not present in cache")
        line.state = MODIFIED
