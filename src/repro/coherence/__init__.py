"""Full-map directory coherence protocol (DASH-like)."""

from repro.coherence.directory import Directory, DirEntry, DIR_UNCACHED, DIR_SHARED, DIR_EXCLUSIVE
from repro.coherence.protocol import ProtocolEngine

__all__ = [
    "Directory",
    "DirEntry",
    "ProtocolEngine",
    "DIR_UNCACHED",
    "DIR_SHARED",
    "DIR_EXCLUSIVE",
]
