"""2-D torus topology with X-then-Y dimension-order routing.

Nodes are numbered row-major: node ``n`` sits at ``(n % width,
n // width)``.  Links are directed and identified by ``(node,
direction)`` with directions ``+x, -x, +y, -y``; each dimension wraps,
and routes take the shorter way around.
"""

from __future__ import annotations

from typing import List, Tuple

PLUS_X, MINUS_X, PLUS_Y, MINUS_Y = 0, 1, 2, 3
DIRECTIONS = (PLUS_X, MINUS_X, PLUS_Y, MINUS_Y)


class Torus2D:
    """Coordinates, neighbours, and dimension-order routes on a torus."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("torus dimensions must be positive")
        self.width = width
        self.height = height

    @property
    def n_nodes(self) -> int:
        """Number of nodes on the torus."""
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of a node."""
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Node id at (wrapped) coordinates."""
        return (y % self.height) * self.width + (x % self.width)

    def neighbor(self, node: int, direction: int) -> int:
        """Adjacent node in the given direction."""
        x, y = self.coords(node)
        if direction == PLUS_X:
            return self.node_at(x + 1, y)
        if direction == MINUS_X:
            return self.node_at(x - 1, y)
        if direction == PLUS_Y:
            return self.node_at(x, y + 1)
        if direction == MINUS_Y:
            return self.node_at(x, y - 1)
        raise ValueError(f"unknown direction {direction}")

    def _axis_steps(self, src: int, dst: int, size: int) -> Tuple[int, int]:
        """(steps, unit_direction_sign) for one axis, shortest way around."""
        forward = (dst - src) % size
        backward = (src - dst) % size
        if forward <= backward:
            return forward, +1
        return backward, -1

    def hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        hx, _ = self._axis_steps(sx, dx, self.width)
        hy, _ = self._axis_steps(sy, dy, self.height)
        return hx + hy

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Dimension-order route as a list of (node, direction) links."""
        links: List[Tuple[int, int]] = []
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        steps, sign = self._axis_steps(x, dx, self.width)
        direction = PLUS_X if sign > 0 else MINUS_X
        for _ in range(steps):
            node = self.node_at(x, y)
            links.append((node, direction))
            x += sign
        steps, sign = self._axis_steps(y, dy, self.height)
        direction = PLUS_Y if sign > 0 else MINUS_Y
        for _ in range(steps):
            node = self.node_at(x, y)
            links.append((node, direction))
            y += sign
        return links
