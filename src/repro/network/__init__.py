"""Interconnect substrate: 2-D torus topology and contention-aware timing."""

from repro.network.topology import Torus2D
from repro.network.network import Network

__all__ = ["Torus2D", "Network"]
