"""Network timing and traffic accounting.

A message from ``src`` to ``dst`` of ``nbytes``:

* occupies the source node's network interface for ``nbytes / ni_bw``;
* occupies every torus link along the dimension-order route for
  ``nbytes / link_bw`` (virtual cut-through: all links are claimed at
  injection time rather than staggered per hop — the difference is below
  the fidelity of this model);
* arrives after the Table 3 latency ``30ns + 8ns * hops``; and
* is charged to one of the five Figure-9 traffic categories.

Local (src == dst) transfers are free and generate no traffic, matching
the paper's accounting, which measures *network* traffic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.machine.config import MachineConfig
from repro.network.topology import Torus2D, DIRECTIONS
from repro.sim.resources import Resource
from repro.sim.stats import StatsRegistry


class Network:
    """Contention-aware torus network bound to a stats registry."""

    def __init__(self, config: MachineConfig, stats: StatsRegistry) -> None:
        self.config = config
        self.stats = stats
        self.topology = Torus2D(config.torus_width, config.torus_height)
        self._ni: Dict[int, Resource] = {
            n: Resource(f"ni{n}", 0) for n in range(config.n_nodes)}
        self._links: Dict[Tuple[int, int], Resource] = {
            (n, d): Resource(f"link{n}.{d}", 0)
            for n in range(config.n_nodes) for d in DIRECTIONS}
        self.messages_sent = 0

    def send(self, src: int, dst: int, nbytes: int, at: int,
             category: str) -> int:
        """Send a message; returns its arrival time at ``dst``."""
        if src == dst:
            return at
        self.stats.network_traffic.add(category, nbytes)
        self.messages_sent += 1
        ni_occupancy = max(1, round(nbytes / self.config.ni_bytes_per_ns))
        start = self._ni[src].acquire(at, ni_occupancy)
        launch = start + ni_occupancy
        link_occupancy = max(1, round(nbytes / self.config.link_bytes_per_ns))
        route = self.topology.route(src, dst)
        entry = launch
        for link in route:
            entry = self._links[link].acquire(entry, link_occupancy)
        return (launch + self.config.net_base_ns
                + self.config.net_per_hop_ns * len(route))

    def uncontended_latency(self, src: int, dst: int, nbytes: int) -> int:
        """Table 3 flight time of one message on an idle network.

        ``ni_occupancy + 30ns + 8ns × hops`` with dimension-order
        minimal-wrap routing — exactly what :meth:`send` returns when
        neither the NI nor any link is busy.  Span consumers use this
        as the contention-free floor when attributing a ``net`` segment
        to queueing versus propagation; tests pin it against
        hand-computed torus hop counts.
        """
        if src == dst:
            return 0
        ni_occupancy = max(1, round(nbytes / self.config.ni_bytes_per_ns))
        return ni_occupancy + self.config.net_latency(src, dst)

    def send_control(self, src: int, dst: int, at: int, category: str) -> int:
        """Header-only message (requests, acks, invalidations)."""
        return self.send(src, dst, self.config.header_bytes, at, category)

    def send_line(self, src: int, dst: int, at: int, category: str) -> int:
        """Message carrying one memory line plus header."""
        return self.send(src, dst, self.config.line_message_bytes(), at,
                         category)

    def link_utilization(self, elapsed: int) -> float:
        """Mean utilisation across all torus links."""
        if elapsed <= 0 or not self._links:
            return 0.0
        busy = sum(link.busy_time for link in self._links.values())
        return min(1.0, busy / (elapsed * len(self._links)))

    def reset(self) -> None:
        """Reset to the freshly-constructed state."""
        for resource in self._ni.values():
            resource.reset()
        for resource in self._links.values():
            resource.reset()
        self.messages_sent = 0

    def snapshot(self) -> Dict:
        """Plain-data state: NI and link calendars plus the message count.

        Keys are stringified for the link dict (tuples survive pickling
        but the uniform snapshot format stays JSON-friendly by indexing
        links positionally in construction order).
        """
        return {"ni": [self._ni[n].snapshot() for n in sorted(self._ni)],
                "links": [self._links[key].snapshot()
                          for key in self._links],
                "messages_sent": self.messages_sent}

    def digest_state(self) -> Dict:
        """Determinism-observatory hook (obs/digest.py).

        Defers to each calendar's ``digest_state`` (sorted,
        packed-int hashing) instead of exposing the raw ``snapshot()``
        bucket lists — far cheaper on a long run, and independent of
        the order requests were booked in.
        """
        return {"ni": [self._ni[n].digest_state()
                       for n in sorted(self._ni)],
                "links": [self._links[key].digest_state()
                          for key in self._links],
                "messages_sent": self.messages_sent}

    def restore(self, state: Dict) -> None:
        """Reinstate a :meth:`snapshot` (docs/SNAPSHOTS.md)."""
        for node, ni_state in zip(sorted(self._ni), state["ni"]):
            self._ni[node].restore(ni_state)
        for key, link_state in zip(self._links, state["links"]):
            self._links[key].restore(link_state)
        self.messages_sent = state["messages_sent"]
