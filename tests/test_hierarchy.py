"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.cache.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.cache.hierarchy import (
    CacheHierarchy,
    HIT,
    NEED_GETS,
    NEED_GETX,
    NEED_UPGRADE,
)
from repro.machine.config import MachineConfig


def make():
    return CacheHierarchy(MachineConfig.tiny(4), node=0)


class TestProbe:
    def test_cold_read_needs_gets(self):
        h = make()
        assert h.probe(0x40, is_write=False).need == NEED_GETS

    def test_cold_write_needs_getx(self):
        h = make()
        assert h.probe(0x40, is_write=True).need == NEED_GETX

    def test_read_hit_after_fill(self):
        h = make()
        h.fill(0x40, SHARED, value=0)
        result = h.probe(0x40, is_write=False)
        assert result.need == HIT

    def test_write_on_shared_needs_upgrade(self):
        h = make()
        h.fill(0x40, SHARED, value=0)
        assert h.probe(0x40, is_write=True).need == NEED_UPGRADE

    def test_write_on_exclusive_silently_modifies(self):
        h = make()
        h.fill(0x40, EXCLUSIVE, value=0)
        result = h.probe(0x40, is_write=True)
        assert result.need == HIT
        assert result.silent_upgrade
        assert h.l2.peek(0x40).state == MODIFIED
        assert h.silent_upgrades == 1

    def test_l1_hit_flag(self):
        h = make()
        h.fill(0x40, SHARED, value=0)
        first = h.probe(0x40, is_write=False)
        assert first.l1_hit          # fill touched the L1 filter
        # Evict from the tiny L1 with conflicting touches.
        for i in range(1, 64):
            h.l1.touch(0x40 + i * 1024 * 64)
        later = h.probe(0x40, is_write=False)
        assert later.need == HIT     # still in L2


class TestWriteValue:
    def test_records_value_on_modified_line(self):
        h = make()
        h.fill(0x40, MODIFIED, value=1)
        h.write_value(0x40, 42)
        assert h.l2.peek(0x40).value == 42

    def test_rejects_clean_lines(self):
        h = make()
        h.fill(0x40, SHARED, value=0)
        with pytest.raises(RuntimeError):
            h.write_value(0x40, 42)


class TestFillAndEvict:
    def test_dirty_victim_produces_writeback(self):
        h = make()
        # Fill one set beyond associativity with MODIFIED lines.
        stride = h.l2.n_sets * 64
        victims = []
        for i in range(h.l2.assoc + 1):
            victims += h.fill(0x40 + i * stride, MODIFIED, value=i)
        # But hashing may spread them; force the issue via many fills.
        for i in range(200):
            victims += h.fill(0x10000 + i * 64, MODIFIED, value=i)
        dirty = [(a, v) for a, v in victims if v is not None]
        assert dirty, "expected at least one dirty write-back"

    def test_clean_exclusive_victim_produces_hint(self):
        h = make()
        victims = []
        for i in range(200):
            victims += h.fill(0x10000 + i * 64, EXCLUSIVE, value=0)
        hints = [(a, v) for a, v in victims if v is None]
        assert hints, "expected replacement hints for clean-E victims"

    def test_shared_victims_evict_silently(self):
        h = make()
        victims = []
        for i in range(200):
            victims += h.fill(0x10000 + i * 64, SHARED, value=0)
        assert victims == []


class TestDirectorySide:
    def test_invalidate_returns_dirty_value(self):
        h = make()
        h.fill(0x40, MODIFIED, value=99)
        assert h.invalidate(0x40) == 99
        assert h.l2.peek(0x40) is None

    def test_invalidate_clean_returns_none(self):
        h = make()
        h.fill(0x40, SHARED, value=0)
        assert h.invalidate(0x40) is None

    def test_downgrade_returns_dirty_value_and_shares(self):
        h = make()
        h.fill(0x40, MODIFIED, value=7)
        assert h.downgrade(0x40) == 7
        assert h.l2.peek(0x40).state == SHARED

    def test_downgrade_absent_line(self):
        assert make().downgrade(0x40) is None


class TestFlushSupport:
    def test_mark_clean_downgrades_to_shared(self):
        h = make()
        h.fill(0x40, MODIFIED, value=1)
        h.mark_clean(0x40)
        assert h.l2.peek(0x40).state == SHARED
        # Next write is an upgrade -> the home sees the store intent
        # (Figure 5(a)) instead of a surprise write-back (Figure 5(b)).
        assert h.probe(0x40, is_write=True).need == NEED_UPGRADE

    def test_dirty_lines_snapshot(self):
        h = make()
        h.fill(0x40, MODIFIED, value=1)
        h.fill(0x80, SHARED, value=0)
        assert [l.addr for l in h.dirty_lines()] == [0x40]

    def test_clear_wipes_both_levels(self):
        h = make()
        h.fill(0x40, MODIFIED, value=1)
        h.clear()
        assert h.probe(0x40, is_write=False).need == NEED_GETS
