"""Unit tests for the parity geometry and the address space."""

import pytest

from repro.machine.config import MachineConfig
from repro.memory.layout import AddressSpace, ParityGeometry


def make_geometry(group_size=3, n_nodes=4):
    return ParityGeometry(MachineConfig.tiny(n_nodes), group_size)


class TestParityGeometry:
    def test_disabled_geometry(self):
        g = make_geometry(0)
        assert not g.enabled
        assert not g.is_parity_page(0, 0)
        assert g.parity_fraction() == 0.0
        with pytest.raises(RuntimeError):
            g.cluster_of(0)

    def test_cluster_membership(self):
        g = ParityGeometry(MachineConfig.tiny(16), 7)
        assert g.cluster_of(0) == list(range(8))
        assert g.cluster_of(12) == list(range(8, 16))
        assert g.position_in_cluster(9) == 1

    def test_nodes_must_divide_into_clusters(self):
        with pytest.raises(ValueError):
            ParityGeometry(MachineConfig.tiny(4), 7)

    def test_raid5_rotation(self):
        g = make_geometry(3)       # clusters of 4 on 4 nodes
        # Page p of node n is parity iff p % 4 == n.
        for node in range(4):
            for page in range(8):
                assert g.is_parity_page(node, page) == (page % 4 == node)

    def test_parity_fraction(self):
        assert make_geometry(3).parity_fraction() == pytest.approx(0.25)
        assert make_geometry(1).parity_fraction() == pytest.approx(0.5)
        g16 = ParityGeometry(MachineConfig.tiny(16), 7)
        assert g16.parity_fraction() == pytest.approx(0.125)

    def test_parity_location_is_never_self(self):
        g = make_geometry(3)
        for node in range(4):
            for page in range(16):
                if g.is_parity_page(node, page):
                    continue
                pnode, ppage = g.parity_location(node, page)
                assert pnode != node
                assert ppage == page
                assert g.is_parity_page(pnode, ppage)

    def test_parity_location_rejects_parity_pages(self):
        g = make_geometry(3)
        with pytest.raises(ValueError):
            g.parity_location(0, 0)    # page 0 of node 0 is parity

    def test_stripe_data_pages(self):
        g = make_geometry(3)
        data = g.stripe_data_pages(0, 0)
        assert data == [(1, 0), (2, 0), (3, 0)]
        with pytest.raises(ValueError):
            g.stripe_data_pages(1, 0)  # not a parity page

    def test_stripe_of_includes_whole_cluster(self):
        g = make_geometry(3)
        assert g.stripe_of(2, 5) == [(0, 5), (1, 5), (2, 5), (3, 5)]

    def test_data_pages_skip_parity(self):
        g = make_geometry(1, n_nodes=2)    # mirroring
        pages = g.data_pages_of_node(0)
        assert all(p % 2 == 1 for p in pages)
        assert len(pages) == MachineConfig.tiny(2).pages_per_node // 2

    def test_mirroring_partner(self):
        g = make_geometry(1, n_nodes=4)
        pnode, _ = g.parity_location(0, 1)
        assert pnode == 1
        pnode, _ = g.parity_location(3, 0)
        assert pnode == 2


class TestAddressSpace:
    def make(self, reserved=0, group=3):
        cfg = MachineConfig.tiny(4)
        return cfg, AddressSpace(cfg, ParityGeometry(cfg, group),
                                 reserved_pages_per_node=reserved)

    def test_first_touch_allocates_locally(self):
        cfg, space = self.make()
        paddr = space.translate(0x1234, toucher_node=2)
        assert space.node_of(paddr) == 2
        assert space.first_touch_allocations == 1

    def test_translation_is_stable(self):
        _cfg, space = self.make()
        a = space.translate(0x5000, toucher_node=1)
        b = space.translate(0x5008, toucher_node=3)   # same page
        assert b == a + 8
        assert space.first_touch_allocations == 1

    def test_offsets_preserved(self):
        cfg, space = self.make()
        paddr = space.translate(0x1fff, toucher_node=0)
        assert paddr % cfg.page_size == 0x1fff % cfg.page_size

    def test_line_alignment(self):
        cfg, space = self.make()
        line = space.translate_line(0x1039, toucher_node=0)
        assert line % cfg.line_size == 0

    def test_never_allocates_parity_pages(self):
        cfg, space = self.make()
        for vpage in range(64):
            paddr = space.translate(vpage * cfg.page_size, toucher_node=0)
            node, page = space.node_of(paddr), space.page_of(paddr)
            assert not space.geometry.is_parity_page(node, page)

    def test_reserved_pages_not_handed_out(self):
        cfg, space = self.make(reserved=2)
        reserved = {(n, p) for n in range(4)
                    for p in space.reserved_pages[n]}
        assert all(len(space.reserved_pages[n]) == 2 for n in range(4))
        for vpage in range(32):
            paddr = space.translate(vpage * cfg.page_size, toucher_node=0)
            key = (space.node_of(paddr), space.page_of(paddr))
            assert key not in reserved

    def test_fallback_when_node_full(self):
        cfg, space = self.make()
        data_pages_per_node = len(
            space.geometry.data_pages_of_node(0))
        # Exhaust node 0, next allocation spills elsewhere.
        for vpage in range(data_pages_per_node):
            space.translate(vpage * cfg.page_size, toucher_node=0)
        paddr = space.translate((data_pages_per_node + 1) * cfg.page_size,
                                toucher_node=0)
        assert space.node_of(paddr) != 0

    def test_out_of_memory(self):
        cfg, space = self.make()
        total = sum(len(space.geometry.data_pages_of_node(n))
                    for n in range(4))
        for vpage in range(total):
            space.translate(vpage * cfg.page_size, toucher_node=vpage % 4)
        with pytest.raises(MemoryError):
            space.translate((total + 1) * cfg.page_size, toucher_node=0)

    def test_mapped_physical_pages(self):
        cfg, space = self.make()
        space.translate(0, toucher_node=1)
        space.translate(cfg.page_size, toucher_node=2)
        mapped = space.mapped_physical_pages()
        assert len(mapped) == 2
        assert {n for n, _p in mapped} == {1, 2}

    def test_lines_of_page(self):
        cfg, space = self.make()
        lines = list(space.lines_of_page(1, 0))
        assert len(lines) == cfg.lines_per_page
        assert lines[0] == space.page_base(1, 0)
        assert lines[1] - lines[0] == cfg.line_size

    def test_is_mapped(self):
        cfg, space = self.make()
        assert not space.is_mapped(0x9999)
        space.translate(0x9999, toucher_node=0)
        assert space.is_mapped(0x9999)
