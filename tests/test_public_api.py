"""The root package exposes the documented public API."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        import pytest

        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_end_to_end_via_public_api(self):
        machine = repro.Machine(
            repro.MachineConfig.tiny(4),
            repro.ReViveConfig(parity_group_size=3,
                               checkpoint_interval_ns=50_000,
                               log_bytes_per_node=64 * 1024,
                               debug_snapshots=True))
        workload = repro.get_workload("lu", scale=0.05, n_procs=4)
        machine.attach_workload(workload)
        machine.run(until=120_000)
        if machine.checkpointing.checkpoints_committed >= 1:
            repro.TransientSystemFault().apply(machine)
            result = repro.RecoveryManager(machine).recover(
                detect_time=machine.simulator.now)
            assert machine.verify_against_snapshot(
                result.target_epoch) == []

    def test_app_names(self):
        assert "radix" in repro.APP_NAMES
        assert len(repro.APP_NAMES) == 12
