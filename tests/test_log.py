"""Unit tests for the memory log (Section 3.2.2 / 4.2)."""

import pytest

from repro.core.log import (
    ENTRIES_PER_BLOCK,
    ENTRY_BYTES,
    LINES_PER_BLOCK,
    LogOverflowError,
    MemoryLog,
    _pack_word,
    _unpack_word,
    unwrap_sequence,
)


def make_log(n_blocks=8, node=0):
    region = [0x100000 + i * 64 for i in range(n_blocks * LINES_PER_BLOCK)]
    return MemoryLog(node, region, line_size=64)


class BackingStore:
    """Minimal memory stand-in: executes a log's writes."""

    def __init__(self):
        self.lines = {}

    def read(self, addr):
        return self.lines.get(addr, 0)

    def apply(self, writes):
        for addr, value in writes:
            self.lines[addr] = value


def append(log, store, addr, value, is_commit=False):
    writes = log.make_writes(addr, value, store.read, is_commit=is_commit)
    store.apply(writes)
    log.commit_append(addr, is_commit=is_commit)
    return writes


class TestPacking:
    def test_word_roundtrip(self):
        for addr_line, epoch, seq in [(0, 0, 0), (12345, 17, 999),
                                      ((1 << 40) - 2, 127, 65535)]:
            word = _pack_word(addr_line, epoch, seq, valid=True)
            got_addr, got_epoch, got_seq, valid = _unpack_word(word)
            assert (got_addr, got_epoch, got_seq) == (addr_line, epoch, seq)
            assert valid

    def test_invalid_marker(self):
        word = _pack_word(1, 1, 1, valid=False)
        assert not _unpack_word(word)[3]

    def test_fields_wrap(self):
        word = _pack_word(5, 130, 70000, valid=True)
        _a, epoch, seq, _v = _unpack_word(word)
        assert epoch == 130 % 128
        assert seq == 70000 % 65536


class TestUnwrapSequence:
    def test_no_wrap(self):
        rebased = unwrap_sequence([5, 10, 3])
        assert rebased == {5: 5, 10: 10, 3: 3}

    def test_wrap(self):
        seqs = [65530, 65535, 2, 7]
        rebased = unwrap_sequence(seqs)
        order = sorted(seqs, key=lambda s: rebased[s])
        assert order == [65530, 65535, 2, 7]

    def test_empty(self):
        assert unwrap_sequence([]) == {}


class TestGeometryAndValidation:
    def test_too_small_region(self):
        with pytest.raises(ValueError):
            MemoryLog(0, [0, 64], line_size=64)

    def test_capacity(self):
        log = make_log(n_blocks=8)
        assert log.capacity_slots == 8 * ENTRIES_PER_BLOCK

    def test_marker_is_written_last(self):
        log, store = make_log(), BackingStore()
        writes = log.make_writes(0x4000, 99, store.read)
        assert len(writes) == 2
        entry_line, meta_line = writes[0][0], writes[1][0]
        assert entry_line != meta_line
        assert writes[0][1] == 99           # pre-image first
        # The metadata line is the first line of the block.
        assert meta_line == log.region_lines[0]


class TestAppendDecode:
    def test_roundtrip(self):
        log, store = make_log(), BackingStore()
        append(log, store, 0x4000, 111)
        append(log, store, 0x4040, 222)
        entries = log.decode_region(store.read)
        assert [(e.addr, e.value) for e in entries] == [
            (0x4000, 111), (0x4040, 222)]
        assert all(e.epoch == 0 for e in entries)

    def test_l_bits(self):
        log, store = make_log(), BackingStore()
        assert not log.is_logged(0x4000)
        append(log, store, 0x4000, 1)
        assert log.is_logged(0x4000)
        log.gang_clear_logged()
        assert not log.is_logged(0x4000)

    def test_bytes_used(self):
        log, store = make_log(), BackingStore()
        for i in range(5):
            append(log, store, 0x4000 + i * 64, i)
        assert log.bytes_used == 5 * ENTRY_BYTES
        assert log.max_bytes_used == 5 * ENTRY_BYTES

    def test_overflow(self):
        log, store = make_log(n_blocks=2), BackingStore()
        for i in range(log.capacity_slots):
            append(log, store, 0x4000 + i * 64, i)
        with pytest.raises(LogOverflowError):
            log.make_writes(0x9000, 0, store.read)

    def test_commit_records(self):
        log, store = make_log(), BackingStore()
        append(log, store, 0x4000, 1)
        log.advance_epoch()
        append(log, store, 0, log.current_epoch, is_commit=True)
        records = log.find_commit_records(store.read)
        assert len(records) == 1
        assert records[0].value == 1      # full epoch echoed in the line
        assert records[0].epoch == 1


class TestEpochsAndReclaim:
    def fill_epochs(self, log, store, per_epoch=4, epochs=3):
        for epoch in range(epochs):
            for i in range(per_epoch):
                append(log, store, 0x4000 + (epoch * per_epoch + i) * 64,
                       epoch * 100 + i)
            log.advance_epoch()
        return log

    def test_epoch_start_tracking(self):
        log, store = make_log(), BackingStore()
        self.fill_epochs(log, store)
        assert log.epoch_start == {0: 0, 1: 4, 2: 8, 3: 12}

    def test_reclaim_frees_slots(self):
        log, store = make_log(), BackingStore()
        self.fill_epochs(log, store)
        freed = log.reclaim(oldest_epoch_to_keep=2)
        assert freed == 8
        assert log.tail == 8
        assert 0 not in log.epoch_start and 1 not in log.epoch_start

    def test_reclaim_is_idempotent(self):
        log, store = make_log(), BackingStore()
        self.fill_epochs(log, store)
        log.reclaim(2)
        assert log.reclaim(2) == 0

    def test_ring_wraps_after_reclaim(self):
        log, store = make_log(n_blocks=2), BackingStore()   # 16 slots
        for round_ in range(6):
            for i in range(8):
                append(log, store, 0x4000 + i * 64, round_ * 8 + i)
            log.advance_epoch()
            log.reclaim(log.current_epoch - 1)
            log.gang_clear_logged()
        assert log.head > log.capacity_slots   # genuinely wrapped

    def test_entries_to_undo_newest_first(self):
        log, store = make_log(), BackingStore()
        self.fill_epochs(log, store, per_epoch=3, epochs=2)
        entries = log.entries_to_undo(0, log.current_epoch, store.read)
        seqs = [e.seq for e in entries]
        assert seqs == sorted(seqs, reverse=True)
        assert len(entries) == 6

    def test_entries_to_undo_filters_old_epochs(self):
        log, store = make_log(), BackingStore()
        self.fill_epochs(log, store, per_epoch=3, epochs=3)
        entries = log.entries_to_undo(2, log.current_epoch, store.read)
        assert len(entries) == 3
        assert all(e.epoch == 2 for e in entries)

    def test_reset_to_epoch(self):
        log, store = make_log(), BackingStore()
        self.fill_epochs(log, store, per_epoch=3, epochs=2)
        log.reset_to_epoch(1)
        assert log.current_epoch == 1
        assert log.head == log.epoch_start[1]
        assert not log.logged_lines
