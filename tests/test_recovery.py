"""Integration tests for rollback recovery (Section 3.2.4).

The golden-snapshot methodology: the machine photographs memory at
every commit; after fault injection and recovery, memory must equal the
target snapshot bit-for-bit (log regions excluded — they are
bookkeeping) and the parity invariant must hold machine-wide.
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager


def run_until_after_second_commit(machine, workload=None):
    machine.attach_workload(workload or ToyWorkload(rounds=6))
    coord = machine.checkpointing
    horizon = 3 * coord.interval_ns
    while coord.checkpoints_committed < 2 and not machine.all_finished:
        machine.run(until=horizon)
        horizon += coord.interval_ns
    assert coord.checkpoints_committed >= 2
    detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
    machine.run(until=detect)
    return detect


class TestTransientRecovery:
    def test_rollback_to_previous_checkpoint(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  target_epoch=1)
        assert result.target_epoch == 1
        assert machine.verify_against_snapshot(1) == []
        assert machine.revive.parity.check_all_parity() == []

    def test_rollback_to_latest_checkpoint(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        RecoveryManager(machine).recover(detect_time=detect, target_epoch=2)
        assert machine.verify_against_snapshot(2) == []

    def test_phases_2_and_4_skipped_without_memory_loss(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect)
        assert result.phase2_ns == 0
        assert result.log_lines_rebuilt == 0
        assert result.pages_rebuilt_during_rollback == 0

    def test_lost_work_accounting(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  target_epoch=1)
        expected = detect - machine.commit_time_of_epoch(1)
        assert result.lost_work_ns == expected
        assert result.unavailable_ns == (result.lost_work_ns
                                         + result.phase1_ns
                                         + result.phase3_ns)

    def test_caches_and_directories_cleared(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        RecoveryManager(machine).recover(detect_time=detect)
        for node in machine.nodes:
            assert node.hierarchy.l2.resident_count() == 0
            assert len(node.directory) == 0

    def test_epoch_state_rewound(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        RecoveryManager(machine).recover(detect_time=detect, target_epoch=1)
        for log in machine.revive.logs.values():
            assert log.current_epoch == 1
            assert not log.logged_lines
        assert machine.checkpointing.commit_times[-1] == \
            machine.commit_time_of_epoch(1)
        assert 2 not in machine.snapshots


class TestNodeLossRecovery:
    @pytest.mark.parametrize("lost", [0, 1, 2, 3])
    def test_full_recovery_after_losing_any_node(self, lost):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        NodeLossFault(lost).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=lost)
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []
        assert result.log_lines_rebuilt > 0
        assert result.phase2_ns > 0
        assert result.pages_rebuilt_background > 0

    def test_committed_epoch_determined_from_rebuilt_log(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        expected = machine.checkpointing.checkpoints_committed
        NodeLossFault(2).apply(machine)
        manager = RecoveryManager(machine)
        manager._rebuild_lost_log(2)
        assert manager.determine_committed_epoch() == expected

    def test_node_loss_undoes_more_work_than_transient(self):
        m1 = build_tiny_machine()
        d1 = run_until_after_second_commit(m1)
        TransientSystemFault().apply(m1)
        r1 = RecoveryManager(m1).recover(detect_time=d1, target_epoch=1)

        m2 = build_tiny_machine()
        d2 = run_until_after_second_commit(m2)
        NodeLossFault(1).apply(m2)
        r2 = RecoveryManager(m2).recover(detect_time=d2, target_epoch=1)
        assert r2.unavailable_ns > r1.unavailable_ns

    def test_resume_time(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        NodeLossFault(3).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=3)
        assert result.resume_time == (detect + result.phase1_ns
                                      + result.phase2_ns + result.phase3_ns)


class TestRecoveryValidation:
    def test_cannot_recover_past_reclaimed_epoch(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=8))
        machine.run()
        committed = machine.checkpointing.checkpoints_committed
        assert committed >= 3
        TransientSystemFault().apply(machine)
        with pytest.raises(ValueError):
            RecoveryManager(machine).recover(
                detect_time=machine.simulator.now,
                target_epoch=committed - 2)

    def test_cannot_recover_to_the_future(self):
        machine = build_tiny_machine()
        detect = run_until_after_second_commit(machine)
        TransientSystemFault().apply(machine)
        with pytest.raises(ValueError):
            RecoveryManager(machine).recover(detect_time=detect,
                                             target_epoch=99)

    def test_phase2_requires_lost_memory(self):
        machine = build_tiny_machine()
        run_until_after_second_commit(machine)
        with pytest.raises(RuntimeError):
            RecoveryManager(machine)._rebuild_lost_log(0)


class TestFaults:
    def test_node_loss_kills_processor_and_memory(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        machine.run(until=10_000)
        NodeLossFault(1).apply(machine)
        assert machine.nodes[1].memory.lost
        assert machine.processors[1].killed
        assert machine.stats.value("fault.node_loss") == 1

    def test_node_loss_validates_node_id(self):
        machine = build_tiny_machine()
        with pytest.raises(ValueError):
            NodeLossFault(99).apply(machine)

    def test_transient_keeps_memory(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        machine.run(until=10_000)
        fault = TransientSystemFault()
        fault.apply(machine)
        assert not fault.loses_memory
        assert fault.lost_node is None
        for node in machine.nodes:
            assert not node.memory.lost


class TestRecoveryToInitialState:
    def test_rollback_before_any_checkpoint(self):
        """An error before the first commit rolls back to the initial
        state (checkpoint 0, implicitly committed at time zero)."""
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=4))
        machine.run(until=20_000)           # well before the first commit
        assert machine.checkpointing.checkpoints_committed == 0
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=20_000)
        assert result.target_epoch == 0
        assert machine.verify_against_snapshot(0) == []
        assert machine.revive.parity.check_all_parity() == []

    def test_node_loss_before_any_checkpoint(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=4))
        machine.run(until=20_000)
        NodeLossFault(1).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=20_000,
                                                  lost_node=1)
        assert result.target_epoch == 0
        assert machine.verify_against_snapshot(0) == []
        assert machine.revive.parity.check_all_parity() == []
