"""Tests for log-pressure-triggered (emergency) checkpoints."""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.core.log import LogOverflowError


def pressured_machine(emergency, interval_ns=10_000_000):
    """Small log + an interval far too long to reclaim in time."""
    return build_tiny_machine(
        log_bytes_per_node=32 * 1024,
        checkpoint_interval_ns=interval_ns,
        emergency_checkpoint_fraction=emergency)


WORKLOAD = dict(rounds=8, refs_per_round=1500, private_lines=440,
                shared_lines=128)


class TestEmergencyCheckpoint:
    def test_without_it_the_log_overflows(self):
        machine = pressured_machine(emergency=None)
        machine.attach_workload(ToyWorkload(**WORKLOAD))
        with pytest.raises(LogOverflowError):
            machine.run()

    def test_with_it_the_run_completes(self):
        machine = pressured_machine(emergency=0.7)
        machine.attach_workload(ToyWorkload(**WORKLOAD))
        machine.run()
        assert machine.all_finished
        assert machine.stats.value("ckpt.emergency_requests") > 0
        assert machine.checkpointing.checkpoints_committed > 0
        # Functional invariants survive the asynchronous commits.
        assert machine.revive.parity.check_all_parity() == []

    def test_log_stays_under_capacity(self):
        machine = pressured_machine(emergency=0.7)
        machine.attach_workload(ToyWorkload(**WORKLOAD))
        machine.run()
        for log in machine.revive.logs.values():
            assert log.slots_used <= log.capacity_slots

    def test_periodic_checkpoints_unaffected_when_log_is_roomy(self):
        machine = build_tiny_machine(emergency_checkpoint_fraction=0.85,
                                     checkpoint_interval_ns=50_000,
                                     log_bytes_per_node=64 * 1024)
        machine.attach_workload(ToyWorkload(rounds=4))
        machine.run()
        assert machine.stats.value("ckpt.emergency_requests") == 0

    def test_config_validation(self):
        from repro.core.config import ReViveConfig

        with pytest.raises(ValueError):
            ReViveConfig(emergency_checkpoint_fraction=0.0)
        with pytest.raises(ValueError):
            ReViveConfig(emergency_checkpoint_fraction=1.5)
