"""Property tests for network timing invariants."""

from hypothesis import given, settings, strategies as st

from repro.machine.config import MachineConfig
from repro.network.network import Network
from repro.sim.stats import StatsRegistry


def make_network():
    return Network(MachineConfig.tiny(16), StatsRegistry())


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 100_000),
       st.integers(1, 256))
def test_arrival_never_beats_the_speed_of_light(src, dst, at, nbytes):
    net = make_network()
    cfg = net.config
    arrival = net.send(src, dst, nbytes, at, "PAR")
    assert arrival >= at + cfg.net_latency(src, dst)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15), st.integers(1, 60))
def test_repeated_sends_are_causally_ordered(src, dst, count):
    """Messages injected back-to-back on one NI arrive no earlier than
    the previous send's serialisation allows (FIFO per source)."""
    net = make_network()
    if src == dst:
        return
    arrivals = [net.send_line(src, dst, at=0, category="PAR")
                for _ in range(count)]
    assert arrivals == sorted(arrivals)
    # Serialisation floor: k-th message needs k NI occupancies.
    occupancy = max(1, round(net.config.line_message_bytes()
                             / net.config.ni_bytes_per_ns))
    assert arrivals[-1] >= (count - 1) * occupancy * 0.5


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 15), st.integers(0, 15))
def test_traffic_bytes_account_exactly(src, dst):
    net = make_network()
    before = net.stats.network_traffic.total
    net.send_control(src, dst, at=0, category="RD/RDX")
    net.send_line(src, dst, at=0, category="ExeWB")
    added = net.stats.network_traffic.total - before
    if src == dst:
        assert added == 0
    else:
        assert added == (net.config.header_bytes
                         + net.config.line_message_bytes())
