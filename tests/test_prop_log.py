"""Property-based tests for the memory log."""

from hypothesis import given, settings, strategies as st

from repro.core.log import (
    ENTRIES_PER_BLOCK,
    LINES_PER_BLOCK,
    MemoryLog,
    _pack_word,
    _unpack_word,
    unwrap_sequence,
)


def fresh_log(n_blocks=16):
    region = [0x200000 + i * 64 for i in range(n_blocks * LINES_PER_BLOCK)]
    return MemoryLog(0, region, line_size=64)


class Store:
    def __init__(self):
        self.lines = {}

    def read(self, addr):
        return self.lines.get(addr, 0)


@given(st.integers(0, (1 << 40) - 1), st.integers(0, 1000),
       st.integers(0, 1 << 20), st.booleans())
def test_word_pack_unpack_roundtrip(addr_line, epoch, seq, valid):
    word = _pack_word(addr_line, epoch, seq, valid)
    got_addr, got_epoch, got_seq, got_valid = _unpack_word(word)
    assert got_addr == addr_line
    assert got_epoch == epoch % 128
    assert got_seq == seq % 65536
    assert got_valid == valid
    assert 0 <= word < (1 << 64)


@given(st.lists(st.integers(0, 65535), min_size=1, max_size=200))
def test_unwrap_sequence_is_injective_over_small_windows(seqs):
    # Restrict to a live window smaller than 2^15, as the log enforces.
    base = seqs[0]
    window = [(base + (s % (1 << 14))) % 65536 for s in seqs]
    rebased = unwrap_sequence(window)
    assert set(rebased) == set(window)
    spread = max(rebased.values()) - min(rebased.values())
    assert spread < 1 << 15


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 1 << 60)),
                min_size=1, max_size=100),
       st.integers(1, 4))
def test_append_decode_roundtrip_across_epochs(ops, n_epochs):
    """Whatever is appended (across epochs) decodes back exactly."""
    log, store = fresh_log(), Store()
    expected = []
    per_epoch = max(1, len(ops) // n_epochs)
    for index, (line_no, value) in enumerate(ops):
        addr = 0x40_0000 + line_no * 64
        writes = log.make_writes(addr, value, store.read)
        for mem_line, content in writes:
            store.lines[mem_line] = content
        log.commit_append(addr)
        expected.append((addr, value, log.current_epoch % 128))
        if (index + 1) % per_epoch == 0:
            log.advance_epoch()
    decoded = [(e.addr, e.value, e.epoch)
               for e in log.decode_region(store.read) if e.is_data]
    assert sorted(decoded) == sorted(expected)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(1, ENTRIES_PER_BLOCK * 3))
def test_undo_order_is_strictly_newest_first(n_epochs, per_epoch):
    log, store = fresh_log(n_blocks=32), Store()
    stamp = 0
    for _epoch in range(n_epochs):
        for i in range(per_epoch):
            addr = 0x40_0000 + i * 64
            writes = log.make_writes(addr, stamp, store.read)
            for mem_line, content in writes:
                store.lines[mem_line] = content
            log.commit_append(addr)
            stamp += 1
        log.advance_epoch()
        log.gang_clear_logged()
    entries = log.entries_to_undo(0, log.current_epoch, store.read)
    values = [e.value for e in entries]
    assert values == sorted(values, reverse=True)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 40), st.integers(2, 5))
def test_reclaim_never_loses_retained_epochs(per_epoch, keep):
    log, store = fresh_log(n_blocks=64), Store()
    for _epoch in range(6):
        for i in range(per_epoch):
            addr = 0x40_0000 + i * 64
            writes = log.make_writes(addr, log.current_epoch, store.read)
            for mem_line, content in writes:
                store.lines[mem_line] = content
            log.commit_append(addr)
        log.advance_epoch()
        log.gang_clear_logged()
        log.reclaim(max(0, log.current_epoch - (keep - 1)))
    target = max(0, log.current_epoch - (keep - 1))
    entries = log.entries_to_undo(target, log.current_epoch, store.read)
    kept_epochs = {e.epoch for e in entries}
    expected = {e % 128 for e in range(target, log.current_epoch)}
    assert kept_epochs == expected
