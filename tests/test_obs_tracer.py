"""Tests for repro.obs: tracer, sinks, and trace analysis.

Covers the tentpole guarantees of docs/OBSERVABILITY.md: the event
envelope, category filtering, sink rotation, zero-events-when-disabled,
and the Figure-12 recomputation — recovery phase durations rebuilt from
a JSONL trace must match the live :class:`RecoveryResult`.
"""

from __future__ import annotations

import json

import pytest

from repro.core.faults import NodeLossFault
from repro.core.recovery import RecoveryManager
from repro.obs import (CATEGORIES, SCHEMA_VERSION, JsonlFileSink,
                       RingBufferSink, Tracer, category_counts,
                       read_trace, recovery_breakdown, trace_enabled)
from tests.conftest import ToyWorkload, build_tiny_machine


class TestEnvelope:
    def test_event_envelope_fields(self):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink)
        tracer.emit(125, "ckpt", "ckpt.begin", epoch=1)
        (event,) = sink.events()
        assert event == {"v": SCHEMA_VERSION, "seq": 0, "ts": 125,
                         "cat": "ckpt", "name": "ckpt.begin", "epoch": 1}

    def test_seq_is_monotonic_across_categories(self):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink)
        for i, cat in enumerate(CATEGORIES):
            tracer.emit(i, cat, f"{cat}.x")
        assert [e["seq"] for e in sink.events()] == list(range(len(CATEGORIES)))
        assert tracer.events_emitted == len(CATEGORIES)


class TestFiltering:
    def test_category_filter_drops_before_sink(self):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, categories={"ckpt", "recovery"})
        tracer.emit(0, "sim", "sim.run_begin")
        tracer.emit(1, "ckpt", "ckpt.begin", epoch=1)
        tracer.emit(2, "coh", "coh.transition")
        tracer.emit(3, "recovery", "recovery.begin")
        assert [e["cat"] for e in sink.events()] == ["ckpt", "recovery"]
        # seq numbers only advance for events that pass the filter.
        assert [e["seq"] for e in sink.events()] == [0, 1]

    def test_disabled_tracer_emits_nothing(self):
        sink = RingBufferSink()
        tracer = Tracer(sink=sink, enabled=False)
        tracer.emit(0, "sim", "sim.run_begin")
        assert sink.events() == []
        assert tracer.events_emitted == 0
        assert not tracer.enabled

    def test_sinkless_tracer_is_disabled(self):
        assert not Tracer(sink=None).enabled

    def test_close_disables_further_emission(self):
        sink = RingBufferSink()
        with Tracer(sink=sink) as tracer:
            tracer.emit(0, "sim", "sim.run_begin")
        assert not tracer.enabled
        tracer.emit(1, "sim", "sim.run_end")
        assert len(sink.events()) == 1

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(sink=JsonlFileSink(path))
        tracer.emit(0, "sim", "sim.hook_fire")
        tracer.close()
        tracer.close()                      # second close: a no-op
        assert not tracer.enabled
        assert [e["ts"] for e in read_trace(path)] == [0]


class TestRingBufferSink:
    def test_keeps_newest_and_counts_dropped(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink=sink)
        for i in range(5):
            tracer.emit(i, "sim", "sim.hook_fire")
        assert [e["ts"] for e in sink.events()] == [2, 3, 4]
        assert sink.dropped == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlFileSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(sink=JsonlFileSink(path)) as tracer:
            tracer.emit(1, "log", "log.append", node=0)
            tracer.emit(2, "log", "log.reclaim", node=0)
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert [e["name"] for e in lines] == ["log.append", "log.reclaim"]

    def test_rotation_segments_and_read_trace(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlFileSink(path, max_events_per_file=2)
        with Tracer(sink=sink) as tracer:
            for i in range(5):
                tracer.emit(i, "sim", "sim.hook_fire")
        assert sink.paths() == [path, f"{path}.1", f"{path}.2"]
        events = read_trace(path)
        assert [e["ts"] for e in events] == [0, 1, 2, 3, 4]
        assert category_counts(events) == {"sim": 5}

    def test_rejects_non_positive_rotation(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlFileSink(str(tmp_path / "t.jsonl"), max_events_per_file=0)

    def test_many_segments_form_one_seamless_seq_ordered_stream(
            self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlFileSink(path, max_events_per_file=7)
        with Tracer(sink=sink) as tracer:
            for i in range(100):
                tracer.emit(i, "sim", "sim.hook_fire")
        assert len(sink.paths()) == 15      # ceil(100 / 7)
        events = read_trace(path)
        assert [e["seq"] for e in events] == list(range(100))
        assert [e["ts"] for e in events] == list(range(100))

    def test_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlFileSink(str(tmp_path / "t.jsonl"))
        sink.write({"v": SCHEMA_VERSION, "seq": 0, "ts": 0,
                    "cat": "sim", "name": "sim.hook_fire"})
        sink.close()
        sink.close()                        # must not raise on closed file


class TestZeroCostWhenOff:
    def test_untraced_machine_components_carry_disabled_tracer(self):
        machine = build_tiny_machine()
        assert not trace_enabled(machine)
        assert not machine.simulator.tracer.enabled
        for node in machine.nodes:
            assert not node.directory.tracer.enabled

    def test_untraced_run_emits_zero_events(self):
        # Same run twice: untraced, then traced.  The untraced machine's
        # shared NULL_TRACER must stay at zero emissions.
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=1, refs_per_round=200))
        machine.run()
        assert machine.tracer.events_emitted == 0

        sink = RingBufferSink()
        traced = build_tiny_machine()
        traced.install_tracer(Tracer(sink=sink))
        traced.attach_workload(ToyWorkload(rounds=1, refs_per_round=200))
        traced.run()
        assert trace_enabled(traced)
        assert len(sink.events()) > 0

    def test_install_tracer_reaches_every_component(self):
        machine = build_tiny_machine()
        tracer = Tracer(sink=RingBufferSink())
        machine.install_tracer(tracer)
        assert machine.simulator.tracer is tracer
        for node in machine.nodes:
            assert node.directory.tracer is tracer
        for log in machine.revive.logs.values():
            assert log.tracer is tracer


class TestRecoveryBreakdownFromTrace:
    """The worked example of docs/OBSERVABILITY.md, as a test.

    Phase durations recomputed purely from the JSONL trace must equal
    the live ``RecoveryResult`` of the same node-loss recovery.
    """

    def run_traced_node_loss(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sink=JsonlFileSink(path))
        machine = build_tiny_machine()
        machine.install_tracer(tracer)
        machine.attach_workload(ToyWorkload(rounds=6))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        assert coord.checkpoints_committed >= 2
        detect = coord.commit_times[2] + int(0.8 * coord.interval_ns)
        machine.run(until=detect)
        NodeLossFault(1).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  lost_node=1,
                                                  target_epoch=1)
        tracer.close()
        return machine, result, read_trace(path)

    def test_trace_matches_recovery_result(self, tmp_path):
        machine, result, events = self.run_traced_node_loss(tmp_path)
        assert machine.verify_against_snapshot(1) == []
        live = dict(result.breakdown(),
                    background_repair=result.phase4_background_ns)
        assert recovery_breakdown(events) == live

    def test_trace_carries_all_categories(self, tmp_path):
        _machine, _result, events = self.run_traced_node_loss(tmp_path)
        counts = category_counts(events)
        # Every simulator-emitted category; "svc" belongs to the
        # serving layer (docs/SERVING.md), "snap" to the campaign
        # layer (docs/SNAPSHOTS.md), "prof"/"stats" to the
        # host-time/telemetry layer (docs/OBSERVABILITY.md), and
        # "digest" to the determinism observatory (opt-in via
        # install_digests) — none of them appears in a plain machine
        # trace.
        assert set(counts) == set(CATEGORIES) - {"svc", "snap",
                                                 "prof", "stats",
                                                 "digest"}
        names = {e["name"] for e in events}
        assert {"sim.run_begin", "coh.transition", "log.append",
                "ckpt.commit", "recovery.begin", "recovery.end",
                "recovery.phase_begin", "recovery.phase_end"} <= names

    def test_incomplete_trace_raises(self):
        with pytest.raises(ValueError):
            recovery_breakdown([{"v": 1, "seq": 0, "ts": 0,
                                 "cat": "recovery",
                                 "name": "recovery.begin",
                                 "lost_node": 1}])
