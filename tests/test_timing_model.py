"""Tests pinning the timing model's defining behaviours."""

import dataclasses

import numpy as np
import pytest

from conftest import ToyWorkload, build_tiny_machine, run_toy

from repro.machine.config import MachineConfig
from repro.machine.system import Machine


def run_with(config, seed=0, rounds=2):
    machine = Machine(config, None)
    machine.attach_workload(ToyWorkload(rounds=rounds, seed=seed))
    machine.run()
    return machine


class TestMLPFactor:
    def test_higher_overlap_shortens_miss_stalls(self):
        base_cfg = MachineConfig.tiny(4)
        slow = run_with(dataclasses.replace(base_cfg, miss_overlap=1.0))
        fast = run_with(dataclasses.replace(base_cfg, miss_overlap=4.0))
        assert fast.execution_time < slow.execution_time
        # Functional behaviour (reference counts) is unchanged.
        assert fast.total_mem_refs() == slow.total_mem_refs()


class TestContention:
    def test_slower_memory_bus_slows_missy_workloads(self):
        base_cfg = MachineConfig.tiny(4)
        fast_mem = run_with(dataclasses.replace(base_cfg,
                                                mem_bytes_per_ns=32.0))
        slow_mem = run_with(dataclasses.replace(base_cfg,
                                                mem_bytes_per_ns=0.4))
        assert slow_mem.execution_time > fast_mem.execution_time

    def test_network_latency_scales_remote_traffic(self):
        base_cfg = MachineConfig.tiny(4)
        near = run_with(dataclasses.replace(base_cfg, net_base_ns=5,
                                            net_per_hop_ns=1))
        far = run_with(dataclasses.replace(base_cfg, net_base_ns=300,
                                           net_per_hop_ns=100))
        assert far.execution_time > near.execution_time


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        a = run_toy(build_tiny_machine())
        b = run_toy(build_tiny_machine())
        assert a.execution_time == b.execution_time
        assert a.stats.network_traffic.as_dict() \
            == b.stats.network_traffic.as_dict()
        assert a.stats.memory_traffic.as_dict() \
            == b.stats.memory_traffic.as_dict()
        assert a.revive.max_log_bytes() == b.revive.max_log_bytes()

    def test_memory_contents_are_reproducible(self):
        a = run_toy(build_tiny_machine())
        b = run_toy(build_tiny_machine())
        for node_a, node_b in zip(a.nodes, b.nodes):
            assert node_a.memory.snapshot() == node_b.memory.snapshot()


class TestTimeAccounting:
    def test_execution_time_exceeds_pure_gap_time(self):
        machine = run_toy(build_tiny_machine(revive=False))
        # Gaps alone put a floor under the runtime; hits/misses add to it.
        total_gap_ns_lower_bound = 2000 * 3  # rounds * refs * min gap
        assert machine.execution_time > total_gap_ns_lower_bound

    def test_revive_never_speeds_things_up(self):
        base = run_toy(build_tiny_machine(revive=False),
                       ToyWorkload(rounds=3, refs_per_round=1200))
        revive = run_toy(build_tiny_machine(),
                         ToyWorkload(rounds=3, refs_per_round=1200))
        assert revive.execution_time >= base.execution_time
