"""Unit tests for the torus topology and network timing."""

import pytest

from repro.machine.config import MachineConfig
from repro.network.network import Network
from repro.network.topology import Torus2D
from repro.sim.stats import StatsRegistry


class TestTorus2D:
    def test_coords_roundtrip(self):
        t = Torus2D(4, 4)
        for node in range(16):
            x, y = t.coords(node)
            assert t.node_at(x, y) == node

    def test_neighbors_wrap(self):
        t = Torus2D(4, 4)
        assert t.neighbor(0, 1) == 3        # -x wraps
        assert t.neighbor(3, 0) == 0        # +x wraps
        assert t.neighbor(0, 3) == 12       # -y wraps

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            Torus2D(4, 4).neighbor(0, 9)

    def test_route_length_equals_hops(self):
        t = Torus2D(4, 4)
        for src in range(16):
            for dst in range(16):
                assert len(t.route(src, dst)) == t.hops(src, dst)

    def test_route_endpoints(self):
        t = Torus2D(4, 4)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                route = t.route(src, dst)
                assert route[0][0] == src
                node = src
                for link_node, direction in route:
                    assert link_node == node
                    node = t.neighbor(node, direction)
                assert node == dst

    def test_shortest_way_around(self):
        t = Torus2D(4, 4)
        assert t.hops(0, 3) == 1
        assert t.hops(0, 2) == 2
        assert t.hops(0, 10) == 4

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ValueError):
            Torus2D(0, 4)


class TestNetwork:
    def make(self):
        cfg = MachineConfig.tiny(4)
        stats = StatsRegistry()
        return cfg, stats, Network(cfg, stats)

    def test_local_messages_are_free(self):
        _cfg, stats, net = self.make()
        assert net.send(1, 1, 1000, at=50, category="PAR") == 50
        assert stats.network_traffic.total == 0
        assert net.messages_sent == 0

    def test_latency_matches_table3_formula(self):
        cfg, _stats, net = self.make()
        arrival = net.send_control(0, 1, at=0, category="RD/RDX")
        # NI occupancy start + serialisation + 30 + 8 * hops.
        occupancy = max(1, round(cfg.header_bytes / cfg.ni_bytes_per_ns))
        assert arrival == occupancy + cfg.net_base_ns + cfg.net_per_hop_ns

    def test_traffic_accounting(self):
        cfg, stats, net = self.make()
        net.send_line(0, 1, at=0, category="PAR")
        net.send_control(1, 0, at=0, category="PAR")
        expected = cfg.line_message_bytes() + cfg.header_bytes
        assert stats.network_traffic.bytes_by_category["PAR"] == expected
        assert net.messages_sent == 2

    def test_contention_slows_messages(self):
        _cfg, _stats, net = self.make()
        arrivals = [net.send_line(0, 1, at=0, category="PAR")
                    for _ in range(200)]
        assert max(arrivals) > arrivals[0] + 1000

    def test_link_utilization_bounds(self):
        _cfg, _stats, net = self.make()
        for _ in range(100):
            net.send_line(0, 1, at=0, category="PAR")
        u = net.link_utilization(10_000)
        assert 0.0 < u <= 1.0

    def test_reset(self):
        _cfg, _stats, net = self.make()
        net.send_line(0, 1, at=0, category="PAR")
        net.reset()
        assert net.messages_sent == 0
        assert net.link_utilization(1000) == 0.0


class TestTable3Latency:
    """Pin ``30ns + 8ns x hops`` against hand-computed torus routes.

    ``tiny(8)`` is a 4x2 torus and ``tiny(16)`` a 4x4 torus with
    ``x = node % width``, ``y = node // width`` and minimal-wrap
    distances in each dimension; every hop count below is worked out
    by hand from those coordinates, not recomputed via the formula
    under test.
    """

    # (src, dst, hand-computed min-wrap hops) on the 4x2 torus.
    HOPS_4X2 = [
        (0, 1, 1),   # (0,0) -> (1,0): one +x hop
        (0, 2, 2),   # (0,0) -> (2,0): 2 either way around x
        (0, 3, 1),   # (0,0) -> (3,0): -x wrap beats 3 forward hops
        (0, 4, 1),   # (0,0) -> (0,1): one y hop (height 2)
        (0, 6, 3),   # (0,0) -> (2,1): 2 in x + 1 in y
        (0, 7, 2),   # (0,0) -> (3,1): x wrap + 1 in y
        (1, 7, 3),   # (1,0) -> (3,1): 2 in x + 1 in y
    ]

    def test_hand_checked_hops_8_nodes(self):
        cfg = MachineConfig.tiny(8)
        for src, dst, hops in self.HOPS_4X2:
            assert cfg.hops(src, dst) == hops, (src, dst)
            assert cfg.hops(dst, src) == hops, (dst, src)

    def test_hand_checked_hops_16_nodes(self):
        # 4x4 torus: (0,3) -x wrap; (0,10) 2 in x + 2 in y;
        # (0,15) -x wrap + -y wrap; (5,15) and (1,11) 2 + 2.
        cfg = MachineConfig.tiny(16)
        for src, dst, hops in [(0, 3, 1), (0, 10, 4), (0, 15, 2),
                               (5, 15, 4), (1, 11, 4)]:
            assert cfg.hops(src, dst) == hops, (src, dst)

    def test_control_latency_multi_hop(self):
        # 8-byte header: NI occupancy round(8 / 3.2) = 2 (round-half-
        # to-even), then 30 + 8 x hops.
        cfg = MachineConfig.tiny(8)
        net = Network(cfg, StatsRegistry())
        for src, dst, hops in self.HOPS_4X2:
            arrival = net.send_control(src, dst, at=0, category="RD/RDX")
            assert arrival == 2 + 30 + 8 * hops, (src, dst)
            net.reset()

    def test_line_latency_multi_hop(self):
        # 72-byte line message: NI occupancy round(72 / 3.2) = 22.
        cfg = MachineConfig.tiny(16)
        net = Network(cfg, StatsRegistry())
        assert cfg.line_message_bytes() == 72
        for src, dst, hops in [(0, 10, 4), (0, 15, 2), (5, 15, 4)]:
            arrival = net.send_line(src, dst, at=0, category="ExeWB")
            assert arrival == 22 + 30 + 8 * hops, (src, dst)
            net.reset()

    def test_uncontended_latency_matches_idle_send(self):
        cfg = MachineConfig.tiny(8)
        for nbytes in (cfg.header_bytes, cfg.line_message_bytes()):
            for src in range(8):
                for dst in range(8):
                    net = Network(cfg, StatsRegistry())
                    assert (net.uncontended_latency(src, dst, nbytes)
                            == net.send(src, dst, nbytes, 0, "RD/RDX"))

    def test_uncontended_latency_is_local_free(self):
        net = Network(MachineConfig.tiny(4), StatsRegistry())
        assert net.uncontended_latency(2, 2, 10_000) == 0

    def test_uncontended_latency_ignores_contention(self):
        cfg = MachineConfig.tiny(4)
        net = Network(cfg, StatsRegistry())
        floor = net.uncontended_latency(0, 1, cfg.line_message_bytes())
        for _ in range(200):
            net.send_line(0, 1, at=0, category="PAR")
        assert net.uncontended_latency(
            0, 1, cfg.line_message_bytes()) == floor
        assert net.send_line(0, 1, at=0, category="PAR") > floor


class TestLinkUtilization:
    def test_exact_value_single_message(self):
        # One 72-byte line 0 -> 1 on the 2x2 torus claims one link for
        # round(72 / 3.2) = 22ns; 4 nodes x 4 directed links = 16
        # links total.
        cfg = MachineConfig.tiny(4)
        net = Network(cfg, StatsRegistry())
        net.send_line(0, 1, at=0, category="PAR")
        assert net.link_utilization(1000) == 22 / (1000 * 16)

    def test_exact_value_accumulates_and_scales(self):
        cfg = MachineConfig.tiny(4)
        net = Network(cfg, StatsRegistry())
        net.send_line(0, 1, at=0, category="PAR")
        net.send_line(0, 1, at=0, category="PAR")
        assert net.link_utilization(1000) == 44 / (1000 * 16)
        assert net.link_utilization(2000) == 44 / (2000 * 16)

    def test_multi_hop_charges_every_link_on_route(self):
        # 0 -> 10 on the 4x4 torus is 4 hops: the one message charges
        # 22ns on each of 4 links out of 16 x 4 = 64.
        cfg = MachineConfig.tiny(16)
        net = Network(cfg, StatsRegistry())
        net.send_line(0, 10, at=0, category="PAR")
        assert net.link_utilization(1000) == (22 * 4) / (1000 * 64)

    def test_clamped_at_one(self):
        cfg = MachineConfig.tiny(4)
        net = Network(cfg, StatsRegistry())
        for _ in range(50):
            net.send_line(0, 1, at=0, category="PAR")
        assert net.link_utilization(1) == 1.0

    def test_zero_elapsed_is_zero(self):
        net = Network(MachineConfig.tiny(4), StatsRegistry())
        net.send_line(0, 1, at=0, category="PAR")
        assert net.link_utilization(0) == 0.0
