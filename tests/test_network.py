"""Unit tests for the torus topology and network timing."""

import pytest

from repro.machine.config import MachineConfig
from repro.network.network import Network
from repro.network.topology import Torus2D
from repro.sim.stats import StatsRegistry


class TestTorus2D:
    def test_coords_roundtrip(self):
        t = Torus2D(4, 4)
        for node in range(16):
            x, y = t.coords(node)
            assert t.node_at(x, y) == node

    def test_neighbors_wrap(self):
        t = Torus2D(4, 4)
        assert t.neighbor(0, 1) == 3        # -x wraps
        assert t.neighbor(3, 0) == 0        # +x wraps
        assert t.neighbor(0, 3) == 12       # -y wraps

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            Torus2D(4, 4).neighbor(0, 9)

    def test_route_length_equals_hops(self):
        t = Torus2D(4, 4)
        for src in range(16):
            for dst in range(16):
                assert len(t.route(src, dst)) == t.hops(src, dst)

    def test_route_endpoints(self):
        t = Torus2D(4, 4)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                route = t.route(src, dst)
                assert route[0][0] == src
                node = src
                for link_node, direction in route:
                    assert link_node == node
                    node = t.neighbor(node, direction)
                assert node == dst

    def test_shortest_way_around(self):
        t = Torus2D(4, 4)
        assert t.hops(0, 3) == 1
        assert t.hops(0, 2) == 2
        assert t.hops(0, 10) == 4

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ValueError):
            Torus2D(0, 4)


class TestNetwork:
    def make(self):
        cfg = MachineConfig.tiny(4)
        stats = StatsRegistry()
        return cfg, stats, Network(cfg, stats)

    def test_local_messages_are_free(self):
        _cfg, stats, net = self.make()
        assert net.send(1, 1, 1000, at=50, category="PAR") == 50
        assert stats.network_traffic.total == 0
        assert net.messages_sent == 0

    def test_latency_matches_table3_formula(self):
        cfg, _stats, net = self.make()
        arrival = net.send_control(0, 1, at=0, category="RD/RDX")
        # NI occupancy start + serialisation + 30 + 8 * hops.
        occupancy = max(1, round(cfg.header_bytes / cfg.ni_bytes_per_ns))
        assert arrival == occupancy + cfg.net_base_ns + cfg.net_per_hop_ns

    def test_traffic_accounting(self):
        cfg, stats, net = self.make()
        net.send_line(0, 1, at=0, category="PAR")
        net.send_control(1, 0, at=0, category="PAR")
        expected = cfg.line_message_bytes() + cfg.header_bytes
        assert stats.network_traffic.bytes_by_category["PAR"] == expected
        assert net.messages_sent == 2

    def test_contention_slows_messages(self):
        _cfg, _stats, net = self.make()
        arrivals = [net.send_line(0, 1, at=0, category="PAR")
                    for _ in range(200)]
        assert max(arrivals) > arrivals[0] + 1000

    def test_link_utilization_bounds(self):
        _cfg, _stats, net = self.make()
        for _ in range(100):
            net.send_line(0, 1, at=0, category="PAR")
        u = net.link_utilization(10_000)
        assert 0.0 < u <= 1.0

    def test_reset(self):
        _cfg, _stats, net = self.make()
        net.send_line(0, 1, at=0, category="PAR")
        net.reset()
        assert net.messages_sent == 0
        assert net.link_utilization(1000) == 0.0
