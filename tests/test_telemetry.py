"""Tests for repro.obs.telemetry: host-time attribution snapshots.

Covers the profile snapshot shape and its invariants (self times
partition the wall clock even when timers nest or re-enter), the
deterministic cross-process merge, the derived coverage/fallout
ratios, the ``prof.*`` trace narration (which must lint clean,
including the attribution-sums-to-run check), the flamegraph and
Prometheus expositions, and the checked-in broken fixture that proves
the telemetry lint checks have teeth.
"""

from __future__ import annotations

import os
import time

from repro.obs import RingBufferSink, Tracer, lint_events, lint_file
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import Profiler
from repro.obs.telemetry import (
    PROFILE_SCHEMA,
    actor_coverage,
    fallout_share,
    flamegraph_lines,
    merge_profiles,
    profile_snapshot,
    prometheus_text,
)
from tests.conftest import ToyWorkload, build_tiny_machine


def make_profile(run_wall=2.0, actor_secs=(0.9, 0.8),
                 fallout_secs=(0.3,)) -> dict:
    """A hand-built snapshot with known numbers for arithmetic tests."""
    profiler = Profiler()
    profiler.wall_seconds["machine.run"] = run_wall
    profiler.self_seconds["machine.run"] = run_wall
    profiler.calls["machine.run"] = 1
    profiler.note_events(1000)
    for actor_id, seconds in enumerate(actor_secs):
        profiler.note_actor(actor_id, seconds, 100)
        profiler.label_actor(actor_id, actor_id, "Processor")
    for node, seconds in enumerate(fallout_secs):
        cell = profiler.fallout_cell(node)
        cell[0] += seconds
        cell[1] += 10
    return profile_snapshot(profiler)


class TestProfiler:
    def test_nested_timers_split_self_from_cumulative(self):
        profiler = Profiler()
        with profiler.timer("outer"):
            time.sleep(0.01)
            with profiler.timer("inner"):
                time.sleep(0.01)
        # Outer cumulative covers the inner timer; outer self does not.
        assert profiler.wall_seconds["outer"] >= \
            profiler.wall_seconds["inner"]
        assert profiler.self_seconds["outer"] < \
            profiler.wall_seconds["outer"]
        assert profiler.self_seconds["inner"] == \
            profiler.wall_seconds["inner"]
        # Self times partition the profiled wall clock.
        total_self = sum(profiler.self_seconds.values())
        assert abs(total_self - profiler.wall_seconds["outer"]) < 5e-3

    def test_reentrant_timer_does_not_double_count(self):
        profiler = Profiler()
        with profiler.timer("component"):
            time.sleep(0.005)
            with profiler.timer("component"):
                time.sleep(0.005)
        # Without machine.run, total_wall_seconds falls back to the
        # sum of self times — which must equal the outer entry's wall
        # clock, not twice the inner one.
        outer_wall = profiler.wall_seconds["component"]
        assert profiler.calls["component"] == 2
        assert profiler.total_wall_seconds < outer_wall
        assert profiler.total_wall_seconds >= outer_wall / 2

    def test_actor_attribution_is_additive(self):
        profiler = Profiler()
        profiler.note_actor(3, 0.25, 10)
        profiler.note_actor(3, 0.25, 15)
        assert profiler.actors[3] == [0.5, 25]
        assert profiler.actor_seconds == 0.5

    def test_fallout_cell_is_shared_and_mutable(self):
        profiler = Profiler()
        cell = profiler.fallout_cell(0)
        cell[0] += 0.1
        cell[1] += 1
        assert profiler.fallout_cell(0) is cell
        assert profiler.fallout_seconds == 0.1


class TestProfileSnapshot:
    def test_shape_and_string_keys(self):
        profile = make_profile()
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["total_wall_seconds"] == 2.0
        assert profile["events"] == 1000
        assert set(profile["actors"]) == {"0", "1"}
        assert set(profile["fallout"]) == {"0"}
        assert profile["actors"]["0"] == {
            "node": 0, "kind": "Processor", "seconds": 0.9,
            "activations": 100}
        assert profile["components"][0][0] == "machine.run"

    def test_survives_json_round_trip(self):
        import json

        profile = make_profile()
        assert json.loads(json.dumps(profile)) == profile


class TestMergeProfiles:
    def test_merge_sums_and_counts_jobs(self):
        merged = merge_profiles([make_profile(), make_profile()])
        assert merged["jobs"] == 2
        assert merged["total_wall_seconds"] == 4.0
        assert merged["events"] == 2000
        assert merged["actors"]["0"]["seconds"] == 1.8
        assert merged["fallout"]["0"]["calls"] == 20

    def test_merge_is_order_independent(self):
        a = make_profile(run_wall=1.0, actor_secs=(0.5,))
        b = make_profile(run_wall=3.0, actor_secs=(1.0, 1.5))
        assert merge_profiles([a, b]) == merge_profiles([b, a])

    def test_none_jobs_are_skipped(self):
        merged = merge_profiles([None, make_profile(), None])
        assert merged["jobs"] == 1

    def test_all_none_returns_none(self):
        assert merge_profiles([None, None]) is None
        assert merge_profiles([]) is None


class TestDerivedRatios:
    def test_actor_coverage(self):
        profile = make_profile(run_wall=2.0, actor_secs=(0.9, 0.8))
        assert abs(actor_coverage(profile) - 1.7 / 2.0) < 1e-9

    def test_fallout_share(self):
        profile = make_profile(actor_secs=(0.9, 0.8),
                               fallout_secs=(0.34,))
        assert abs(fallout_share(profile) - 0.34 / 1.7) < 1e-9

    def test_zero_profiles_return_zero(self):
        empty = profile_snapshot(Profiler())
        assert actor_coverage(empty) == 0.0
        assert fallout_share(empty) == 0.0


class TestProfEvents:
    def emit(self, profile):
        from repro.obs.telemetry import emit_profile_events

        sink = RingBufferSink()
        tracer = Tracer(sink)
        emit_profile_events(tracer, profile)
        return list(sink.events())

    def test_narration_lints_clean(self):
        events = self.emit(make_profile())
        names = [event["name"] for event in events]
        assert names[0] == "prof.run"
        assert names.count("prof.actor") == 2
        assert names.count("prof.tier") == 1
        assert lint_events(events) == []

    def test_overattributed_profile_fails_lint(self):
        profile = make_profile(run_wall=1.0, actor_secs=(0.8, 0.8))
        problems = lint_events(self.emit(profile))
        assert any("attribution exceeds the run" in p for p in problems)

    def test_broken_telemetry_fixture_fails_lint(self):
        # The checked-in fixture carries two hand-corrupted violations
        # — actor seconds exceeding their prof.run wall clock, and a
        # repeated heartbeat beat — and nothing else.  Lint must find
        # exactly those two.
        fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                               "broken_telemetry_trace.jsonl")
        problems = lint_file(fixture)
        assert len(problems) == 2
        assert any("attribution exceeds the run" in p for p in problems)
        assert any("beat 5 does not increase" in p for p in problems)


class TestExpositions:
    def test_flamegraph_splits_batch_from_fallout(self):
        lines = flamegraph_lines(
            make_profile(actor_secs=(1.0,), fallout_secs=(0.25,)))
        stacks = dict(line.rsplit(" ", 1) for line in lines)
        frame = "machine.run;actor0/Processor/node0"
        assert stacks[f"{frame};batch"] == str(750_000)
        assert stacks[f"{frame};protocol_fallout"] == str(250_000)

    def test_prometheus_text_renders_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("svc.requests.run").add(3)
        registry.gauge("svc.workers").set(4)
        registry.log_histogram("svc.execute_us").record(1000)
        text = prometheus_text(registry.full_snapshot())
        assert text.endswith("\n")
        assert "# TYPE repro_svc_requests_run counter" in text
        assert "repro_svc_requests_run 3" in text
        assert "repro_svc_workers 4" in text
        assert "# TYPE repro_svc_execute_us_count gauge" in text

    def test_prometheus_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("svc.cache-hits.2x").add()
        text = prometheus_text(registry.full_snapshot())
        assert "repro_svc_cache_hits_2x 1" in text


class TestLiveAttribution:
    def test_tiny_run_attributes_most_of_the_wall_clock(self):
        machine = build_tiny_machine()
        profiler = Profiler()
        machine.install_profiler(profiler)
        machine.attach_workload(ToyWorkload(rounds=2))
        machine.run()
        profile = profile_snapshot(profiler)
        coverage = actor_coverage(profile)
        # Attribution reconciles against the run loop: nearly all of
        # machine.run's wall clock lands on actors, and never more
        # than all of it (the lint invariant).
        assert 0.5 < coverage <= 1.0 + 1e-6
        assert profile["events"] > 0
        assert all(info["kind"] == "Processor"
                   for info in profile["actors"].values())
        assert len(profile["actors"]) == 4

    def test_profiled_run_matches_unprofiled_results(self):
        plain = build_tiny_machine()
        plain.attach_workload(ToyWorkload(rounds=2))
        plain.run()
        profiled = build_tiny_machine()
        profiled.install_profiler(Profiler())
        profiled.attach_workload(ToyWorkload(rounds=2))
        profiled.run()
        assert plain.total_mem_refs() == profiled.total_mem_refs()
        assert plain.simulator.now == profiled.simulator.now
