"""Columnar-tier oracle: three execution tiers, one behaviour.

``REPRO_FASTPATH`` selects among three execution tiers — ``0`` is the
layered reference loop, ``scalar`` the compiled per-reference fast
path, and the default the columnar batch engine (``repro.cpu.
columnar``).  The tiers are performance levels of *one* simulator:
every observable — cache counters, LRU order, memory contents,
checkpoint history, trace output — must be bit-identical across them.
These tests enforce that oracle for every Splash-2 analog and every
ReVive variant, plus the columnar contracts that ride on it: trace
record -> replay round-trips, mid-run snapshot/restore (including a
tier switch at the restore boundary), and ``mem.batch`` counter
reconciliation on a real analog.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.harness.runner import build_machine, tiny_revive_overrides
from repro.machine.config import MachineConfig
from repro.obs import RingBufferSink, Tracer
from repro.workloads.registry import APP_NAMES, get_workload
from repro.workloads.tracefile import TraceWorkload, record_trace

NODES = 4
SCALE = 0.02
INTERVAL_NS = 50_000
TIERS = ("reference", "scalar", "columnar")
REVIVE_VARIANTS = ("cp_parity", "cpinf_parity", "cp_mirroring",
                   "cpinf_mirroring")

#: CpInf variants never reclaim their logs; their oracle runs stop
#: here instead of running the tiny log region into overflow.
CPINF_HORIZON_NS = 3 * INTERVAL_NS


def horizon(variant: str):
    return CPINF_HORIZON_NS if variant.startswith("cpinf") else None


def set_tier(machine, tier: str) -> None:
    assert tier in TIERS
    for proc in machine.processors:
        proc.fastpath = tier != "reference"
        proc.columnar = tier == "columnar"


def tiny_config():
    """The tiny preset with enough simulated DRAM for every analog.

    Footprints don't shrink with ``scale`` (it multiplies run length,
    not the touched region), and cholesky/ocean overflow the preset's
    256KB/node.
    """
    return dataclasses.replace(MachineConfig.tiny(NODES),
                               node_memory_bytes=4 * 1024 * 1024)


def build(app: str, variant: str, tracer=None, scale: float = SCALE):
    machine = build_machine(variant, tiny_config(),
                            INTERVAL_NS, tracer=tracer,
                            **tiny_revive_overrides(NODES))
    machine.attach_workload(get_workload(app, scale=scale,
                                         n_procs=NODES))
    return machine


def fingerprint(machine):
    """Everything observable, *including* cache LRU order.

    ``hierarchy.snapshot()`` fires the columnar sync hooks before
    reading the set dicts, so deferred virtual state is materialized
    exactly as any external observer would see it.
    """
    return {
        "now": machine.simulator.now,
        "activations": machine.simulator.activations,
        "times": [p.time for p in machine.processors],
        "mem_refs": [p.mem_refs for p in machine.processors],
        "store_counter": machine._store_counter,
        "memories": [dict(node.memory.lines()) for node in machine.nodes],
        "caches": [node.hierarchy.snapshot() for node in machine.nodes],
        "l1_counters": [(n.hierarchy.l1.hits, n.hierarchy.l1.misses)
                        for n in machine.nodes],
        "l2_counters": [(n.hierarchy.l2.hits, n.hierarchy.l2.misses)
                        for n in machine.nodes],
        "commits": (list(machine.checkpointing.commit_times)
                    if machine.checkpointing else None),
        "log_bytes": (machine.revive.max_log_bytes()
                      if machine.revive else None),
    }


def run_tier(app: str, variant: str, tier: str, trace: bool = False):
    sink = RingBufferSink(capacity=1 << 20) if trace else None
    machine = build(app, variant, tracer=Tracer(sink) if trace else None)
    set_tier(machine, tier)
    machine.run(until=horizon(variant))
    events = sink.events() if trace else None
    return fingerprint(machine), events


def non_mem_trace(events):
    """The tier-invariant trace: everything but ``mem`` aggregates.

    ``mem.batch`` flush boundaries are a property of the tier (the
    reference loop emits none at all), so mem events — and the global
    ``seq`` numbers they consume — are excluded; every other category
    must match byte for byte, in order.
    """
    return [json.dumps({k: v for k, v in e.items() if k != "seq"},
                       sort_keys=True)
            for e in events if e["cat"] != "mem"]


class TestTierOracle:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_every_analog_bit_identical_across_tiers(self, app):
        ref_fp, ref_ev = run_tier(app, "cp_parity", "reference",
                                  trace=True)
        ref_trace = non_mem_trace(ref_ev)
        assert ref_trace, "reference run emitted no trace events"
        for tier in ("scalar", "columnar"):
            fp, ev = run_tier(app, "cp_parity", tier, trace=True)
            assert fp == ref_fp, f"{app}: {tier} tier diverged"
            assert non_mem_trace(ev) == ref_trace, \
                f"{app}: {tier} tier trace differs"

    @pytest.mark.parametrize("variant",
                             ("baseline",) + REVIVE_VARIANTS)
    def test_every_variant_bit_identical_across_tiers(self, variant):
        fps = {tier: run_tier("lu", variant, tier)[0] for tier in TIERS}
        assert fps["scalar"] == fps["reference"], variant
        assert fps["columnar"] == fps["reference"], variant


class TestTracefileRoundtrip:
    def test_recorded_trace_replays_identically_on_every_tier(
            self, tmp_path):
        """record -> replay round-trips under the columnar contract:
        a replayed trace drives each tier to the exact machine state
        the live generator does."""
        path = str(tmp_path / "lu.npz")
        record_trace(get_workload("lu", scale=SCALE, n_procs=NODES),
                     path)
        live_fp, _ = run_tier("lu", "cp_parity", "columnar")
        for tier in TIERS:
            machine = build_machine("cp_parity", tiny_config(),
                                    INTERVAL_NS,
                                    **tiny_revive_overrides(NODES))
            machine.attach_workload(TraceWorkload(path))
            set_tier(machine, tier)
            machine.run()
            assert fingerprint(machine) == live_fp, tier

    def test_replay_fast_forward_resumes_mid_chunk(self, tmp_path):
        """A snapshot taken mid-run of a trace-driven columnar machine
        restores into a fresh machine whose ``replay_stream`` fast-
        forward lands mid-chunk and continues bit-identically."""
        path = str(tmp_path / "fft.npz")
        record_trace(get_workload("fft", scale=SCALE, n_procs=NODES),
                     path)

        def trace_machine():
            machine = build_machine("cp_parity", tiny_config(),
                                    INTERVAL_NS,
                                    **tiny_revive_overrides(NODES))
            machine.attach_workload(TraceWorkload(path))
            set_tier(machine, "columnar")
            return machine

        reference = trace_machine()
        reference.run()
        final = fingerprint(reference)

        paused = trace_machine()
        paused.run(until=int(1.5 * INTERVAL_NS))
        image = pickle.dumps(paused.snapshot())
        fresh = trace_machine()
        fresh.restore(pickle.loads(image))
        fresh.run()
        assert fingerprint(fresh) == final


class TestSnapshotTierSwitch:
    @pytest.mark.parametrize("resume_tier", TIERS)
    def test_restore_continues_bit_identically_on_any_tier(
            self, resume_tier):
        """Snapshot/restore points are tier-independent: an image
        captured mid-run under the columnar engine resumes bit-
        identically on *any* tier — the strongest form of the batch-
        segmentation invariant."""
        reference, _ = run_tier("lu", "cp_parity", "reference")

        donor = build("lu", "cp_parity")
        set_tier(donor, "columnar")
        donor.run(until=int(1.5 * INTERVAL_NS))
        image = pickle.dumps(donor.snapshot())

        resumed = build("lu", "cp_parity")
        resumed.restore(pickle.loads(image))
        set_tier(resumed, resume_tier)
        resumed.run()
        assert fingerprint(resumed) == reference, resume_tier


class TestMemBatchReconciliation:
    def test_columnar_batches_reconcile_on_real_analog(self):
        """``mem.batch`` sums equal the cache counters bit-for-bit on
        a real Splash-2 analog under the columnar tier (the toy-
        workload version lives in test_mem_events.py)."""
        sink = RingBufferSink(capacity=1 << 20)
        machine = build("lu", "baseline", tracer=Tracer(sink))
        set_tier(machine, "columnar")
        machine.run()
        marker = [e["seq"] for e in sink.events()
                  if e["name"] == "sim.warmup_done"]
        assert len(marker) == 1
        steady = [e for e in sink.events()
                  if e["name"] == "mem.batch" and e["seq"] > marker[0]]
        assert steady

        def total(node, field):
            return sum(e[field] for e in steady if e["node"] == node)

        for node_id, node in enumerate(machine.nodes):
            assert total(node_id, "l1_hits") == node.hierarchy.l1.hits
            assert total(node_id, "l1_misses") == node.hierarchy.l1.misses
            assert total(node_id, "l2_hits") == node.hierarchy.l2.hits
            assert total(node_id, "l2_misses") == node.hierarchy.l2.misses
        assert sum(e["refs"] for e in steady) == machine.total_mem_refs()
