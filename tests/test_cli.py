"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_run_defaults(self):
        args = make_parser().parse_args(["run", "lu"])
        assert args.variant == "cp_parity"
        assert args.scale == 1.0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "doom"])

    def test_recover_lost_node(self):
        args = make_parser().parse_args(["recover", "lu",
                                         "--lost-node", "3"])
        assert args.lost_node == 3

    def test_trace_defaults(self):
        args = make_parser().parse_args(["trace", "lu"])
        assert args.out == "trace.jsonl"
        assert args.nodes == 4
        assert args.lost_node == 1
        assert args.trace is None

    def test_observability_flags_on_run(self):
        args = make_parser().parse_args(
            ["run", "lu", "--trace", "t.jsonl",
             "--trace-categories", "ckpt,recovery", "--profile"])
        assert args.trace == "t.jsonl"
        assert args.trace_categories == "ckpt,recovery"
        assert args.profile


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "radix" in out and "water-sp" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "4x4 torus" in out

    def test_run_small(self, capsys):
        assert main(["run", "lu", "--scale", "0.1",
                     "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "L2 miss rate" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "lu", "--scale", "0.05",
                     "--interval-us", "40"]) == 0
        out = capsys.readouterr().out
        assert "Cp10ms" in out and "Overhead" in out

    def test_sweep_small(self, capsys, tmp_path):
        out_json = tmp_path / "sweep.json"
        assert main(["sweep", "lu", "--variants", "baseline,cp_parity",
                     "--scale", "0.05", "--nodes", "4",
                     "--workers", "2", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 runs" in out and "lu" in out
        import json
        blob = json.loads(out_json.read_text())
        assert len(blob["results"]) == 2

    def test_sweep_serial_matches_parallel(self, capsys):
        assert main(["sweep", "lu", "--variants", "baseline,cp_parity",
                     "--scale", "0.05", "--nodes", "4", "--serial"]) == 0
        serial_out = capsys.readouterr().out
        assert "(serial)" in serial_out
        assert main(["sweep", "lu", "--variants", "baseline,cp_parity",
                     "--scale", "0.05", "--nodes", "4",
                     "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Same table body (only the mode/time header line may differ).
        assert serial_out.splitlines()[-1] == parallel_out.splitlines()[-1]

    def test_sweep_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "nosuchapp"])

    def test_recover_small(self, capsys):
        rc = main(["recover", "lu", "--scale", "0.6",
                   "--interval-us", "100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-exact" in out

    def test_recover_node_loss_small(self, capsys):
        rc = main(["recover", "lu", "--scale", "0.6",
                   "--interval-us", "100", "--lost-node", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "log rebuild" in out

    def test_recover_too_short(self, capsys):
        rc = main(["recover", "lu", "--scale", "0.02",
                   "--interval-us", "100000"])
        assert rc == 2

    def test_run_with_trace_and_profile(self, tmp_path, capsys):
        out_path = str(tmp_path / "run.jsonl")
        rc = main(["run", "lu", "--scale", "0.1", "--nodes", "4",
                   "--trace", out_path, "--trace-categories", "ckpt",
                   "--profile"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wall-clock profile" in out
        assert f"-> {out_path}" in out
        import json
        events = [json.loads(line)
                  for line in open(out_path, encoding="utf-8")]
        assert events and all(e["cat"] == "ckpt" for e in events)

    def test_unknown_trace_category_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown trace categories"):
            main(["run", "lu", "--scale", "0.1", "--nodes", "4",
                  "--trace", str(tmp_path / "x.jsonl"),
                  "--trace-categories", "bogus"])

    def test_trace_command_matches_recovery_result(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.jsonl")
        rc = main(["trace", "lu", "--out", out_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace breakdown matches RecoveryResult" in out
        assert "MISMATCH" not in out


class TestMonitoringCommands:
    def test_run_with_ledger_writes_manifest(self, tmp_path, capsys):
        ledger_path = str(tmp_path / "run.ledger.json")
        rc = main(["run", "lu", "--scale", "0.05", "--nodes", "4",
                   "--ledger", ledger_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"ledger: {ledger_path} (healthy)" in out
        import json
        manifest = json.loads(open(ledger_path, encoding="utf-8").read())
        assert manifest["app"] == "lu"
        assert manifest["variant"] == "cp_parity"
        assert manifest["healthy"]
        assert manifest["result"]["execution_time_ns"] > 0
        assert set(manifest["verdicts"]) == {
            "log_occupancy", "checkpoint_cadence", "traffic_rate",
            "recovery", "mem_traffic", "span_latency"}

    def test_sweep_trace_dir_then_report_and_lint(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        rc = main(["sweep", "lu", "--variants", "baseline,cp_parity",
                   "--scale", "0.05", "--nodes", "4", "--serial",
                   "--trace-dir", trace_dir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "traces + ledgers:" in out and "2/2 runs healthy" in out

        report_json = str(tmp_path / "report.json")
        rc = main(["report", trace_dir, "--json", report_json])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 8" in out and "lu__cp_parity" in out
        import json
        report = json.loads(open(report_json, encoding="utf-8").read())
        assert [run["name"] for run in report["runs"]] == \
            ["lu__baseline", "lu__cp_parity"]
        assert report["overhead_rows"][0]["app"] == "lu"

        import os
        traces = sorted(os.path.join(trace_dir, name)
                        for name in os.listdir(trace_dir)
                        if name.endswith(".jsonl"))
        rc = main(["trace-lint", *traces])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("schema-clean") == len(traces) == 2

    def test_latency_and_export_trace_roundtrip(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        assert main(["run", "lu", "--scale", "0.05", "--nodes", "4",
                     "--trace", trace]) == 0
        capsys.readouterr()

        # repro latency: percentile + attribution tables from spans.
        report_json = str(tmp_path / "lat.json")
        rc = main(["latency", trace, "--json", report_json])
        out = capsys.readouterr().out
        assert rc == 0
        assert "transaction latency" in out
        assert "critical-path attribution" in out
        assert "read_miss" in out and "p999" in out
        import json
        report = json.loads(open(report_json, encoding="utf-8").read())
        assert report["run"]["total_spans"] > 0
        assert "read_miss" in report["run"]["classes"]

        # repro export-trace: default out path, loadable JSON.
        rc = main(["export-trace", trace])
        out = capsys.readouterr().out
        assert rc == 0
        assert "perfetto" in out
        chrome = str(tmp_path / "run.chrome.json")
        assert f"in {chrome}" in out
        loaded = json.loads(open(chrome, encoding="utf-8").read())
        assert loaded["traceEvents"]
        phases = {e["ph"] for e in loaded["traceEvents"]}
        assert {"X", "i", "M"} <= phases

        # --spans-only --out: no instants, explicit path.
        spans_only = str(tmp_path / "spans.json")
        rc = main(["export-trace", trace, "--out", spans_only,
                   "--spans-only"])
        capsys.readouterr()
        assert rc == 0
        loaded = json.loads(open(spans_only, encoding="utf-8").read())
        assert all(e["ph"] in ("X", "M") for e in loaded["traceEvents"])

    def test_latency_missing_trace_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["latency", str(tmp_path / "nope.jsonl")])

    def test_export_trace_missing_trace_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace"):
            main(["export-trace", str(tmp_path / "nope.jsonl")])

    def test_trace_lint_flags_bad_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "seq": 0}\n')
        rc = main(["trace-lint", str(bad)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "missing envelope keys" in captured.err

    def test_unknown_sweep_trace_category_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown trace categories"):
            main(["sweep", "lu", "--variants", "baseline",
                  "--scale", "0.05", "--nodes", "4", "--serial",
                  "--trace-dir", str(tmp_path / "t"),
                  "--trace-categories", "bogus"])
