"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_run_defaults(self):
        args = make_parser().parse_args(["run", "lu"])
        assert args.variant == "cp_parity"
        assert args.scale == 1.0

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["run", "doom"])

    def test_recover_lost_node(self):
        args = make_parser().parse_args(["recover", "lu",
                                         "--lost-node", "3"])
        assert args.lost_node == 3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "radix" in out and "water-sp" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "4x4 torus" in out

    def test_run_small(self, capsys):
        assert main(["run", "lu", "--scale", "0.1",
                     "--variant", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "L2 miss rate" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "lu", "--scale", "0.05",
                     "--interval-us", "40"]) == 0
        out = capsys.readouterr().out
        assert "Cp10ms" in out and "Overhead" in out

    def test_recover_small(self, capsys):
        rc = main(["recover", "lu", "--scale", "0.6",
                   "--interval-us", "100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-exact" in out

    def test_recover_node_loss_small(self, capsys):
        rc = main(["recover", "lu", "--scale", "0.6",
                   "--interval-us", "100", "--lost-node", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "log rebuild" in out

    def test_recover_too_short(self, capsys):
        rc = main(["recover", "lu", "--scale", "0.02",
                   "--interval-us", "100000"])
        assert rc == 2
