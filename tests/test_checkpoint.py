"""Integration tests for global checkpoint establishment."""

import pytest

from conftest import ToyWorkload, build_tiny_machine, run_toy


@pytest.fixture
def machine():
    return run_toy(build_tiny_machine(), ToyWorkload(rounds=4))


class TestCheckpointing:
    def test_checkpoints_happen_periodically(self, machine):
        coord = machine.checkpointing
        assert coord.checkpoints_committed >= 2
        intervals = [b - a for a, b in zip(coord.commit_times,
                                           coord.commit_times[1:])]
        # Commits are at least an interval apart (plus checkpoint cost).
        assert all(iv >= coord.interval_ns for iv in intervals[1:])

    def test_epochs_advance_in_lockstep(self, machine):
        epochs = {log.current_epoch
                  for log in machine.revive.logs.values()}
        assert len(epochs) == 1
        assert epochs.pop() == machine.checkpointing.checkpoints_committed

    def test_caches_clean_after_commit(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=4))
        coord = machine.checkpointing
        machine.run(until=coord.interval_ns + 1)
        # Immediately after the first commit, no dirty lines anywhere.
        if coord.checkpoints_committed >= 1:
            commit = coord.commit_times[1]
            if machine.simulator.now <= commit + 100:
                for node in machine.nodes:
                    assert not node.hierarchy.dirty_lines()

    def test_l_bits_gang_cleared(self, machine):
        # After the final commit, only lines written since may be set;
        # at least verify the clearing happened at each commit by
        # checking counts stayed bounded by one epoch's writes.
        for log in machine.revive.logs.values():
            assert len(log.logged_lines) <= log.slots_used + 1

    def test_commit_records_on_every_node(self, machine):
        committed = machine.checkpointing.checkpoints_committed
        for node in machine.nodes:
            log = machine.revive.logs[node.node_id]
            records = log.find_commit_records(node.memory.read_line)
            assert records, f"node {node.node_id} has no commit records"
            assert max(r.value for r in records) == committed

    def test_log_reclamation_bounds_size(self, machine):
        for log in machine.revive.logs.values():
            # With keep_checkpoints=2, at most the last two epochs live.
            oldest_kept = min(log.epoch_start)
            assert oldest_kept >= log.current_epoch - 2

    def test_snapshots_recorded(self, machine):
        committed = machine.checkpointing.checkpoints_committed
        assert set(machine.snapshots) == set(range(committed + 1))

    def test_checkpoint_stats(self, machine):
        stats = machine.stats
        # Counters reset at warmup end, so the counter may lag the
        # commit count by the checkpoints that fell inside the warmup.
        assert 0 < stats.value("ckpt.count") <= \
            machine.checkpointing.checkpoints_committed
        assert stats.value("ckpt.dirty_lines_flushed") > 0
        assert stats.value("ckpt.total_ns") > 0

    def test_parity_consistent_throughout(self, machine):
        assert machine.revive.parity.check_all_parity() == []

    def test_memory_matches_snapshot_at_last_commit(self):
        """Right after a commit, memory IS the checkpoint state."""
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=4))
        coord = machine.checkpointing
        machine.run(until=coord.interval_ns + 1)
        assert coord.checkpoints_committed >= 1
        epoch = coord.checkpoints_committed
        mismatches = machine.verify_against_snapshot(epoch)
        assert mismatches == []

    def test_cpinf_never_checkpoints(self):
        machine = build_tiny_machine(checkpoint_interval_ns=None)
        run_toy(machine, ToyWorkload(rounds=2))
        assert machine.checkpointing is None
        for log in machine.revive.logs.values():
            assert log.current_epoch == 0
