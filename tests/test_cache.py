"""Unit tests for the set-associative cache and tag filter."""

import pytest

from repro.cache.cache import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    SetAssocCache,
    TagFilter,
    set_index,
    state_name,
)


def make_cache(size=4096, assoc=4, line=64):
    return SetAssocCache("t", size, assoc, line)


class TestGeometry:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache("t", 100, 4, 64)
        with pytest.raises(ValueError):
            TagFilter("t", 100, 4, 64)

    def test_n_sets(self):
        assert make_cache().n_sets == 16


class TestSetIndex:
    def test_within_range(self):
        for addr in range(0, 1 << 20, 4096 + 64):
            assert 0 <= set_index(addr, 64, 16) < 16

    def test_same_line_same_set(self):
        assert set_index(0x1000, 64, 16) == set_index(0x103f, 64, 16)

    def test_page_strided_allocation_spreads(self):
        """Every-other-page allocation (mirroring) must still use all sets."""
        used = {set_index(page * 8192 + line * 64, 64, 16)
                for page in range(64) for line in range(64)}
        assert len(used) == 16


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(0x40) is None
        c.insert(0x40, SHARED)
        line = c.lookup(0x40)
        assert line is not None and line.state == SHARED
        assert c.hits == 1 and c.misses == 1

    def test_peek_does_not_count(self):
        c = make_cache()
        c.insert(0x40, SHARED)
        c.peek(0x40)
        assert c.hits == 0 and c.misses == 0

    def test_lru_eviction_order(self):
        c = SetAssocCache("t", 2 * 64, 2, 64)   # 1 set, 2 ways
        c.insert(0x000, SHARED)
        c.insert(0x040, SHARED)
        c.lookup(0x000)                        # refresh the older line
        victim = c.insert(0x080, SHARED)
        assert victim is not None and victim.addr == 0x040

    def test_insert_overwrites_in_place(self):
        c = make_cache()
        c.insert(0x40, SHARED)
        victim = c.insert(0x40, MODIFIED, value=9)
        assert victim is None
        assert c.peek(0x40).state == MODIFIED
        assert c.peek(0x40).value == 9

    def test_associativity_bound(self):
        c = make_cache(assoc=4)
        for i in range(1000):
            c.insert(i * 64, SHARED)
        # No set may ever exceed its associativity.
        assert all(len(s) <= 4 for s in c._sets)
        assert sum(1 for _ in c.resident_lines()) <= c.n_sets * 4


class TestStatesAndDirty:
    def test_state_names(self):
        assert state_name(INVALID) == "I"
        assert state_name(MODIFIED) == "M"

    def test_dirty_lines(self):
        c = make_cache()
        c.insert(0x40, MODIFIED, value=1)
        c.insert(0x80, SHARED)
        c.insert(0xc0, EXCLUSIVE)
        dirty = list(c.dirty_lines())
        assert [d.addr for d in dirty] == [0x40]
        assert dirty[0].dirty

    def test_invalidate_returns_line(self):
        c = make_cache()
        c.insert(0x40, MODIFIED, value=7)
        line = c.invalidate(0x40)
        assert line.value == 7
        assert c.peek(0x40) is None
        assert c.invalidate(0x40) is None

    def test_clear(self):
        c = make_cache()
        c.insert(0x40, MODIFIED)
        c.clear()
        assert c.resident_count() == 0

    def test_miss_rate(self):
        c = make_cache()
        c.lookup(0x40)
        c.insert(0x40, SHARED)
        c.lookup(0x40)
        assert c.miss_rate == pytest.approx(0.5)
        assert make_cache().miss_rate == 0.0


class TestTagFilter:
    def test_touch_miss_then_hit(self):
        f = TagFilter("t", 1024, 4, 64)
        assert not f.touch(0x40)
        assert f.touch(0x40)
        assert f.hits == 1 and f.misses == 1

    def test_capacity_eviction(self):
        f = TagFilter("t", 2 * 64, 2, 64)
        f.touch(0x000)
        f.touch(0x040)
        f.touch(0x080)                # evicts LRU 0x000
        assert not f.touch(0x000)

    def test_invalidate_and_clear(self):
        f = TagFilter("t", 1024, 4, 64)
        f.touch(0x40)
        f.invalidate(0x40)
        assert not f.touch(0x40)
        f.clear()
        assert not f.touch(0x40)
