"""Edge cases: recovery interacting with a wrapped log ring.

After enough checkpoints, the log ring wraps and live entries straddle
the wrap point (sequence numbers wrap modulo 2^16 as well).  Node-loss
recovery must still decode the rebuilt region correctly — stale valid
markers from reclaimed epochs filtered, wrapped sequence order
restored.
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager


def build_wrapping_machine():
    """A machine whose tiny log region wraps several times."""
    # 32 KB region -> 36 blocks -> 288 slots per node; the toy
    # workload writes ~110 distinct lines per node per epoch (two
    # epochs retained), so the ring wraps after a few checkpoints
    # without overflowing.
    machine = build_tiny_machine(log_bytes_per_node=32 * 1024,
                                 checkpoint_interval_ns=40_000)
    machine.attach_workload(ToyWorkload(rounds=10, refs_per_round=1200,
                                        private_lines=80,
                                        shared_lines=128))
    return machine


def run_past(machine, commits):
    coord = machine.checkpointing
    horizon = (commits + 1) * coord.interval_ns
    while coord.checkpoints_committed < commits \
            and not machine.all_finished:
        machine.run(until=horizon)
        horizon += coord.interval_ns
    assert coord.checkpoints_committed >= commits
    return machine


class TestWrappedLog:
    def test_ring_actually_wraps(self):
        machine = run_past(build_wrapping_machine(), 5)
        wrapped = [log for log in machine.revive.logs.values()
                   if log.head > log.capacity_slots]
        assert wrapped, "test premise broken: no log wrapped"

    def test_transient_recovery_after_wrap(self):
        machine = run_past(build_wrapping_machine(), 5)
        committed = machine.checkpointing.checkpoints_committed
        detect = machine.simulator.now
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(
            detect_time=detect, target_epoch=committed - 1)
        assert machine.verify_against_snapshot(result.target_epoch) == []

    @pytest.mark.parametrize("lost", [0, 3])
    def test_node_loss_recovery_after_wrap(self, lost):
        machine = run_past(build_wrapping_machine(), 5)
        committed = machine.checkpointing.checkpoints_committed
        detect = machine.simulator.now
        NodeLossFault(lost).apply(machine)
        result = RecoveryManager(machine).recover(
            detect_time=detect, lost_node=lost,
            target_epoch=committed - 1)
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []
        # The rebuilt log was decoded across the wrap point.
        assert result.entries_undone > 0


class TestEightNodeMachine:
    def test_end_to_end_with_7_plus_1_parity(self):
        """The paper's 7+1 groups on an 8-node machine, full cycle."""
        machine = build_tiny_machine(n_nodes=8, parity_group_size=7)
        machine.attach_workload(ToyWorkload(n_procs=8, rounds=5,
                                            refs_per_round=1000))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = machine.simulator.now
        NodeLossFault(6).apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect)
        assert machine.verify_against_snapshot(result.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []
        assert machine.geometry.parity_fraction() == pytest.approx(0.125)
