"""Unit tests for the experiment drivers (lightweight paths only).

The heavy drivers (Figure 8's 60 runs, Figure 12's 12 recoveries) are
exercised by the benchmark harness; here we test the aggregation and
the analytic pieces, plus one scaled-down end-to-end driver run.
"""

import pytest

from repro.harness import experiments as E
from repro.harness.runner import VARIANTS
from repro.machine.config import MachineConfig


class TestTable3:
    def test_paper_config_values(self):
        row = E.table3_architecture(MachineConfig.paper())
        assert row["processors"] == 16
        assert "16KB" in row["l1"]
        assert "4x4 torus" in row["network"]

    def test_latency_composition(self):
        row = E.table3_architecture(MachineConfig.paper())
        assert row["neighbor_mem_ns"] > row["local_mem_ns"]


class TestTable1Reference:
    def test_paper_constants(self):
        assert E.TABLE1_PAPER["wb_logged"] == \
            {"accesses": 3, "lines": 1, "messages": 2}
        assert E.TABLE1_PAPER["rdx_unlogged"] == \
            {"accesses": 4, "lines": 2, "messages": 2}
        assert E.TABLE1_PAPER["wb_unlogged"] == \
            {"accesses": 8, "lines": 3, "messages": 4}


class TestFig8Aggregation:
    def test_summary_means(self):
        rows = [
            {"app": "a", "cp_parity": 0.1, "cpinf_parity": 0.02,
             "cp_mirroring": 0.05, "cpinf_mirroring": 0.01},
            {"app": "b", "cp_parity": 0.3, "cpinf_parity": 0.04,
             "cp_mirroring": 0.15, "cpinf_mirroring": 0.03},
        ]
        summary = E.fig8_summary(rows)
        assert summary["cp_parity"] == pytest.approx(0.2)
        assert summary["cpinf_mirroring"] == pytest.approx(0.02)
        assert set(summary) == set(VARIANTS[1:])


class TestAvailabilityAnalysis:
    def test_headline(self):
        out = E.availability_analysis(820.0, errors_per_day=1.0)
        assert out["availability"] > 0.99999
        assert out["downtime_s_per_day"] == pytest.approx(0.82)

    def test_scales_with_error_rate(self):
        one = E.availability_analysis(400.0, 1.0)
        many = E.availability_analysis(400.0, 10.0)
        assert many["availability"] < one["availability"]


class TestRecoveryExperimentScaling:
    def test_scaled_unavailability(self):
        from repro.core.recovery import RecoveryResult

        result = RecoveryResult(
            target_epoch=1, lost_node=3, detect_time=0,
            lost_work_ns=450_000, phase1_ns=50_000_000,
            phase2_ns=100_000, phase3_ns=50_000,
            phase4_background_ns=0)
        exp = E.RecoveryExperiment("x", 3, result, interval_ns=250_000)
        # (450k + 150k) * (100ms / 250us) = 240ms, plus fixed 50ms.
        assert exp.unavailable_ms_scaled == pytest.approx(290.0)


class TestEndToEndDriver:
    def test_fig12_driver_small(self):
        """One full Figure 12 recovery at a reduced scale."""
        exps = E.fig12_recovery(apps=["lu"], scale=0.6, interval_ns=100_000)
        assert len(exps) == 1
        result = exps[0].result
        assert result.lost_node == 3
        assert result.entries_undone > 0
        assert result.target_epoch == 1

    def test_fig12_transient_variant(self):
        exps = E.fig12_recovery(apps=["lu"], scale=0.6, interval_ns=100_000, lost_node=None)
        result = exps[0].result
        assert result.lost_node is None
        assert result.phase2_ns == 0


class TestTrafficDrivers:
    def test_fig9_and_fig10_single_app(self):
        rows9 = E.fig9_network_traffic(apps=["lu"], scale=0.3,
                                       interval_ns=100_000)
        rows10 = E.fig10_memory_traffic(apps=["lu"], scale=0.3,
                                        interval_ns=100_000)
        assert rows9[0]["app"] == "lu" and rows10[0]["app"] == "lu"
        assert rows9[0]["PAR"] > 0
        assert rows10[0]["LOG"] > 0

    def test_fig11_single_app(self):
        rows = E.fig11_log_size(apps=["lu"], scale=0.3,
                                interval_ns=100_000)
        assert rows[0]["max_log_bytes"] > 0
        assert rows[0]["checkpoints"] >= 1

    def test_fig8_single_app(self):
        rows = E.fig8_overhead(apps=["lu"], scale=0.2,
                               interval_ns=60_000)
        row = rows[0]
        assert row["app"] == "lu"
        assert all(variant in row for variant in
                   ("cp_parity", "cpinf_parity", "cp_mirroring",
                    "cpinf_mirroring"))
        assert row["cp_parity"] > row["cpinf_parity"] - 0.02
