"""End-to-end integration scenarios tying several mechanisms together."""

import pytest

from conftest import ToyWorkload, build_tiny_machine, run_toy

from repro.core.faults import NodeLossFault, TransientSystemFault
from repro.core.recovery import RecoveryManager


class TestSharingWritebackLogging:
    def test_remote_read_of_dirty_line_logs_preimage(self):
        """A 3-hop read forces a sharing write-back; the home must log
        the checkpoint content before memory is overwritten."""
        machine = build_tiny_machine()
        space = machine.addr_space
        addr = space.translate_line(1 << 32, 1)
        home = machine.nodes[1]
        # Seed checkpoint content through the ReVive path.
        machine.revive.on_memory_write(1, addr, 1234, at=0,
                                       category="ExeWB")
        machine.revive.logs[1].gang_clear_logged()
        # Node 0 dirties the line; node 2 then reads it.
        machine.protocol.write(0, addr, at=1000, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 5678)
        machine.protocol.read(2, addr, at=2000)
        assert home.memory.read_line(addr) == 5678
        entries = machine.revive.logs[1].decode_region(home.memory.read_line)
        assert any(e.addr == addr and e.value == 1234 for e in entries
                   if e.is_data)
        assert machine.revive.parity.check_all_parity() == []

    def test_store_intent_logs_before_dirty_transfer(self):
        """GETX on a remote-dirty line: memory is never written, but the
        home already logged the checkpoint value at the first intent."""
        machine = build_tiny_machine()
        addr = machine.addr_space.translate_line(1 << 32, 1)
        machine.revive.on_memory_write(1, addr, 77, at=0, category="ExeWB")
        machine.revive.logs[1].gang_clear_logged()
        machine.protocol.write(0, addr, at=1000, upgrade=False)
        machine.nodes[0].hierarchy.write_value(addr, 88)
        machine.protocol.write(2, addr, at=2000, upgrade=False)  # transfer
        assert machine.nodes[1].memory.read_line(addr) == 77     # stale ok
        log = machine.revive.logs[1]
        assert log.is_logged(addr)


class TestRepeatedRecovery:
    def test_two_faults_in_one_run(self):
        """Recover, resume bookkeeping, fault again, recover again."""
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=8, refs_per_round=1200))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = machine.simulator.now
        TransientSystemFault().apply(machine)
        first = RecoveryManager(machine).recover(detect_time=detect)
        assert machine.verify_against_snapshot(first.target_epoch) == []

        # A second, node-loss fault against the rolled-back state.
        NodeLossFault(2).apply(machine)
        second = RecoveryManager(machine).recover(
            detect_time=detect + first.unavailable_ns, lost_node=2)
        assert second.target_epoch <= first.target_epoch
        assert machine.verify_against_snapshot(second.target_epoch) == []
        assert machine.revive.parity.check_all_parity() == []

    def test_double_node_loss_is_rejected(self):
        machine = run_toy(build_tiny_machine(), until=60_000)
        NodeLossFault(0).apply(machine)
        machine.processors[1].kill()
        machine.nodes[1].memory.destroy()
        with pytest.raises(RuntimeError, match="single-node"):
            RecoveryManager(machine).recover(detect_time=60_000)


class TestExecutionAfterRecovery:
    def test_machine_accepts_new_transactions_after_rollback(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=6, refs_per_round=1200))
        coord = machine.checkpointing
        horizon = 3 * coord.interval_ns
        while coord.checkpoints_committed < 2 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        detect = machine.simulator.now
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  target_epoch=1)
        # Post-recovery, the protocol serves fresh traffic correctly.
        addr = machine.addr_space.translate_line((1 << 33) + 4096, 0)
        done = machine.protocol.read(0, addr, result.resume_time)
        assert done > result.resume_time
        machine.protocol.write(2, addr, done + 100, upgrade=False)
        machine.nodes[2].hierarchy.write_value(addr, 999)
        assert machine.check_invariants() == []
