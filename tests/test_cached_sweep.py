"""Cached sweeps: ``run_sweep(cache_dir=...)`` correctness.

A deterministic simulator makes memoization *correct*, not merely
fast — these tests pin that a warm-cache sweep returns results equal
to a cold one, that a traced warm sweep replays byte-identical trace
and ledger files into ``trace_dir`` (the acceptance oracle of
docs/SERVING.md), that result-only entries are upgraded rather than
served to traced sweeps, and that a corrupted entry silently falls
back to recompute.
"""

import filecmp
import os
from dataclasses import asdict

import pytest

from repro.harness.parallel import run_sweep
from repro.harness.store import ResultStore, job_digest, store_key
from repro.machine.config import MachineConfig

APPS = ["lu"]
VARIANTS = ["baseline", "cp_parity"]
KW = dict(scale=0.05, n_procs=4, machine_config=MachineConfig.tiny(4),
          parity_group_size=3, log_bytes_per_node=64 * 1024)


def _sweep(cache_dir, **overrides):
    kwargs = dict(KW, serial=True, cache_dir=str(cache_dir))
    kwargs.update(overrides)
    return run_sweep(APPS, VARIANTS, **kwargs)


def _comparable(sweep):
    """Everything that must not depend on where the results came from."""
    return {key: asdict(result) for key, result in sweep.results.items()}


def _trace_files(trace_dir):
    return sorted(os.listdir(trace_dir))


class TestUntracedCaching:
    def test_warm_sweep_is_all_hits_and_equal(self, tmp_path):
        cache = tmp_path / "cache"
        cold = _sweep(cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        assert cold.cache_dir == str(cache)
        warm = _sweep(cache)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert _comparable(warm) == _comparable(cold)
        assert warm.job_order == cold.job_order
        assert warm.overhead_rows() == cold.overhead_rows()

    def test_uncached_sweep_reports_no_cache(self, tmp_path):
        sweep = run_sweep(APPS, VARIANTS, serial=True, **KW)
        assert (sweep.cache_hits, sweep.cache_misses) == (0, 0)
        assert sweep.cache_dir is None

    def test_cached_results_survive_a_parallel_warm_sweep(self, tmp_path):
        cache = tmp_path / "cache"
        cold = _sweep(cache)
        warm = _sweep(cache, serial=False, workers=2)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert _comparable(warm) == _comparable(cold)

    def test_keys_on_disk_match_the_job_digests(self, tmp_path):
        from repro.harness.parallel import sweep_jobs

        cache = tmp_path / "cache"
        sweep = _sweep(cache)
        expected = {store_key(job_digest(app, variant, kwargs))
                    for app, variant, kwargs in sweep_jobs(
                        APPS, VARIANTS, **KW)}
        store = ResultStore(str(cache))
        assert set(store.keys()) == expected
        assert len(expected) == len(sweep.job_order)


class TestTracedCaching:
    def test_warm_traced_sweep_replays_identical_bytes(self, tmp_path):
        cache = tmp_path / "cache"
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        cold = _sweep(cache, trace_dir=str(cold_dir))
        assert cold.cache_misses == 2
        warm = _sweep(cache, trace_dir=str(warm_dir))
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        files = _trace_files(cold_dir)
        assert files == _trace_files(warm_dir)
        assert "lu__cp_parity.jsonl" in files
        assert "lu__cp_parity.ledger.json" in files
        assert "sweep.ledger.json" in files
        match, mismatch, errors = filecmp.cmpfiles(
            str(cold_dir), str(warm_dir), files, shallow=False)
        assert (sorted(match), mismatch, errors) == (files, [], [])
        assert warm.ledgers == cold.ledgers

    def test_traced_and_untraced_entries_are_distinct(self, tmp_path):
        """A category-filtered trace must not be served the full one."""
        cache = tmp_path / "cache"
        _sweep(cache, trace_dir=str(tmp_path / "full"))
        filtered = _sweep(cache, trace_dir=str(tmp_path / "coh"),
                          trace_categories=["coh"])
        # Different store key (trace_categories folds in): all misses.
        assert filtered.cache_misses == 2

    def test_untraced_entry_upgraded_by_traced_sweep(self, tmp_path):
        cache = tmp_path / "cache"
        cold = _sweep(cache)                     # result-only entries
        traced = _sweep(cache, trace_dir=str(tmp_path / "t1"))
        # Result-only entries cannot satisfy a traced sweep: recompute
        # (and upgrade the entries in place).
        assert (traced.cache_hits, traced.cache_misses) == (0, 2)
        assert _comparable(traced) == _comparable(cold)
        again = _sweep(cache, trace_dir=str(tmp_path / "t2"))
        assert (again.cache_hits, again.cache_misses) == (2, 0)
        # And the upgraded entry still serves untraced sweeps.
        untraced = _sweep(cache)
        assert (untraced.cache_hits, untraced.cache_misses) == (2, 0)
        assert _comparable(untraced) == _comparable(cold)

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        cache = tmp_path / "cache"
        cold = _sweep(cache)
        # Tamper with every stored entry payload.
        objects = cache / "objects"
        tampered = 0
        for shard in objects.iterdir():
            for entry_dir in shard.iterdir():
                entry = entry_dir / "entry.json"
                entry.write_text(entry.read_text()[:-10])
                tampered += 1
        assert tampered == 2
        warm = _sweep(cache)
        assert (warm.cache_hits, warm.cache_misses) == (0, 2)
        assert _comparable(warm) == _comparable(cold)
        healed = _sweep(cache)
        assert (healed.cache_hits, healed.cache_misses) == (2, 0)


class TestValidation:
    def test_zero_workers_still_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_sweep(APPS, VARIANTS, workers=0,
                      cache_dir=str(tmp_path / "cache"), **KW)

    def test_bad_cache_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_sweep(APPS, VARIANTS, serial=True,
                      cache_dir=str(tmp_path / "cache"),
                      cache_max_bytes=0, **KW)
