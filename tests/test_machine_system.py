"""Unit/integration tests for machine assembly and bookkeeping."""

import pytest

from conftest import ToyWorkload, build_tiny_machine, run_toy

from repro.machine.config import MachineConfig
from repro.machine.system import Machine


class TestAssembly:
    def test_baseline_has_no_revive_parts(self):
        machine = build_tiny_machine(revive=False)
        assert machine.revive is None
        assert machine.checkpointing is None
        assert not machine.geometry.enabled
        assert machine.log_region_pages(0) == []

    def test_revive_machine_reserves_log_region(self):
        machine = build_tiny_machine()
        pages = machine.log_region_pages(0)
        expected_pages = -(-machine.revive_config.log_bytes_per_node
                           // machine.config.page_size)
        assert len(pages) == expected_pages
        lines = machine.log_region_lines(0)
        assert len(lines) == expected_pages * machine.config.lines_per_page

    def test_context_lines_are_reserved_and_local(self):
        machine = build_tiny_machine()
        for node in range(machine.config.n_nodes):
            line = machine.context_line(node)
            assert machine.addr_space.node_of(line) == node
            assert machine.context_lines_of(node) == [line]

    def test_reserved_pages_include_system_and_log(self):
        machine = build_tiny_machine()
        reserved = machine.reserved_pages_of(0)
        assert reserved[0] == machine.system_page(0)
        assert reserved[1:] == machine.log_region_pages(0)

    def test_workload_attach_validation(self):
        machine = build_tiny_machine()

        class TooWide:
            n_procs = 99
            instructions_per_ref = 1.0

            def stream_for(self, p):
                return iter(())

        with pytest.raises(ValueError):
            machine.attach_workload(TooWide())

    def test_double_attach_rejected(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload())
        with pytest.raises(RuntimeError):
            machine.attach_workload(ToyWorkload())


class TestRunBookkeeping:
    def test_store_values_are_unique(self):
        machine = build_tiny_machine(revive=False)
        values = [machine.next_store_value() for _ in range(100)]
        assert len(set(values)) == 100

    def test_execution_time_tracks_slowest(self):
        machine = run_toy(build_tiny_machine(revive=False))
        assert machine.all_finished
        assert machine.execution_time == max(
            p.finish_time for p in machine.processors)

    def test_steady_time_excludes_warmup(self):
        machine = run_toy(build_tiny_machine(revive=False))
        assert 0 < machine.steady_execution_time < machine.execution_time

    def test_total_mem_refs(self):
        machine = run_toy(build_tiny_machine(revive=False),
                          ToyWorkload(rounds=2, refs_per_round=500))
        # Post-warmup-reset refs only: rounds * refs per proc * procs.
        assert machine.total_mem_refs() == 2 * 500 * 4


class TestBarrierBookkeeping:
    def test_barrier_release_after_all_arrive(self):
        machine = build_tiny_machine(revive=False)
        machine.attach_workload(ToyWorkload())   # registers 4 procs
        assert machine.barrier_arrive(0, 0, 100) is None
        assert machine.barrier_arrive(0, 1, 200) is None
        assert machine.barrier_arrive(0, 2, 50) is None
        release = machine.barrier_arrive(0, 3, 400)
        assert release == 400 + machine.config.barrier_ns
        assert machine.barrier_release_time(0) == release

    def test_unknown_barrier(self):
        machine = build_tiny_machine(revive=False)
        assert machine.barrier_release_time(7) is None


class TestSnapshots:
    def test_snapshot_roundtrip(self):
        machine = run_toy(build_tiny_machine())
        committed = machine.checkpointing.checkpoints_committed
        assert committed in machine.snapshots
        with pytest.raises(KeyError):
            machine.verify_against_snapshot(committed + 10)

    def test_truncate_history(self):
        machine = run_toy(build_tiny_machine())
        committed = machine.checkpointing.checkpoints_committed
        assert committed >= 2
        machine.truncate_checkpoint_history(1)
        assert len(machine.checkpointing.commit_times) == 2
        assert all(e <= 1 for e in machine.snapshots)

    def test_commit_time_of_epoch_zero(self):
        machine = build_tiny_machine(revive=False)
        assert machine.commit_time_of_epoch(0) == 0
