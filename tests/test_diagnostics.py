"""Tests for the machine-wide diagnostics API."""

from conftest import ToyWorkload, build_tiny_machine, run_toy

from repro.cache.cache import MODIFIED, SHARED


class TestCheckInvariants:
    def test_clean_machine(self):
        machine = run_toy(build_tiny_machine())
        assert machine.check_invariants() == []

    def test_baseline_machine(self):
        machine = run_toy(build_tiny_machine(revive=False))
        assert machine.check_invariants() == []

    def test_detects_double_writer(self):
        machine = build_tiny_machine(revive=False)
        addr = machine.addr_space.translate_line(1 << 32, 0)
        machine.protocol.read(0, addr, 0)
        machine.nodes[0].hierarchy.l2.peek(addr).state = MODIFIED
        machine.nodes[1].hierarchy.fill(addr, MODIFIED, value=1)
        violations = machine.check_invariants()
        assert any("multiple dirty" in v or "exclusive" in v
                   for v in violations)

    def test_detects_parity_corruption(self):
        machine = run_toy(build_tiny_machine())
        addr = machine.addr_space.translate_line(1 << 32, 0)
        home = machine.nodes[machine.addr_space.node_of(addr)]
        home.memory.write_line(addr, 0xbad)     # bypass parity path
        assert any("parity" in v for v in machine.check_invariants())

    def test_detects_cache_outside_sharers(self):
        machine = build_tiny_machine(revive=False)
        addr = machine.addr_space.translate_line(1 << 32, 0)
        machine.protocol.read(0, addr, 0)
        machine.protocol.read(1, addr, 100)       # directory-shared {0,1}
        machine.nodes[2].hierarchy.fill(addr, SHARED, value=0)
        assert any("sharer set" in v for v in machine.check_invariants())


class TestUtilizationReport:
    def test_report_shape_and_bounds(self):
        machine = run_toy(build_tiny_machine(),
                          ToyWorkload(rounds=2, refs_per_round=800))
        report = machine.utilization_report()
        assert set(report) == {"memory_bus_mean", "memory_bus_max",
                               "directory_mean", "network_links_mean"}
        for value in report.values():
            assert 0.0 <= value <= 1.0
        assert report["memory_bus_max"] >= report["memory_bus_mean"]
        assert report["memory_bus_mean"] > 0.0

    def test_revive_raises_memory_utilization(self):
        base = run_toy(build_tiny_machine(revive=False),
                       ToyWorkload(rounds=2, refs_per_round=800))
        revive = run_toy(build_tiny_machine(),
                         ToyWorkload(rounds=2, refs_per_round=800))
        assert revive.utilization_report()["memory_bus_mean"] \
            > base.utilization_report()["memory_bus_mean"]
