"""Property test: the output-commit invariants under random schedules.

Whatever interleaving of output writes, commits, and rollbacks occurs:

* a record is released at most once, and only by a commit that follows
  its buffering;
* released history only ever grows (rollbacks never retract it);
* after a rollback, nothing buffered since the last commit survives.
"""

from hypothesis import given, settings, strategies as st

from conftest import build_tiny_machine


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(["out0", "out1", "out3", "commit",
                                 "rollback"]),
                min_size=1, max_size=60))
def test_output_commit_invariants(schedule):
    machine = build_tiny_machine(io_buffer_pages=2,
                                 log_bytes_per_node=64 * 1024)
    io = machine.io_manager
    payload = 0
    unreleased_model = []        # payloads buffered since last commit
    released_model = []
    t = 0

    for step in schedule:
        t += 100
        if step.startswith("out"):
            node = int(step[3])
            payload += 1
            io.write_output(node, port=1, payload=payload, at=t)
            unreleased_model.append(payload)
        elif step == "commit":
            newly = io.on_commit(committed_epoch=0)
            assert sorted(r.payload for r in newly) \
                == sorted(unreleased_model)
            released_model.extend(sorted(r.payload for r in newly))
            unreleased_model = []
        else:
            io.on_rollback(target_epoch=0)
            unreleased_model = []

        pending = sorted(r.payload for r in io.pending_outputs())
        assert pending == sorted(unreleased_model)
        # Released history is append-only and duplicate-free.
        got_released = [r.payload for r in io.released]
        assert len(got_released) == len(set(got_released))
        assert sorted(got_released) == sorted(released_model)
