"""Edge-behaviour tests: empty machines, degenerate workloads, limits."""

import numpy as np
import pytest

from conftest import build_tiny_machine

from repro.machine.config import MachineConfig
from repro.machine.system import Machine


class ChunkListWorkload:
    instructions_per_ref = 1.0

    def __init__(self, streams):
        self.streams = streams
        self.n_procs = len(streams)
        self.name = "chunks"

    def stream_for(self, proc_id):
        return iter(self.streams[proc_id])


class TestDegenerateRuns:
    def test_run_without_workload_is_a_noop(self):
        machine = build_tiny_machine()
        assert machine.run() == 0
        assert machine.execution_time == 0
        assert machine.all_finished      # vacuously: no processors

    def test_empty_stream_processor_retires_immediately(self):
        machine = build_tiny_machine(revive=False)
        machine.attach_workload(ChunkListWorkload([[]]))
        machine.run()
        assert machine.processors[0].finished
        assert machine.processors[0].mem_refs == 0

    def test_barrier_first_chunk(self):
        machine = build_tiny_machine(revive=False)
        ops = ("ops", np.ones(4, dtype=np.int64),
               np.arange(4, dtype=np.int64) * 64 + (1 << 30),
               np.zeros(4, dtype=bool))
        machine.attach_workload(ChunkListWorkload(
            [[("barrier",), ops], [("barrier",)]]))
        machine.run()
        assert machine.all_finished

    def test_single_node_machine(self):
        config = MachineConfig.tiny(1)
        machine = Machine(config, None)
        ops = ("ops", np.ones(32, dtype=np.int64),
               np.arange(32, dtype=np.int64) * 64 + (1 << 30),
               np.ones(32, dtype=bool))
        machine.attach_workload(ChunkListWorkload([[ops]]))
        machine.run()
        assert machine.all_finished
        assert machine.total_mem_refs() == 32

    def test_checkpoint_with_no_dirty_lines(self):
        """A checkpoint firing before any write still commits cleanly."""
        machine = build_tiny_machine(checkpoint_interval_ns=1_000)
        ops = ("ops", np.full(64, 200, dtype=np.int64),
               np.arange(64, dtype=np.int64) * 64 + (1 << 30),
               np.zeros(64, dtype=bool))
        machine.attach_workload(ChunkListWorkload(
            [[ops] for _ in range(4)]))
        machine.run(until=4_000)
        assert machine.checkpointing.checkpoints_committed >= 1
        assert machine.revive.parity.check_all_parity() == []


class TestLimits:
    def test_checkpoint_interval_validation(self):
        from repro.core.checkpoint import CheckpointCoordinator

        machine = build_tiny_machine()
        with pytest.raises(ValueError):
            CheckpointCoordinator(machine, interval_ns=0)

    def test_huge_store_values_roundtrip_through_parity(self):
        machine = build_tiny_machine()
        line = machine.addr_space.translate_line(1 << 33, 0)
        big = (1 << 512) - 1
        machine.revive.on_memory_write(0, line, big, at=0,
                                       category="ExeWB")
        assert machine.nodes[0].memory.read_line(line) == big
        assert machine.revive.parity.check_all_parity() == []
        assert machine.revive.parity.reconstruct_line(line) == big
