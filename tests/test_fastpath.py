"""Fast path vs reference loop: behavioural equivalence.

``Processor._run_batch`` inlines translation, L1/L2 probing, and the
hit-path store into one bound-local loop; the original layered loop is
kept as ``_run_batch_reference``.  These tests run the same workload
through both and require *bit-identical* machines afterwards: times,
reference counts, every cache counter, memory contents, logs and
checkpoint history.  Any divergence is a fast-path bug by definition.
"""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.cpu.processor import Processor


def _run(fastpath: bool, revive: bool = True, rounds: int = 4,
         **revive_overrides):
    machine = build_tiny_machine(revive=revive, **revive_overrides)
    machine.attach_workload(ToyWorkload(rounds=rounds))
    for proc in machine.processors:
        proc.fastpath = fastpath
    machine.run()
    return machine


def _fingerprint(machine):
    """Everything observable that the two paths must agree on."""
    fp = {
        "times": [p.time for p in machine.processors],
        "finish": [p.finish_time for p in machine.processors],
        "refs": [p.mem_refs for p in machine.processors],
        "activations": machine.simulator.activations,
        "now": machine.simulator.now,
        "store_counter": machine._store_counter,
        "memory": [dict(n.memory._lines) for n in machine.nodes],
        "l1": [(n.hierarchy.l1.hits, n.hierarchy.l1.misses)
               for n in machine.nodes],
        "l2": [(n.hierarchy.l2.hits, n.hierarchy.l2.misses)
               for n in machine.nodes],
        "silent": [n.hierarchy.silent_upgrades for n in machine.nodes],
        "l2_lines": [sorted((line.addr, line.state, line.value)
                            for line in n.hierarchy.l2.resident_lines())
                     for n in machine.nodes],
    }
    if machine.revive is not None:
        fp["log_bytes"] = {n: log.bytes_used
                           for n, log in machine.revive.logs.items()}
        fp["checkpoints"] = machine.checkpointing.checkpoints_committed
        fp["commit_times"] = list(machine.checkpointing.commit_times)
    return fp


class TestEquivalence:
    @pytest.mark.parametrize("revive", [False, True])
    def test_bit_identical_machines(self, revive):
        fast = _run(True, revive=revive)
        slow = _run(False, revive=revive)
        assert all(p.fastpath for p in fast.processors)
        assert not any(p.fastpath for p in slow.processors)
        assert _fingerprint(fast) == _fingerprint(slow)

    def test_bit_identical_under_mirroring(self):
        fast = _run(True, parity_group_size=1)
        slow = _run(False, parity_group_size=1)
        assert _fingerprint(fast) == _fingerprint(slow)

    def test_snapshots_identical(self):
        fast = _run(True)
        slow = _run(False)
        assert fast.snapshots.keys() == slow.snapshots.keys()
        assert fast.snapshots == slow.snapshots


class TestFallback:
    def test_env_flag_disables_fastpath(self, monkeypatch):
        import repro.cpu.processor as processor_module
        monkeypatch.setattr(processor_module, "FASTPATH_DEFAULT", False)
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=1))
        assert not any(p.fastpath for p in machine.processors)
        machine.run()
        assert all(p.mem_refs > 0 for p in machine.processors
                   if not p.killed)

    def test_fastpath_binding_is_lazy_and_cached(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=1))
        proc = machine.processors[0]
        assert proc._batch_fn is None
        assert proc._columnar_fn is None
        machine.run()
        if proc.columnar:
            assert proc._columnar_fn is not None
        elif proc.fastpath:
            assert proc._batch_fn is not None

    def test_processor_slots(self):
        machine = build_tiny_machine()
        machine.attach_workload(ToyWorkload(rounds=1))
        proc = machine.processors[0]
        assert isinstance(proc, Processor)
        with pytest.raises(AttributeError):
            proc.no_such_attribute = 1
