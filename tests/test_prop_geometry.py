"""Property-based tests for parity geometries (plain and hybrid)."""

from hypothesis import given, settings, strategies as st

from repro.machine.config import MachineConfig
from repro.memory.layout import HybridGeometry, ParityGeometry


def geometries(n_nodes, group, mirrored):
    cfg = MachineConfig.tiny(n_nodes)
    if mirrored is None:
        return cfg, ParityGeometry(cfg, group)
    return cfg, HybridGeometry(cfg, group,
                               mirrored_stripes=mirrored)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from([(4, 1), (4, 3), (8, 1), (8, 3), (8, 7), (16, 7)]),
       st.integers(0, 31), st.booleans(), st.integers(0, 16))
def test_geometry_partition_and_inverse(shape, ppage, hybrid, mirrored):
    n_nodes, group = shape
    cluster = group + 1
    use_hybrid = hybrid and cluster % 2 == 0 and group > 1
    cfg, geometry = geometries(n_nodes, group,
                               mirrored if use_hybrid else None)
    ppage = ppage % cfg.pages_per_node

    for node in range(n_nodes):
        if geometry.is_parity_page(node, ppage):
            # Inverse: every data member of this stripe points back.
            data = geometry.stripe_data_pages(node, ppage)
            assert data, "parity page protecting nothing"
            for data_node, data_page in data:
                assert not geometry.is_parity_page(data_node, data_page)
                assert geometry.parity_location(data_node, data_page) \
                    == (node, ppage)
        else:
            parity_node, parity_page = geometry.parity_location(node,
                                                                ppage)
            assert parity_node != node
            assert geometry.is_parity_page(parity_node, parity_page)
            assert (node, ppage) in geometry.stripe_data_pages(
                parity_node, parity_page)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from([(4, 3), (8, 7), (16, 7)]), st.integers(0, 31))
def test_exactly_one_parity_page_per_stripe(shape, ppage):
    n_nodes, group = shape
    cfg, geometry = geometries(n_nodes, group, None)
    ppage = ppage % cfg.pages_per_node
    for base in range(0, n_nodes, group + 1):
        cluster = range(base, base + group + 1)
        parity_count = sum(geometry.is_parity_page(n, ppage)
                           for n in cluster)
        assert parity_count == 1


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 63), st.integers(1, 32))
def test_hybrid_stripes_pair_exactly(ppage, mirrored):
    cfg = MachineConfig.tiny(8)
    geometry = HybridGeometry(cfg, 3, mirrored_stripes=mirrored)
    ppage = ppage % cfg.pages_per_node
    for node in range(8):
        stripe = geometry.stripe_of(node, ppage)
        if geometry.is_mirrored_page(node, ppage):
            assert len(stripe) == 2
            a, b = (n for n, _p in stripe)
            assert a // 4 == b // 4            # same cluster
            assert abs(a - b) == 1             # adjacent pair
        else:
            assert len(stripe) == 4            # whole cluster

        # Exactly one mirror/parity holder per stripe.
        holders = sum(geometry.is_parity_page(n, p) for n, p in stripe)
        assert holders == 1


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 64))
def test_hybrid_parity_fraction_monotone(mirrored):
    cfg = MachineConfig.tiny(4)
    mirrored = mirrored % (cfg.pages_per_node + 1)
    fraction = HybridGeometry(cfg, 3, mirrored).parity_fraction()
    assert 0.25 <= fraction <= 0.5
    if mirrored:
        less = HybridGeometry(cfg, 3, mirrored - 1).parity_fraction()
        assert fraction >= less
