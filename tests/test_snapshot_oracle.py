"""The snapshot roundtrip oracle (docs/SNAPSHOTS.md).

The whole-machine snapshot protocol promises: pause a run anywhere,
capture ``machine.snapshot()``, restore the image into a *freshly
built* machine, continue — and the continuation is bit-identical to
never having paused.  These tests enforce that promise at every
checkpoint boundary for all four ReVive variants over three
workloads, through a pickle round-trip (the campaign runner ships
images between processes), including byte-identical trace output.

The oracle procedure: an uninterrupted run fixes the reference
fingerprint; a *stepped* run pauses at each boundary and captures an
image there (stepping itself must not perturb the outcome); every
image is then restored into a fresh machine whose continuation must
reproduce the reference fingerprint exactly.
"""

from __future__ import annotations

import pickle

import pytest

from repro.harness.runner import build_machine, tiny_revive_overrides
from repro.machine.config import MachineConfig
from repro.workloads.registry import get_workload

APPS = ("fft", "lu", "barnes")
REVIVE_VARIANTS = ("cp_parity", "cpinf_parity", "cp_mirroring",
                   "cpinf_mirroring")
INTERVAL_NS = 50_000
SCALE = 0.05
NODES = 4


#: The CpInf variants never reclaim their logs, so a full run
#: overflows the tiny log region; their oracle runs stop here instead
#: (the roundtrip contract is about *continuation*, not completion).
CPINF_HORIZON_NS = 3 * INTERVAL_NS


def horizon(variant: str):
    return CPINF_HORIZON_NS if variant.startswith("cpinf") else None


def build(app: str, variant: str, tracer=None):
    machine = build_machine(variant, MachineConfig.tiny(NODES),
                            INTERVAL_NS, tracer=tracer,
                            **tiny_revive_overrides(NODES))
    machine.attach_workload(get_workload(app, scale=SCALE,
                                         n_procs=NODES))
    return machine


def fingerprint(machine):
    """Everything observable about a finished machine."""
    return {
        "now": machine.simulator.now,
        "exec": machine.steady_execution_time,
        "stats": machine.stats.state(),
        "memories": [dict(node.memory.lines()) for node in machine.nodes],
        "mem_refs": [proc.mem_refs for proc in machine.processors],
        "commits": (list(machine.checkpointing.commit_times)
                    if machine.checkpointing else None),
        "log_bytes": (machine.revive.max_log_bytes()
                      if machine.revive else None),
    }


def boundaries(variant: str, final):
    """Every checkpoint boundary of the run (synthetic for CpInf).

    The checkpoint-free variants have no commits, so the oracle pauses
    them at interior interval multiples instead.
    """
    if final["commits"] and len(final["commits"]) > 1:
        return final["commits"][1:]
    return [int((k + 0.5) * INTERVAL_NS) for k in range(3)]


def roundtrip_everywhere(app: str, variant: str):
    until = horizon(variant)
    reference = build(app, variant)
    reference.run(until=until)
    final = fingerprint(reference)

    stepped = build(app, variant)
    images = []
    for pause in boundaries(variant, final):
        stepped.run(until=pause)
        images.append(pickle.dumps(stepped.snapshot(),
                                   protocol=pickle.HIGHEST_PROTOCOL))
    stepped.run(until=until)
    assert fingerprint(stepped) == final, \
        f"{app}/{variant}: stepping alone perturbed the run"

    for index, image in enumerate(images):
        fresh = build(app, variant)
        fresh.restore(pickle.loads(image))
        fresh.run(until=until)
        assert fingerprint(fresh) == final, \
            f"{app}/{variant}: restore at boundary {index} diverged"
    return len(images)


class TestRoundtripOracle:
    @pytest.mark.parametrize("variant", REVIVE_VARIANTS)
    @pytest.mark.parametrize("app", APPS)
    def test_bit_identical_at_every_checkpoint_boundary(self, app,
                                                        variant):
        assert roundtrip_everywhere(app, variant) >= 2

    def test_baseline_variant_roundtrips_too(self):
        # No ReVive machinery at all — the protocol must still hold.
        assert roundtrip_everywhere("fft", "baseline") >= 2


class TestTraceBitIdentity:
    def test_restored_trace_is_byte_identical_to_reference_tail(self):
        """The restored machine re-emits the reference trace, byte for
        byte, from the pause point on — the tracer's sequence counter
        and the span transaction counter survive the round-trip."""
        import json

        from repro.obs.tracer import RingBufferSink, Tracer

        pause = 3 * INTERVAL_NS

        sink_ref = RingBufferSink(capacity=1 << 20)
        reference = build("fft", "cp_parity", tracer=Tracer(sink_ref))
        reference.run(until=pause)
        events_at_pause = len(sink_ref.events())
        image = pickle.dumps(reference.snapshot())
        reference.run()
        tail = [json.dumps(e, sort_keys=True)
                for e in sink_ref.events()[events_at_pause:]]
        assert tail, "reference run emitted nothing after the pause"

        sink_new = RingBufferSink(capacity=1 << 20)
        restored = build("fft", "cp_parity", tracer=Tracer(sink_new))
        restored.restore(pickle.loads(image))
        restored.run()
        replay = [json.dumps(e, sort_keys=True)
                  for e in sink_new.events()]
        assert replay == tail


class TestProfilerAcrossRoundtrip:
    """Host-time attribution is host-side state: ``snapshot()`` never
    captures it and ``restore()`` never clobbers it, so a profiler
    installed on the restoring machine sees exactly the continuation's
    work — no double counting of the pre-pause run."""

    def test_restored_machine_profiles_only_the_continuation(self):
        from repro.obs.profiling import Profiler
        from repro.obs.telemetry import actor_coverage, profile_snapshot

        pause = 3 * INTERVAL_NS
        reference = build("fft", "cp_parity")
        ref_profiler = Profiler()
        reference.install_profiler(ref_profiler)
        reference.run(until=pause)
        acts_at_pause = reference.simulator.activations
        image = pickle.dumps(reference.snapshot())
        reference.run()
        total_acts = reference.simulator.activations

        restored = build("fft", "cp_parity")
        restored.restore(pickle.loads(image))
        profiler = Profiler()
        restored.install_profiler(profiler)
        restored.run()
        profile = profile_snapshot(profiler)
        # The continuation's profile covers the tail of the run only:
        # its activation count is the reference's post-pause delta,
        # and the attribution still reconciles against its own wall.
        tail = sum(cell[1] for cell in profiler.actors.values())
        assert restored.simulator.activations == total_acts
        assert tail == total_acts - acts_at_pause
        assert 0.0 < actor_coverage(profile) <= 1.0 + 1e-6

    def test_snapshot_of_profiled_machine_is_profile_free(self):
        from repro.obs.profiling import Profiler

        machine = build("fft", "cp_parity")
        machine.install_profiler(Profiler())
        machine.run(until=INTERVAL_NS)
        image = machine.snapshot()
        # Wall-clock attribution must never travel inside an image —
        # images are content-addressed and must stay host-independent.
        assert b"Profiler" not in pickle.dumps(image)
        fresh = build("fft", "cp_parity")
        fresh.restore(image)
        assert fresh.profiler is None


class TestDigestAcrossRoundtrip:
    """The determinism digest chain rides inside snapshot images the
    way trace sequence numbers do: a digesting machine restored from a
    digesting run's image continues the donor's chain, and the full
    chain is bit-identical to never having paused."""

    def digested(self, machine):
        from repro.obs.digest import DigestRecorder

        machine.install_digests(DigestRecorder(None))
        machine.record_digest(0)
        return machine

    def test_restored_chain_continues_the_reference_chain(self):
        reference = self.digested(build("fft", "cp_parity"))
        reference.run()
        final_chain = reference.digests.chain
        assert len(final_chain) >= 3, "run too short for the roundtrip"

        pause = final_chain.windows[2]["ts"]  # the 2nd commit boundary
        donor = self.digested(build("fft", "cp_parity"))
        donor.run(until=pause)
        windows_at_pause = len(donor.digests.chain)
        image = pickle.dumps(donor.snapshot())

        restored = self.digested(build("fft", "cp_parity"))
        restored.restore(pickle.loads(image))
        # restore() replaced the fresh window 0 with the donor's chain.
        assert len(restored.digests.chain) == windows_at_pause
        restored.run()
        assert restored.digests.chain == final_chain

    def test_image_digest_equals_live_digest_at_the_pause(self):
        # component_digest over the restored machine equals the same
        # fingerprint of the donor at the pause point: the image loses
        # nothing the observatory can see.
        from repro.machine.digest import digest_components

        donor = self.digested(build("fft", "cp_parity"))
        donor.run(until=3 * INTERVAL_NS)
        at_pause = digest_components(donor)
        fresh = self.digested(build("fft", "cp_parity"))
        fresh.restore(pickle.loads(pickle.dumps(donor.snapshot())))
        assert digest_components(fresh) == at_pause


class TestRestoreValidation:
    def test_wrong_topology_is_rejected(self):
        from repro.machine.snapshot import SnapshotError

        donor = build("fft", "cp_parity")
        donor.run(until=INTERVAL_NS)
        image = donor.snapshot()
        other = build_machine("cp_parity", MachineConfig.tiny(2),
                              INTERVAL_NS, **tiny_revive_overrides(2))
        other.attach_workload(get_workload("fft", scale=SCALE,
                                           n_procs=2))
        with pytest.raises(SnapshotError):
            other.restore(image)

    def test_revive_mismatch_is_rejected(self):
        from repro.machine.snapshot import SnapshotError

        donor = build("fft", "cp_parity")
        donor.run(until=INTERVAL_NS)
        image = donor.snapshot()
        plain = build("fft", "baseline")
        with pytest.raises(SnapshotError):
            plain.restore(image)

    def test_unknown_version_is_rejected(self):
        from repro.machine.snapshot import SnapshotError

        donor = build("fft", "cp_parity")
        donor.run(until=INTERVAL_NS)
        image = donor.snapshot()
        image["version"] = 999
        fresh = build("fft", "cp_parity")
        with pytest.raises(SnapshotError):
            fresh.restore(image)
