"""Unit tests for the detection-latency design-space module, plus an
end-to-end deep-retention recovery (rolling back two full epochs)."""

import pytest

from conftest import ToyWorkload, build_tiny_machine

from repro.core.detection import (
    DesignPoint,
    design_space,
    required_checkpoints,
    retained_log_bytes,
    worst_case_rollback_epochs,
)
from repro.core.faults import TransientSystemFault
from repro.core.recovery import RecoveryManager

NS_PER_MS = 1_000_000


class TestRetentionArithmetic:
    def test_paper_design_point(self):
        """80 ms latency at a 100 ms interval: keep two checkpoints."""
        assert required_checkpoints(80 * NS_PER_MS, 100 * NS_PER_MS) == 2

    def test_latency_exceeding_interval(self):
        assert required_checkpoints(150 * NS_PER_MS, 100 * NS_PER_MS) == 3
        assert required_checkpoints(350 * NS_PER_MS, 100 * NS_PER_MS) == 5

    def test_zero_latency_still_needs_one(self):
        assert required_checkpoints(0, 100) == 1

    def test_rollback_epochs(self):
        assert worst_case_rollback_epochs(80 * NS_PER_MS,
                                          100 * NS_PER_MS) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            required_checkpoints(10, 0)
        with pytest.raises(ValueError):
            required_checkpoints(-1, 10)
        with pytest.raises(ValueError):
            retained_log_bytes(-1, 0, 10)

    def test_log_retention_scales(self):
        """The paper's 25 MB-per-checkpoint estimate: two retained
        checkpoints cost 50 MB."""
        assert retained_log_bytes(25 << 20, 80 * NS_PER_MS,
                                  100 * NS_PER_MS) == 50 << 20


class TestDesignSpace:
    def test_sweep_shape(self):
        points = design_space([100 * NS_PER_MS, 1000 * NS_PER_MS],
                              [10 * NS_PER_MS, 80 * NS_PER_MS],
                              recovery_overhead_ns=200 * NS_PER_MS,
                              per_epoch_log_bytes=25 << 20)
        assert len(points) == 4
        assert all(isinstance(p, DesignPoint) for p in points)

    def test_longer_latency_costs_availability_and_memory(self):
        short, long_ = design_space([100 * NS_PER_MS],
                                    [10 * NS_PER_MS, 500 * NS_PER_MS],
                                    recovery_overhead_ns=200 * NS_PER_MS,
                                    per_epoch_log_bytes=1 << 20)
        assert long_.availability_at_1_per_day \
            < short.availability_at_1_per_day
        assert long_.log_bytes > short.log_bytes
        assert long_.keep_checkpoints > short.keep_checkpoints

    def test_paper_headline_reachable(self):
        (point,) = design_space([100 * NS_PER_MS], [80 * NS_PER_MS],
                                recovery_overhead_ns=640 * NS_PER_MS,
                                per_epoch_log_bytes=25 << 20)
        # 180 ms lost work + 640 ms recovery = 820 ms -> five nines.
        assert point.unavailable_ns == 820 * NS_PER_MS
        assert point.availability_at_1_per_day > 0.99999


class TestDeepRetentionRecovery:
    def test_rollback_two_epochs_with_keep_three(self):
        """A detection latency above one interval forces keeping three
        checkpoints; recovery to epoch N-2 must be bit-exact."""
        machine = build_tiny_machine(keep_checkpoints=3,
                                     detection_latency_fraction=1.5,
                                     log_bytes_per_node=96 * 1024)
        machine.attach_workload(ToyWorkload(rounds=8, refs_per_round=1500))
        coord = machine.checkpointing
        horizon = 4 * coord.interval_ns
        while coord.checkpoints_committed < 3 and not machine.all_finished:
            machine.run(until=horizon)
            horizon += coord.interval_ns
        assert coord.checkpoints_committed >= 3
        detect = machine.simulator.now
        target = coord.checkpoints_committed - 2
        TransientSystemFault().apply(machine)
        result = RecoveryManager(machine).recover(detect_time=detect,
                                                  target_epoch=target)
        assert machine.verify_against_snapshot(target) == []
        assert result.entries_undone > 0
